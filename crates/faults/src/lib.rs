//! `qfc-faults` — deterministic fault injection, the workspace error
//! taxonomy, and run-health reporting.
//!
//! The crate sits just above `qfc-mathkit` in the dependency order so
//! every other crate (photonics, timetag, tomography, core) can share
//! one [`QfcError`] type, consume [`FaultSchedule`]s, and emit
//! [`HealthReport`]s.
//!
//! Design invariants:
//!
//! * **Empty schedule = identity.** Every schedule query returns its
//!   neutral element (`1.0` rate factor, `0.0` dead fraction, …) when
//!   the schedule is empty, and drivers draw from their fault RNG
//!   domains only when the schedule is non-empty — so runs with
//!   `FaultSchedule::empty()` are byte-identical to runs predating the
//!   fault layer.
//! * **Determinism at any thread count.** Schedule queries are pure
//!   functions of `(schedule, time window)`; fault realization RNG is
//!   derived via `split_seed(seed, FAULT_SEED_DOMAIN)` and then split
//!   per channel/shard, never shared across parallel tasks.

#![forbid(unsafe_code)]

pub mod error;
pub mod health;
pub mod schedule;

pub use error::{QfcError, QfcResult};
pub use health::{FaultRecord, HealthReport, RecoveryAction};
pub use schedule::{Arm, FaultEvent, FaultKind, FaultSchedule, FAULT_SEED_DOMAIN};
