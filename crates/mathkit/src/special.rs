//! Special functions needed by the photonics and quantum models.

use crate::cast;

/// Normalized `sinc(x) = sin(πx)/(πx)` with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    let px = std::f64::consts::PI * x;
    px.sin() / px
}

/// Unnormalized `sinc_u(x) = sin(x)/x` with `sinc_u(0) = 1`.
///
/// This is the form that appears in the four-wave-mixing phase-matching
/// function `sinc(Δβ·L/2)`.
pub fn sinc_u(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    x.sin() / x
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (absolute error < 1.5 × 10⁻⁷, ample for the noise models here).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Natural logarithm of the gamma function (Lanczos approximation,
/// `g = 7`, 9 coefficients; relative error < 1e-13 for `x > 0`).
///
/// The coefficient table keeps the published digits verbatim.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // published Lanczos table, digits kept verbatim
    const COEFFS: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + cast::to_f64(i));
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural logarithm of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        0.0
    } else {
        ln_gamma(cast::to_f64(n) + 1.0)
    }
}

/// Binomial coefficient `C(n, k)` as `f64` (exact for small arguments,
/// accurate in log-space otherwise).
pub fn binomial_coeff(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    if n <= 62 {
        let mut acc = 1.0f64;
        for i in 0..k {
            acc = acc * cast::to_f64(n - i) / cast::to_f64(i + 1);
        }
        acc.round()
    } else {
        (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)).exp()
    }
}

/// Poisson probability mass function `P(k; λ)`, computed in log space for
/// stability at large `k` or `λ`.
pub fn poisson_pmf(k: u64, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    (cast::to_f64(k) * lambda.ln() - lambda - ln_factorial(k)).exp()
}

/// Lorentzian profile with unit peak: `1 / (1 + (2(x − x0)/fwhm)²)`.
///
/// This is the (power) line shape of a single microring resonance.
pub fn lorentzian(x: f64, x0: f64, fwhm: f64) -> f64 {
    let u = 2.0 * (x - x0) / fwhm;
    1.0 / (1.0 + u * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-15); // sin(π)/π = 0
        assert!((sinc(0.5) - 2.0 / std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(sinc_u(0.0), 1.0);
        assert!((sinc_u(std::f64::consts::PI)).abs() < 1e-15);
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.0) + normal_cdf(1.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n+1) = n!
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3628800.0f64.ln()).abs() < 1e-9);
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_small() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn binomial_coeff_exact() {
        assert_eq!(binomial_coeff(5, 2), 10.0);
        assert_eq!(binomial_coeff(10, 0), 1.0);
        assert_eq!(binomial_coeff(10, 10), 1.0);
        assert_eq!(binomial_coeff(3, 5), 0.0);
        // Large-argument log-space path.
        let big = binomial_coeff(100, 50);
        assert!((big / 1.0089134e29 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let lam = 4.2;
        let total: f64 = (0..60).map(|k| poisson_pmf(k, lam)).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
    }

    #[test]
    fn lorentzian_shape() {
        assert_eq!(lorentzian(5.0, 5.0, 2.0), 1.0);
        // Half maximum at x0 ± fwhm/2.
        assert!((lorentzian(6.0, 5.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((lorentzian(4.0, 5.0, 2.0) - 0.5).abs() < 1e-12);
    }
}
