//! Crash-tolerant sharded campaign engine.
//!
//! A *campaign* decomposes one of the four paper drivers' shot budgets
//! into a deterministic shard manifest (per-channel tasks plus, for §II,
//! the fixed `SHOT_SHARDS` shot-range decomposition of the F2 linewidth
//! run), executes the shards on the `qfc-runtime` pool with bounded
//! retry and deterministic exponential backoff, checkpoints every
//! completed shard with an integrity hash (canonical JSON, torn-write
//! detection via temp-file rename), and folds the partial shard reports
//! into the full run report.
//!
//! ## The byte-identity contract
//!
//! Every shard is a pure function of `(campaign seed, shard spec)`, and
//! the merge folds payloads in shard-index order — so the merged report
//! is **byte-identical** to the single-process driver's report at any
//! thread count, whether the shards ran in one process, across a crash
//! and a resume, or after retries. [`CampaignOptions::prove`] makes the
//! engine verify this against a fresh single-process run.
//!
//! ## Crash model
//!
//! Recovery paths are property-tested through injected faults
//! ([`qfc_faults::FaultKind::ShardAbort`],
//! [`qfc_faults::FaultKind::ShardExecutorFault`],
//! [`qfc_faults::FaultKind::CheckpointCorruption`],
//! [`qfc_faults::FaultKind::CheckpointStale`]): the engine kills itself
//! mid-campaign (returning [`qfc_faults::QfcError::CampaignInterrupted`])
//! or writes a damaged checkpoint, and a re-run with the same options
//! resumes from the surviving checkpoints, rejects the damaged ones, and
//! still produces the byte-identical report. Each injected fault fires
//! exactly once per campaign directory (a marker file records it), so a
//! resume is never re-killed by the same injection.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod engine;
pub mod manifest;
pub mod workload;

pub use engine::{run_campaign, CampaignOptions, CampaignOutcome, CampaignStats};
pub use manifest::{CampaignManifest, ShardSpec};
pub use workload::{
    CampaignWorkload, CrossPolCampaign, HeraldedCampaign, MultiPhotonCampaign, TimeBinCampaign,
};
