#!/usr/bin/env bash
# Tier-1 gate: release build, root test suite, runtime-crate lints, and a
# seconds-scale bench smoke run that cross-checks serial vs parallel
# determinism. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -p qfc-runtime -- -D warnings"
cargo clippy -p qfc-runtime -- -D warnings

echo "==> qfc-bench --smoke (serial/parallel determinism cross-check)"
./target/release/qfc-bench --smoke --out target/BENCH_smoke.json

echo "CI gate passed."
