//! Bell states and two-qubit entanglement measures.

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::cvector::CVector;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::hermitian::{eigh, sqrtm_psd};

use crate::density::DensityMatrix;
use crate::state::PureState;

/// `|Φ⁺⟩ = (|00⟩ + |11⟩)/√2` — the ideal time-bin Bell state of §IV with
/// `|0⟩ = early`, `|1⟩ = late`.
pub fn bell_phi_plus() -> PureState {
    bell_phi(0.0)
}

/// `|Φ⁻⟩ = (|00⟩ − |11⟩)/√2`.
pub fn bell_phi_minus() -> PureState {
    bell_phi(std::f64::consts::PI)
}

/// `|Ψ⁺⟩ = (|01⟩ + |10⟩)/√2`.
pub fn bell_psi_plus() -> PureState {
    PureState::from_amplitudes(CVector::from_real(&[0.0, 1.0, 1.0, 0.0]))
        .unwrap_or_else(|| unreachable!("Bell amplitudes are valid")) // qfc-lint: allow(panic-reachability) — invariant: fixed Bell amplitude vectors are nonzero by construction
}

/// `|Ψ⁻⟩ = (|01⟩ − |10⟩)/√2`.
pub fn bell_psi_minus() -> PureState {
    PureState::from_amplitudes(CVector::from_real(&[0.0, 1.0, -1.0, 0.0]))
        .unwrap_or_else(|| unreachable!("Bell amplitudes are valid")) // qfc-lint: allow(panic-reachability) — invariant: fixed Bell amplitude vectors are nonzero by construction
}

/// Phase-parametrized Bell state `(|00⟩ + e^{iφ}|11⟩)/√2` — what the
/// double-pulse pump writes: the relative pump phase appears on the
/// late-late amplitude.
pub fn bell_phi(phi: f64) -> PureState {
    let mut v = CVector::zeros(4);
    v[0] = Complex64::real(std::f64::consts::FRAC_1_SQRT_2);
    v[3] = Complex64::cis(phi).scale(std::f64::consts::FRAC_1_SQRT_2);
    PureState::from_amplitudes(v).unwrap_or_else(|| unreachable!("Bell amplitudes are valid")) // qfc-lint: allow(panic-reachability) — invariant: fixed Bell amplitude vectors are nonzero by construction
}

/// Wootters concurrence of a two-qubit density matrix — `1` for Bell
/// states, `0` for separable states.
///
/// # Panics
///
/// Panics unless `rho` is a two-qubit state.
pub fn concurrence(rho: &DensityMatrix) -> f64 {
    assert_eq!(rho.qubits(), 2, "concurrence is defined for two qubits");
    let m = rho.as_matrix();
    // Spin-flip: ρ̃ = (Y⊗Y)·ρ*·(Y⊗Y).
    let yy = crate::ops::pauli_y().kron(&crate::ops::pauli_y());
    let rho_tilde = &(&yy * &m.conj()) * &yy;
    let prod = m * &rho_tilde;
    // Eigenvalues of ρ·ρ̃ are real non-negative; extract via the Hermitian
    // similarity √ρ·ρ̃·√ρ which shares its spectrum with ρ·ρ̃.
    let sq = sqrtm_psd(m);
    let herm = &(&sq * &rho_tilde) * &sq;
    let mut lambdas: Vec<f64> = eigh(&herm)
        .eigenvalues
        .iter()
        .map(|&l| l.max(0.0).sqrt())
        .collect();
    lambdas.sort_by(|a, b| b.total_cmp(a));
    let _ = prod; // spectrum equivalence documented above
    (lambdas[0] - lambdas[1] - lambdas[2] - lambdas[3]).max(0.0)
}

/// Tangle `C²` of a two-qubit state.
pub fn tangle(rho: &DensityMatrix) -> f64 {
    let c = concurrence(rho);
    c * c
}

/// The Werner state `V·|Φ⁺(φ)⟩⟨Φ⁺(φ)| + (1−V)·I/4` — the standard noise
/// model connecting interference visibility `V` to the measured
/// two-photon state.
pub fn werner_state(visibility: f64, phi: f64) -> DensityMatrix {
    let v = visibility.clamp(0.0, 1.0);
    DensityMatrix::from_pure(&bell_phi(phi)).depolarize(1.0 - v)
}

/// Fidelity of a Werner state of visibility `V` with its Bell state:
/// `F = (3V + 1)/4` (analytic).
pub fn werner_fidelity(visibility: f64) -> f64 {
    (3.0 * visibility.clamp(0.0, 1.0) + 1.0) / 4.0
}

/// Projector onto a Bell state, as a 4×4 matrix.
pub fn bell_projector(state: &PureState) -> CMatrix {
    assert_eq!(state.qubits(), 2, "bell projector needs a two-qubit state");
    crate::ops::projector(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::state_fidelity;

    #[test]
    fn bell_states_are_orthonormal() {
        let states = [
            bell_phi_plus(),
            bell_phi_minus(),
            bell_psi_plus(),
            bell_psi_minus(),
        ];
        for (i, a) in states.iter().enumerate() {
            for (j, b) in states.iter().enumerate() {
                let ov = a.overlap(b);
                if i == j {
                    assert!((ov - 1.0).abs() < 1e-12);
                } else {
                    assert!(ov < 1e-12);
                }
            }
        }
    }

    #[test]
    fn bell_phi_phase_interpolates() {
        assert!(bell_phi(0.0).approx_eq_up_to_phase(&bell_phi_plus(), 1e-12));
        assert!(bell_phi(std::f64::consts::PI).approx_eq_up_to_phase(&bell_phi_minus(), 1e-12));
    }

    #[test]
    fn concurrence_of_bell_state_is_one() {
        for s in [bell_phi_plus(), bell_psi_minus(), bell_phi(1.3)] {
            let c = concurrence(&DensityMatrix::from_pure(&s));
            assert!((c - 1.0).abs() < 1e-6, "C = {c}");
        }
    }

    #[test]
    fn concurrence_of_product_state_is_zero() {
        let prod = PureState::plus().tensor(&PureState::ket0());
        let c = concurrence(&DensityMatrix::from_pure(&prod));
        assert!(c < 1e-6, "C = {c}");
    }

    #[test]
    fn concurrence_of_maximally_mixed_is_zero() {
        let c = concurrence(&DensityMatrix::maximally_mixed(2));
        assert!(c < 1e-9);
    }

    #[test]
    fn werner_state_concurrence_threshold() {
        // Werner states are entangled iff V > 1/3.
        assert!(concurrence(&werner_state(0.2, 0.0)) < 1e-6);
        assert!(concurrence(&werner_state(0.5, 0.0)) > 0.1);
        assert!((concurrence(&werner_state(1.0, 0.0)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn werner_fidelity_matches_analytic() {
        for v in [0.0, 0.5, 0.83, 1.0] {
            let rho = werner_state(v, 0.0);
            let f = state_fidelity(&rho, &DensityMatrix::from_pure(&bell_phi_plus()));
            assert!(
                (f - werner_fidelity(v)).abs() < 1e-6,
                "V={v}: {f} vs {}",
                werner_fidelity(v)
            );
        }
    }

    #[test]
    fn tangle_is_square_of_concurrence() {
        let rho = werner_state(0.8, 0.0);
        assert!((tangle(&rho) - concurrence(&rho).powi(2)).abs() < 1e-9);
    }
}
