//! Optical parametric oscillation: the above-threshold regime of §III.
//!
//! When the round-trip parametric gain of the circulating pump(s) exceeds
//! the round-trip loss, the ring oscillates: below threshold the output on
//! the FWM bands grows **quadratically** with pump power (spontaneous +
//! parametric fluorescence), above threshold it grows **linearly** with the
//! excess pump (classic OPO behaviour). The paper reports the kink at
//! 14 mW.

use serde::{Deserialize, Serialize};

use crate::fwm;
use crate::ring::Microring;
use crate::units::Power;

/// OPO threshold: the input power at which the single-pass parametric
/// gain of the circulating pump equals the round-trip loss
/// `γ·P_circ·L = 1 − r²·a`.
///
/// For [`Microring::paper_device`] this lands at ≈ 14 mW, the §III value.
///
/// ```
/// use qfc_photonics::ring::Microring;
/// use qfc_photonics::opo::threshold;
/// let p_th = threshold(&Microring::paper_device());
/// assert!((p_th.mw() - 14.0).abs() < 3.0, "P_th = {p_th}");
/// ```
pub fn threshold(ring: &Microring) -> Power {
    let r = ring.self_coupling();
    let a = ring.round_trip_amplitude();
    let loss = 1.0 - r * r * a;
    // parametric_gain is linear in input power: ξ(P) = ξ(1 W)·P.
    let xi_per_watt = fwm::parametric_gain(ring, Power::from_w(1.0));
    Power::from_w(loss / xi_per_watt)
}

/// Below-threshold parametric-fluorescence output power on the oscillating
/// band, quadratic in pump power. The prefactor is the spontaneous flux
/// times the photon energy, scaled to the drop port.
fn below_threshold_output(ring: &Microring, input: Power) -> Power {
    use crate::constants::PLANCK;
    let xi = fwm::parametric_gain(ring, input);
    let photon_rate = xi * xi * ring.linewidth().hz();
    let nu = ring.resonance(crate::waveguide::Polarization::Te, 1).hz();
    // Parametric fluorescence is amplified toward threshold; keep the
    // low-gain quadratic form which dominates the log-log slope.
    Power::from_w(photon_rate * PLANCK * nu * ring.drop_transmission_peak())
}

/// Steady-state OPO output power at pump power `input`.
///
/// Below threshold: quadratic spontaneous output. Above threshold: the
/// standard linear depleted-pump form
/// `P_out = η_slope·(P − P_th)` with the slope efficiency set by the
/// coupler escape fraction, plus continuity with the spontaneous floor.
pub fn output_power(ring: &Microring, input: Power) -> Power {
    let p_th = threshold(ring);
    let spont = below_threshold_output(ring, Power::from_w(input.w().min(p_th.w())));
    if input.w() <= p_th.w() {
        spont
    } else {
        let slope = slope_efficiency(ring);
        Power::from_w(spont.w() + slope * (input.w() - p_th.w()))
    }
}

/// Above-threshold slope efficiency (fraction of excess pump converted to
/// comb output): escape efficiency of the loaded cavity — the coupling
/// loss share of the total round-trip loss.
pub fn slope_efficiency(ring: &Microring) -> f64 {
    let r = ring.self_coupling();
    let a = ring.round_trip_amplitude();
    let total_loss = 1.0 - r * r * a;
    let coupling_loss = 1.0 - r * r;
    (coupling_loss / total_loss).min(1.0)
}

/// One point of a pump-power sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPoint {
    /// Pump input power, W.
    pub pump_w: f64,
    /// Generated output power, W.
    pub output_w: f64,
}

/// Sweeps the OPO transfer curve over `[min, max]` with `n` points —
/// the data behind the paper's power-scaling figure (F5).
///
/// Runs on the [`crate::sweep`] batch layer: the grid replicates the
/// historical `min + (max − min)·i/(n − 1)` spacing and the batch kernel
/// is byte-identical to calling [`output_power`] point by point, so the
/// curve (and every power-law fit on it) is bit-for-bit what the scalar
/// loop produced.
///
/// # Panics
///
/// Panics if `n < 2` or the range is empty.
pub fn transfer_curve(ring: &Microring, min: Power, max: Power, n: usize) -> Vec<TransferPoint> {
    assert!(n >= 2, "need at least two sweep points");
    assert!(max.w() > min.w(), "empty power range");
    let grid = crate::sweep::SweepGrid::linspace(min.w(), max.w(), n);
    let mut buf = crate::sweep::BatchBuffers::with_capacity(n);
    crate::sweep::opo_transfer_batch(ring, &grid, &mut buf);
    grid.points()
        .iter()
        .zip(buf.values())
        .map(|(&pump_w, &output_w)| TransferPoint { pump_w, output_w })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::fit::fit_power_law;

    fn ring() -> Microring {
        Microring::paper_device()
    }

    #[test]
    fn threshold_near_paper_value() {
        let p = threshold(&ring());
        assert!((p.mw() - 14.0).abs() < 3.0, "P_th = {p}");
    }

    #[test]
    fn quadratic_below_threshold() {
        let r = ring();
        let pts = transfer_curve(&r, Power::from_mw(1.0), Power::from_mw(10.0), 12);
        let x: Vec<f64> = pts.iter().map(|p| p.pump_w).collect();
        let y: Vec<f64> = pts.iter().map(|p| p.output_w).collect();
        let f = fit_power_law(&x, &y);
        assert!((f.exponent - 2.0).abs() < 0.05, "exponent {}", f.exponent);
    }

    #[test]
    fn linear_above_threshold() {
        let r = ring();
        let p_th = threshold(&r).w();
        let pts = transfer_curve(
            &r,
            Power::from_w(p_th * 1.5),
            Power::from_w(p_th * 3.0),
            12,
        );
        // Fit against the excess pump power.
        let x: Vec<f64> = pts.iter().map(|p| p.pump_w - p_th).collect();
        let y: Vec<f64> = pts.iter().map(|p| p.output_w).collect();
        let f = fit_power_law(&x, &y);
        assert!((f.exponent - 1.0).abs() < 0.05, "exponent {}", f.exponent);
    }

    #[test]
    fn sharp_kink_at_threshold() {
        // The defining OPO signature: output jumps onto the linear branch
        // right at threshold — orders of magnitude above the spontaneous
        // floor.
        let r = ring();
        let p_th = threshold(&r).w();
        let below = output_power(&r, Power::from_w(p_th * 0.99)).w();
        let above = output_power(&r, Power::from_w(p_th * 1.1)).w();
        assert!(above > 100.0 * below, "kink too soft: {below} → {above}");
    }

    #[test]
    fn slope_efficiency_in_unit_range() {
        let s = slope_efficiency(&ring());
        assert!(s > 0.5 && s <= 1.0, "slope {s}");
    }

    #[test]
    fn output_monotone_in_pump() {
        let r = ring();
        let pts = transfer_curve(&r, Power::from_mw(1.0), Power::from_mw(40.0), 40);
        assert!(pts.windows(2).all(|w| w[1].output_w >= w[0].output_w));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn transfer_curve_needs_points() {
        let _ = transfer_curve(&ring(), Power::from_mw(1.0), Power::from_mw(2.0), 1);
    }
}
