//! §V — Four-photon entangled states: Bell-state tomography per channel
//! (T3), four-photon interference (F8), and four-photon tomography (T4).
//!
//! ```sh
//! cargo run --release --example four_photon_state
//! ```

use qfc::core::multiphoton::{run_multiphoton_experiment, MultiPhotonConfig};
use qfc::core::source::QfcSource;

fn main() {
    let source = QfcSource::paper_device_timebin();
    let config = MultiPhotonConfig::paper();
    println!("Running §V four-photon suite (this includes 81-setting 4-qubit MLE)…");
    let report = run_multiphoton_experiment(&source, &config, 29);

    println!("\n== T3 Bell-state tomography per channel ==");
    println!("  m    fidelity    concurrence   MLE iters");
    for b in &report.bell {
        println!(
            " {:>2}    {:>6.3}      {:>6.3}        {:>4}",
            b.m, b.fidelity, b.concurrence, b.iterations
        );
    }

    println!("\n== F8 four-photon interference ==");
    println!(
        "fitted raw visibility: {:.1} % (paper: 89 %)",
        report.fringe.visibility * 100.0
    );
    let max = report
        .fringe
        .points
        .iter()
        .map(|p| p.1)
        .max()
        .unwrap_or(1)
        .max(1);
    for &(phi, c) in &report.fringe.points {
        let bar = "#".repeat((c * 50 / max) as usize);
        println!("  φ={phi:>5.2}  {c:>6}  {bar}");
    }

    println!("\n== T4 four-photon tomography ==");
    println!(
        "fidelity to |Φ⟩⊗|Φ⟩: {:.1} % from {} four-folds in {} MLE iterations (paper: 64 %)",
        report.tomography.fidelity * 100.0,
        report.tomography.total_counts,
        report.tomography.iterations
    );

    println!("\n{}", report.to_report().render());
}
