//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, range strategies over primitive numeric types, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking: inputs are sampled
//! deterministically from a generator seeded by the test's name, so a
//! failing case reproduces identically on every run.

/// Run-count configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic sample generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds the generator for a named test (FNV-1a hash of the name),
/// so each test function draws an independent, reproducible stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng { state: hash }
}

/// Value-producing input strategy.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range strategy");
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies, mirroring upstream's `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range and
    /// elements drawn from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy: length in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Property-test entry point. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]`-attributed
/// functions whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_rng(stringify!($name));
                for _ in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+); };
}

/// Skips the current sampled case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Common imports, mirroring upstream's `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("ranges_respect_bounds");
        for _ in 0..1000 {
            let x = Strategy::sample(&(2.5..7.5f64), &mut rng);
            assert!((2.5..7.5).contains(&x));
            let n = Strategy::sample(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&n));
            let u = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn named_rngs_are_deterministic() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        let mut c = crate::test_rng("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_expands_and_runs(x in 0.0..1.0f64, n in 1u64..100) {
            prop_assume!(n > 1);
            prop_assert!(x >= 0.0, "x was {x}");
            prop_assert_eq!(n, n);
        }
    }
}
