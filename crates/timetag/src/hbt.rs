//! Hanbury Brown–Twiss autocorrelation: measuring g²(τ) of a single
//! beam with a 50/50 splitter and two detectors — the standard check
//! that the unheralded comb arm is thermal (g²(0) = 2) and the heralded
//! one antibunched (g²(0) ≪ 1).

use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_mathkit::stats::Histogram;

use crate::coincidence::cross_correlation_histogram;
use crate::events::TagStream;

/// Splits one stream on a 50/50 beam splitter into two detector streams
/// (each event routed randomly to one output).
pub fn beam_split<R: Rng + ?Sized>(rng: &mut R, input: &TagStream) -> (TagStream, TagStream) {
    let mut a = Vec::new();
    let mut b = Vec::new();
    for &t in input.as_slice() {
        if rng.gen::<bool>() {
            a.push(t);
        } else {
            b.push(t);
        }
    }
    (TagStream::from_sorted(a), TagStream::from_sorted(b))
}

/// Result of a normalized g²(τ) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct G2Result {
    /// The raw coincidence histogram between the two HBT arms.
    pub histogram: Histogram,
    /// Normalized g² per bin (unit baseline at large delay).
    pub g2: Vec<f64>,
    /// g² at zero delay.
    pub g2_zero: f64,
}

/// Measures g²(τ) of a stream via an HBT setup: split, cross-correlate,
/// and normalize by the uncorrelated (large-delay) baseline.
///
/// # Panics
///
/// Panics if the input has fewer than 100 events or parameters are out
/// of range.
pub fn measure_g2<R: Rng + ?Sized>(
    rng: &mut R,
    input: &TagStream,
    range_ps: i64,
    bin_ps: i64,
) -> G2Result {
    assert!(input.len() >= 100, "need at least 100 events for g2");
    let (a, b) = beam_split(rng, input);
    let histogram = cross_correlation_histogram(&a, &b, range_ps, bin_ps);
    // Baseline from the outer 25 % of bins on each side.
    let bins = histogram.bins();
    let edge = (bins / 4).max(1);
    let mut baseline = 0.0;
    for i in 0..edge {
        baseline += cast::to_f64(histogram.count(i)) + cast::to_f64(histogram.count(bins - 1 - i));
    }
    baseline /= cast::to_f64(2 * edge);
    assert!(baseline > 0.0, "no baseline coincidences; extend the range");
    let g2: Vec<f64> = (0..bins)
        .map(|i| cast::to_f64(histogram.count(i)) / baseline)
        .collect();
    // Zero delay sits on the boundary between the two central bins;
    // average them.
    let zero_bin = bins / 2;
    let g2_zero = if zero_bin > 0 {
        0.5 * (g2[zero_bin - 1] + g2[zero_bin])
    } else {
        g2[zero_bin]
    };
    G2Result {
        histogram,
        g2,
        g2_zero,
    }
}

/// Generates a thermal (bunched) photon stream with coherence time
/// `tau_c_s` and mean rate `rate_hz` over `duration_s` — a
/// discrete-time doubly stochastic (intensity-modulated) Poisson
/// process. Useful for testing and for simulating the unheralded arm.
pub fn thermal_stream<R: Rng + ?Sized>(
    rng: &mut R,
    rate_hz: f64,
    tau_c_s: f64,
    duration_s: f64,
) -> TagStream {
    assert!(rate_hz > 0.0 && tau_c_s > 0.0 && duration_s > 0.0);
    // Slice time into cells of tau_c; each cell gets an exponentially
    // distributed intensity (thermal single-mode statistics).
    let cells = cast::f64_to_u64((duration_s / tau_c_s).ceil());
    let mut times = Vec::new();
    for c in 0..cells {
        let intensity = qfc_mathkit::rng::exponential(rng, 1.0 / (rate_hz * tau_c_s));
        let n = qfc_mathkit::rng::poisson(rng, intensity);
        let t0 = cast::to_f64(c) * tau_c_s;
        for _ in 0..n {
            let t = t0 + rng.gen::<f64>() * tau_c_s;
            if t < duration_s {
                times.push(cast::f64_to_i64(t * 1e12));
            }
        }
    }
    TagStream::from_unsorted(times)
}

/// Generates a Poissonian (coherent) stream at `rate_hz`.
pub fn poissonian_stream<R: Rng + ?Sized>(
    rng: &mut R,
    rate_hz: f64,
    duration_s: f64,
) -> TagStream {
    let n = qfc_mathkit::rng::poisson(rng, rate_hz * duration_s);
    (0..n)
        .map(|_| cast::f64_to_i64(rng.gen::<f64>() * duration_s * 1e12))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::rng::rng_from_seed;

    #[test]
    fn beam_split_conserves_events() {
        let mut rng = rng_from_seed(81);
        let input: TagStream = (0..10_000i64).map(|k| k * 1000).collect();
        let (a, b) = beam_split(&mut rng, &input);
        assert_eq!(a.len() + b.len(), input.len());
        let frac = a.len() as f64 / input.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "split fraction {frac}");
    }

    #[test]
    fn poissonian_light_has_flat_g2() {
        let mut rng = rng_from_seed(82);
        let stream = poissonian_stream(&mut rng, 100_000.0, 8.0);
        let g2 = measure_g2(&mut rng, &stream, 200_000, 10_000);
        assert!((g2.g2_zero - 1.0).abs() < 0.1, "g2(0) = {}", g2.g2_zero);
    }

    #[test]
    fn thermal_light_bunches() {
        let mut rng = rng_from_seed(83);
        // Coherence time 5 µs, bins well inside it.
        let stream = thermal_stream(&mut rng, 60_000.0, 5e-6, 12.0);
        let g2 = measure_g2(&mut rng, &stream, 50_000_000, 1_000_000);
        assert!(g2.g2_zero > 1.6, "g2(0) = {}", g2.g2_zero);
        // Bunching decays at large delay (baseline ≈ 1 by construction).
        let tail = *g2.g2.first().expect("bins");
        assert!(tail < 1.3, "tail {tail}");
    }

    #[test]
    fn thermal_rate_matches_request() {
        let mut rng = rng_from_seed(84);
        let stream = thermal_stream(&mut rng, 50_000.0, 2e-6, 10.0);
        let rate = stream.rate_hz(10.0);
        assert!((rate - 50_000.0).abs() / 50_000.0 < 0.1, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "at least 100 events")]
    fn g2_needs_events() {
        let mut rng = rng_from_seed(85);
        let tiny: TagStream = (0..10i64).collect();
        let _ = measure_g2(&mut rng, &tiny, 1000, 100);
    }
}
