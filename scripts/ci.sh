#!/usr/bin/env bash
# Tier-1 gate: release build, root test suite, runtime-crate lints, and a
# seconds-scale bench smoke run that cross-checks serial vs parallel
# determinism. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -p qfc-runtime -- -D warnings"
cargo clippy -p qfc-runtime -- -D warnings

# Library crates must not panic via unwrap/expect: every fallible path
# either returns a QfcError or panics through a validated legacy wrapper.
echo "==> cargo clippy (library no-unwrap gate)"
cargo clippy --no-deps --lib \
  -p qfc-mathkit -p qfc-faults -p qfc-runtime -p qfc-obs -p qfc-photonics \
  -p qfc-quantum -p qfc-timetag -p qfc-interferometry -p qfc-tomography \
  -p qfc-core \
  -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> qfc-bench --smoke (serial/parallel determinism cross-check)"
./target/release/qfc-bench --smoke --out target/BENCH_smoke.json
if grep -q '"oversubscribed": true' target/BENCH_smoke.json; then
  echo "WARNING: bench ran more threads than host CPUs; speedup figures" \
       "are oversubscription noise (only the determinism check is valid)." >&2
fi

echo "==> fault matrix (graceful-degradation smoke run)"
cargo run --release --example fault_matrix > target/FAULT_MATRIX.md

echo "CI gate passed."
