//! Serde round-trips of the public data types (C-SERDE): configs,
//! reports, and physical objects must survive JSON serialization, so
//! downstream pipelines can persist and replay experiment records.

use qfc::core::heralded::{run_heralded_experiment, HeraldedConfig, HeraldedReport};
use qfc::core::report::ExperimentReport;
use qfc::core::source::QfcSource;
use qfc::core::timebin::TimeBinConfig;
use qfc::mathkit::cmatrix::CMatrix;
use qfc::photonics::pump::PumpConfig;
use qfc::photonics::ring::Microring;
use qfc::photonics::units::{Frequency, Power, Wavelength};
use qfc::quantum::density::DensityMatrix;
use qfc::quantum::state::PureState;
use qfc::timetag::detector::SinglePhotonDetector;
use qfc::timetag::events::TagStream;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn units_roundtrip() {
    let f = Frequency::from_thz(193.4);
    assert_eq!(roundtrip(&f), f);
    let w = Wavelength::from_nm(1550.0);
    assert_eq!(roundtrip(&w), w);
    let p = Power::from_mw(15.0);
    assert_eq!(roundtrip(&p), p);
}

#[test]
fn device_roundtrip() {
    // JSON float printing can drift the last ULP (e.g. −1e-26 →
    // −9.999999999999999e-27), so compare derived physics, not bits.
    let ring = Microring::paper_device();
    let back = roundtrip(&ring);
    assert!((back.linewidth().hz() - ring.linewidth().hz()).abs() < 1.0);
    assert!((back.radius() - ring.radius()).abs() < 1e-12);
    assert!(
        (back.field_enhancement_power() - ring.field_enhancement_power()).abs() < 1e-6
    );
}

#[test]
fn source_and_pump_roundtrip() {
    for source in [
        QfcSource::paper_device(),
        QfcSource::paper_device_type2(),
        QfcSource::paper_device_timebin(),
    ] {
        let back = roundtrip(&source);
        assert_eq!(back.regime(), source.regime());
        assert_eq!(back.pump_coupling, source.pump_coupling);
        // Derived emission figures survive to within float-print drift.
        if source.regime() == qfc::core::source::EmissionRegime::HeraldedSinglePhotons {
            let (a, b) = (back.pair_rate_cw(1), source.pair_rate_cw(1));
            assert!((a - b).abs() / b < 1e-9, "{a} vs {b}");
        }
    }
    let pump = PumpConfig::paper_double_pulse();
    assert_eq!(roundtrip(&pump), pump);
}

#[test]
fn quantum_states_roundtrip() {
    let state = qfc::quantum::bell::bell_phi(0.7);
    let back: PureState = roundtrip(&state);
    assert!(back.approx_eq_up_to_phase(&state, 1e-12));
    let rho = DensityMatrix::from_pure(&state).depolarize(0.2);
    let back: DensityMatrix = roundtrip(&rho);
    assert!(back.as_matrix().approx_eq(rho.as_matrix(), 1e-12));
}

#[test]
fn matrices_roundtrip() {
    let m = CMatrix::from_fn(3, 4, |i, j| {
        qfc::mathkit::complex::Complex64::new(i as f64, j as f64)
    });
    assert_eq!(roundtrip(&m), m);
}

#[test]
fn configs_roundtrip() {
    assert_eq!(roundtrip(&HeraldedConfig::paper()), HeraldedConfig::paper());
    assert_eq!(roundtrip(&TimeBinConfig::paper()), TimeBinConfig::paper());
    assert_eq!(
        roundtrip(&SinglePhotonDetector::ingaas_paper()),
        SinglePhotonDetector::ingaas_paper()
    );
}

#[test]
fn experiment_report_roundtrip() {
    let source = QfcSource::paper_device();
    let mut cfg = HeraldedConfig::fast_demo();
    cfg.duration_s = 1.0;
    cfg.channels = 1;
    cfg.linewidth_pairs = 1000;
    let report = run_heralded_experiment(&source, &cfg, 1234);
    let back: HeraldedReport = roundtrip(&report);
    assert_eq!(back.coincidence_matrix, report.coincidence_matrix);
    assert_eq!(back.channels.len(), report.channels.len());
    let table: ExperimentReport = roundtrip(&report.to_report());
    assert_eq!(table.comparisons.len(), report.to_report().comparisons.len());
}

#[test]
fn tag_streams_roundtrip() {
    let s = TagStream::from_unsorted(vec![5, 1, 9, 9]);
    assert_eq!(roundtrip(&s), s);
}
