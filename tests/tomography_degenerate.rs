//! Degenerate-data hardening of the tomography pipeline, end to end:
//!
//! * every `try_*` reconstruction entry point returns a typed
//!   [`QfcError`] — never panics — on all-zero counts, empty setting
//!   lists, mixed-arity setting lists, and malformed count tables;
//! * the supervisor's fallback degrades gracefully: degenerate data
//!   that defeats the MLE *and* linear inversion surfaces as an error,
//!   while recoverable data falls back and records it;
//! * a zero-iteration budget is legal and reports `converged: false`;
//! * the streaming count accumulator is byte-identical to the
//!   materializing `simulate_counts_seeded` at 1, 4, and 8 worker
//!   threads, on arbitrary (state, shots, seed) draws — the invariant
//!   that makes count shards a safe campaign decomposition unit.

use proptest::prelude::*;
use qfc::core::supervisor::reconstruct_with_fallback;
use qfc::faults::{HealthReport, QfcError, RecoveryAction};
use qfc::quantum::bell::werner_state;
use qfc::runtime::with_threads;
use qfc::tomography::counts::{simulate_counts_seeded, TomographyData};
use qfc::tomography::reconstruct::{
    try_linear_inversion, try_mle_reconstruction, MleAcceleration, MleOptions,
};
use qfc::tomography::settings::{all_settings, PauliBasis, Setting};
use qfc::tomography::stream::{try_stream_counts_seeded, CountAccumulator};

/// All-dark data: settings present, every histogram zero.
fn all_dark(qubits: usize) -> TomographyData {
    let settings = all_settings(qubits);
    TomographyData {
        counts: settings.iter().map(|s| vec![0u64; s.outcomes()]).collect(),
        settings,
    }
}

fn mixed_arity() -> TomographyData {
    TomographyData {
        settings: vec![
            Setting::from_bases(&[PauliBasis::Z]),
            Setting::from_bases(&[PauliBasis::Z, PauliBasis::X]),
        ],
        counts: vec![vec![5, 3], vec![1, 1, 1, 1]],
    }
}

#[test]
fn all_zero_counts_yield_singular_system_not_panic() {
    for opts in [
        MleOptions::default(),
        MleOptions {
            acceleration: MleAcceleration::accelerated(),
            ..MleOptions::default()
        },
    ] {
        let err = try_mle_reconstruction(&all_dark(2), &opts).unwrap_err();
        assert!(matches!(err, QfcError::SingularSystem { .. }), "{err}");
    }
}

#[test]
fn empty_setting_list_yields_insufficient_data() {
    let empty = TomographyData {
        settings: vec![],
        counts: vec![],
    };
    let err = try_mle_reconstruction(&empty, &MleOptions::default()).unwrap_err();
    assert!(matches!(err, QfcError::InsufficientData { .. }), "{err}");
    let err = try_linear_inversion(&empty).unwrap_err();
    assert!(matches!(err, QfcError::InsufficientData { .. }), "{err}");
    let err = empty.try_qubits().unwrap_err();
    assert!(matches!(err, QfcError::InsufficientData { .. }), "{err}");
}

#[test]
fn mixed_arity_settings_yield_insufficient_data() {
    let data = mixed_arity();
    let err = try_mle_reconstruction(&data, &MleOptions::default()).unwrap_err();
    assert!(err.to_string().contains("mixed-arity"), "{err}");
    // Linear inversion used to zip-truncate Pauli-string compatibility
    // checks over mixed lists; it must reject them instead.
    let err = try_linear_inversion(&data).unwrap_err();
    assert!(matches!(err, QfcError::InsufficientData { .. }), "{err}");
}

#[test]
fn malformed_count_table_yields_invalid_parameter() {
    let settings = all_settings(1);
    let data = TomographyData {
        counts: vec![vec![1, 2]; settings.len() + 1],
        settings,
    };
    let err = data.validate().unwrap_err();
    assert!(matches!(err, QfcError::InvalidParameter { .. }), "{err}");
}

#[test]
fn zero_iteration_budget_is_legal_and_unconverged() {
    let truth = werner_state(0.83, 0.0);
    let data = simulate_counts_seeded(&truth, &all_settings(2), 500, 5);
    let opts = MleOptions {
        max_iterations: 0,
        ..MleOptions::default()
    };
    let result = try_mle_reconstruction(&data, &opts).expect("legal budget");
    assert_eq!(result.iterations, 0);
    assert!(!result.converged);
}

#[test]
fn supervisor_fallback_surfaces_degenerate_data_as_error() {
    // All-dark data defeats MLE (zero grand total) and then linear
    // inversion too (every setting total is zero → informationally
    // incomplete): the supervisor must hand back an error, not panic.
    let mut health = HealthReport::pristine();
    let err = reconstruct_with_fallback(&all_dark(2), &MleOptions::default(), &mut health)
        .unwrap_err();
    assert!(matches!(err, QfcError::InsufficientData { .. }), "{err}");
    assert!(
        health
            .recovery_actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::Fallback { from, .. } if from == "MLE")),
        "fallback must be recorded before linear inversion is attempted"
    );
}

#[test]
fn streaming_accumulator_overflow_is_an_error() {
    let settings = all_settings(1);
    let mut acc = CountAccumulator::try_new(&settings).expect("valid settings");
    acc.absorb_histogram(0, &[u64::MAX, 0]).expect("first shard");
    let err = acc.absorb_histogram(0, &[1, 0]).unwrap_err();
    assert!(matches!(err, QfcError::InvalidParameter { .. }), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streaming accumulation reproduces the materializing path bit for
    /// bit at 1, 4, and 8 worker threads.
    #[test]
    fn streaming_counts_byte_identical_across_thread_counts(
        visibility in 0.5f64..1.0,
        dephasing in 0.0f64..0.3,
        shots in 1u64..400,
        seed in 0u64..u64::MAX,
    ) {
        let truth = werner_state(visibility, dephasing);
        let settings = all_settings(2);
        let reference = simulate_counts_seeded(&truth, &settings, shots, seed);
        for threads in [1usize, 4, 8] {
            let streamed = with_threads(threads, || {
                try_stream_counts_seeded(&truth, &settings, shots, seed)
            })
            .expect("valid settings");
            prop_assert_eq!(
                &streamed,
                &reference,
                "stream at {} threads drifted from the materializing path",
                threads
            );
        }
    }
}
