//! Density-matrix reconstruction: linear inversion and iterative
//! maximum-likelihood (RρR).
//!
//! Linear inversion is unbiased but can return unphysical (negative-
//! eigenvalue) matrices at finite counts; the paper-standard pipeline is
//! the iterative RρR maximum-likelihood algorithm, which stays in the
//! physical cone. The ablation bench `ablation_tomography` compares them.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::hermitian::psd_projection;
use qfc_quantum::density::DensityMatrix;

use crate::counts::TomographyData;
use crate::settings::{pauli_string_matrix, PauliBasis, ProjectorSet};

/// Reconstructs a Hermitian unit-trace matrix by Pauli-basis linear
/// inversion: `ρ = 2⁻ⁿ Σ_s ⟨σ_s⟩ σ_s`, with each Pauli-string expectation
/// averaged over every compatible measurement setting.
///
/// The result may have (slightly) negative eigenvalues at finite counts;
/// pair with [`project_physical`] when a valid state is required.
///
/// # Panics
///
/// Panics if the data is empty or settings are inconsistent.
pub fn linear_inversion(data: &TomographyData) -> CMatrix {
    match try_linear_inversion(data) {
        Ok(rho) => rho,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible form of [`linear_inversion`]: returns
/// [`QfcError::InsufficientData`] for informationally incomplete data
/// (including an empty or mixed-arity setting list, which the
/// Pauli-string compatibility zip below would otherwise silently
/// truncate) instead of panicking.
pub fn try_linear_inversion(data: &TomographyData) -> QfcResult<CMatrix> {
    data.validate()?;
    let n = data.qubits();
    let dim = 1usize << n;
    let mut rho = CMatrix::zeros(dim, dim);
    // Enumerate all 4ⁿ Pauli strings as base-4 digits:
    // 0 = I, 1 = X, 2 = Y, 3 = Z per qubit.
    let strings = 4usize.pow(cast::usize_to_u32(n));
    for code in 0..strings {
        let digits: Vec<usize> = (0..n)
            .map(|q| (code / 4usize.pow(cast::usize_to_u32(n - 1 - q))) % 4)
            .collect();
        let string: Vec<Option<PauliBasis>> = digits
            .iter()
            .map(|&d| match d {
                0 => None,
                1 => Some(PauliBasis::X),
                2 => Some(PauliBasis::Y),
                _ => Some(PauliBasis::Z),
            })
            .collect();
        // Expectation from all compatible settings.
        let mut acc = 0.0;
        let mut n_compat = 0usize;
        let mask: usize = digits
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != 0)
            .map(|(q, _)| 1usize << (n - 1 - q))
            .sum();
        for (s_idx, setting) in data.settings.iter().enumerate() {
            let compatible = string.iter().zip(&setting.0).all(|(want, have)| {
                want.is_none_or(|w| w == *have)
            });
            if !compatible || data.setting_total(s_idx) == 0 {
                continue;
            }
            let mut exp = 0.0;
            for o in 0..setting.outcomes() {
                exp += data.frequency(s_idx, o) * setting.outcome_sign(o, mask);
            }
            acc += exp;
            n_compat += 1;
        }
        if n_compat == 0 {
            return Err(QfcError::InsufficientData {
                context: format!(
                    "no compatible setting for Pauli string {digits:?}; \
                     tomography data is informationally incomplete"
                ),
            });
        }
        let expectation = acc / cast::to_f64(n_compat);
        let sigma = pauli_string_matrix(&string);
        rho = &rho + &sigma.scale(expectation / cast::to_f64(dim));
    }
    Ok(rho)
}

/// Projects a Hermitian matrix onto the physical state space: clips
/// negative eigenvalues and renormalizes the trace to 1.
///
/// # Panics
///
/// Panics if the projected trace vanishes.
pub fn project_physical(mat: &CMatrix) -> DensityMatrix {
    match try_project_physical(mat) {
        Ok(rho) => rho,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible form of [`project_physical`]: reports a vanishing projected
/// trace (or a non-Hermitian input the density-matrix constructor
/// rejects) instead of panicking.
pub fn try_project_physical(mat: &CMatrix) -> QfcResult<DensityMatrix> {
    let p = psd_projection(mat);
    let tr = p.trace().re;
    if tr.is_nan() || tr <= 1e-12 {
        return Err(QfcError::SingularSystem {
            context: "physical projection: projection annihilated the matrix".to_owned(),
        });
    }
    DensityMatrix::from_matrix(p.scale(1.0 / tr))
        .ok_or_else(|| QfcError::non_finite("physical projection"))
}

/// Iteration scheme for the RρR fixed-point search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MleAcceleration {
    /// Plain RρR: `ρ ← RρR / tr(RρR)`. Bit-identical to the historical
    /// implementation; the golden fixtures replay this path.
    #[default]
    Classic,
    /// Over-relaxed RρR: `ρ ← AρA / tr(AρA)` with
    /// `A = (1−γ)·I + γ·R`. `A` is Hermitian, so the sandwich stays
    /// positive semidefinite for any real `γ`; `γ = 1` is exactly a
    /// classic step. The schedule is deterministic: `γ` grows by
    /// `growth` after every iteration (capped at `max_step`), and a
    /// log-likelihood gate rolls the iterate back and resets `γ` to 1
    /// whenever over-relaxation overshoots the likelihood ridge.
    Accelerated {
        /// Upper bound on the over-relaxation factor `γ`.
        max_step: f64,
        /// Multiplicative `γ` growth per iteration (> 1).
        growth: f64,
    },
}

impl MleAcceleration {
    /// The default accelerated schedule used by benches and ablations:
    /// `γ` grows 1.4× per iteration up to 8.
    pub fn accelerated() -> Self {
        Self::Accelerated {
            max_step: 8.0,
            growth: 1.4,
        }
    }
}

/// Options for the iterative MLE reconstruction.
///
/// Serialization is hand-written (the vendored derive has no field
/// attributes): `acceleration` is emitted only when it differs from
/// [`MleAcceleration::Classic`] and defaults to `Classic` when absent,
/// so pre-acceleration serialized options stay readable and classic
/// options serialize exactly as before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MleOptions {
    /// Maximum RρR iterations.
    pub max_iterations: usize,
    /// Stop when the Frobenius norm of the update falls below this.
    pub tolerance: f64,
    /// Iteration scheme (defaults to [`MleAcceleration::Classic`], the
    /// golden-fixture path).
    pub acceleration: MleAcceleration,
}

impl Default for MleOptions {
    fn default() -> Self {
        Self {
            max_iterations: 300,
            tolerance: 1e-10,
            acceleration: MleAcceleration::Classic,
        }
    }
}

impl Serialize for MleOptions {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (
                "max_iterations".to_string(),
                Serialize::to_value(&self.max_iterations),
            ),
            ("tolerance".to_string(), Serialize::to_value(&self.tolerance)),
        ];
        if self.acceleration != MleAcceleration::Classic {
            fields.push((
                "acceleration".to_string(),
                Serialize::to_value(&self.acceleration),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for MleOptions {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let acceleration = match v.get_field("acceleration") {
            Ok(a) => Deserialize::from_value(a)?,
            Err(_) => MleAcceleration::Classic,
        };
        Ok(Self {
            max_iterations: Deserialize::from_value(v.get_field("max_iterations")?)?,
            tolerance: Deserialize::from_value(v.get_field("tolerance")?)?,
            acceleration,
        })
    }
}

/// Result of an MLE reconstruction.
///
/// Serialization is hand-written: `accelerated_steps` is emitted only
/// when non-zero (and defaults to `0` when absent), so classic results
/// serialize byte-identically to the historical four-field format the
/// golden fixtures pin.
#[derive(Debug, Clone)]
pub struct MleResult {
    /// The reconstructed physical state.
    pub rho: DensityMatrix,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final update norm.
    pub final_update: f64,
    /// `true` when the final update met the tolerance within the
    /// iteration budget — `false` signals divergence and is the trigger
    /// for the supervisor's linear-inversion fallback.
    pub converged: bool,
    /// Iterations that took an over-relaxed (`γ > 1`) step; always `0`
    /// on the classic path.
    pub accelerated_steps: usize,
}

impl Serialize for MleResult {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("rho".to_string(), Serialize::to_value(&self.rho)),
            ("iterations".to_string(), Serialize::to_value(&self.iterations)),
            (
                "final_update".to_string(),
                Serialize::to_value(&self.final_update),
            ),
            ("converged".to_string(), Serialize::to_value(&self.converged)),
        ];
        if self.accelerated_steps != 0 {
            fields.push((
                "accelerated_steps".to_string(),
                Serialize::to_value(&self.accelerated_steps),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for MleResult {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let accelerated_steps = match v.get_field("accelerated_steps") {
            Ok(a) => Deserialize::from_value(a)?,
            Err(_) => 0,
        };
        Ok(Self {
            rho: Deserialize::from_value(v.get_field("rho")?)?,
            iterations: Deserialize::from_value(v.get_field("iterations")?)?,
            final_update: Deserialize::from_value(v.get_field("final_update")?)?,
            converged: Deserialize::from_value(v.get_field("converged")?)?,
            accelerated_steps,
        })
    }
}

/// Iterative RρR maximum-likelihood reconstruction.
///
/// `ρ_{k+1} ∝ R ρ_k R` with `R = Σ_{s,o} (f_{s,o}/p_{s,o})·Π_{s,o}`,
/// starting from the maximally mixed state. For informationally complete
/// data this converges to the maximum-likelihood physical state.
///
/// Builds the outcome projectors for this call only; reconstructions
/// that share one setting list (bootstrap replicas, per-channel scans)
/// should build a [`ProjectorSet`] once and call
/// [`mle_reconstruction_with`].
///
/// # Panics
///
/// Panics on degenerate data (empty or mixed-arity setting list, zero
/// total events, a trace-annihilating or non-finite update) — use
/// [`try_mle_reconstruction`] to handle those as errors.
pub fn mle_reconstruction(data: &TomographyData, options: &MleOptions) -> MleResult {
    match try_mle_reconstruction(data, options) {
        Ok(result) => result,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible form of [`mle_reconstruction`]: returns
/// [`QfcError::InsufficientData`] for an empty or mixed-arity setting
/// list, [`QfcError::SingularSystem`] for all-dark data (zero grand
/// total) or a trace-annihilating update, and [`QfcError::NonFinite`]
/// when the iteration produces a non-finite update norm — instead of
/// panicking deep inside the iteration.
pub fn try_mle_reconstruction(data: &TomographyData, options: &MleOptions) -> QfcResult<MleResult> {
    data.validate()?;
    try_mle_reconstruction_with(&ProjectorSet::new(&data.settings), data, options)
}

/// [`mle_reconstruction`] against a prebuilt projector cache.
///
/// # Panics
///
/// Panics if `projectors` was not built from `data`'s setting list, or
/// on degenerate data (see [`try_mle_reconstruction_with`]).
pub fn mle_reconstruction_with(
    projectors: &ProjectorSet,
    data: &TomographyData,
    options: &MleOptions,
) -> MleResult {
    match try_mle_reconstruction_with(projectors, data, options) {
        Ok(result) => result,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// [`try_mle_reconstruction`] against a prebuilt projector cache.
///
/// The RρR iteration runs entirely in scratch buffers: per iteration it
/// performs no allocation, no projector rebuild, and no full matrix
/// product where only a trace is needed. On the classic path the
/// arithmetic is ordered exactly as the allocating formulation
/// (`tr(ρ·Π)` via the skip-zero product loop, `R` accumulated in
/// `(s, o)` order over `f > 0` outcomes, `RρR` as two products), so
/// results are bit-identical to the historical implementation.
///
/// # Errors
///
/// * [`QfcError::InsufficientData`] — empty or mixed-arity setting list;
/// * [`QfcError::InvalidParameter`] — projector cache built from a
///   different setting list or dimension, malformed count table;
/// * [`QfcError::SingularSystem`] — zero total events, or an iteration
///   whose `RρR` update annihilated the trace;
/// * [`QfcError::NonFinite`] — the update norm left the finite range.
pub fn try_mle_reconstruction_with(
    projectors: &ProjectorSet,
    data: &TomographyData,
    options: &MleOptions,
) -> QfcResult<MleResult> {
    data.validate()?;
    let n = data.try_qubits()?;
    let dim = 1usize << n;
    if projectors.settings() != data.settings.len() {
        return Err(QfcError::invalid(format!(
            "projector cache does not match the data's settings \
             ({} cached, {} in data)",
            projectors.settings(),
            data.settings.len()
        )));
    }
    if projectors.dim() != dim {
        return Err(QfcError::invalid(format!(
            "projector cache dimension mismatch ({} cached, {dim} in data)",
            projectors.dim()
        )));
    }
    if data.grand_total() == 0 {
        return Err(QfcError::SingularSystem {
            context: "MLE reconstruction: zero total events (all-dark data)".to_owned(),
        });
    }
    let mut rho = CMatrix::identity(dim).scale(1.0 / cast::to_f64(dim));

    // Gather (projector, frequency) pairs once, in the same (s, o) order
    // and with the same f > 0 filter as the per-call rebuild this
    // replaces.
    let mut pairs: Vec<(&CMatrix, f64)> = Vec::new();
    for (s_idx, setting) in data.settings.iter().enumerate() {
        for o in 0..setting.outcomes() {
            let f = data.frequency(s_idx, o);
            if f > 0.0 {
                pairs.push((projectors.projector(s_idx, o), f));
            }
        }
    }

    let mut r = CMatrix::zeros(dim, dim);
    let mut r_rho = CMatrix::zeros(dim, dim);
    let mut next = CMatrix::zeros(dim, dim);
    let mut iterations = 0;
    let mut final_update = f64::INFINITY;
    let mut accelerated_steps = 0usize;
    match options.acceleration {
        MleAcceleration::Classic => {
            // qfc-lint: hot
            for _ in 0..options.max_iterations {
                iterations += 1;
                r.fill_zero();
                for &(proj, f) in &pairs {
                    let p = rho.trace_of_product(proj).re.max(1e-12);
                    r.add_scaled_assign(proj, f / p);
                }
                r.matmul_into(&rho, &mut r_rho);
                r_rho.matmul_into(&r, &mut next);
                let tr = next.trace().re;
                if !(tr.is_finite() && tr > 0.0) {
                    return Err(QfcError::SingularSystem {
                        context: format!(
                            "RρR update annihilated the trace (tr = {tr}) \
                             at iteration {iterations}"
                        ),
                    });
                }
                next.scale_in_place(1.0 / tr);
                final_update = next.frobenius_distance(&rho);
                if !final_update.is_finite() {
                    return Err(QfcError::non_finite("RρR update norm"));
                }
                std::mem::swap(&mut rho, &mut next);
                if final_update < options.tolerance {
                    break;
                }
            }
        }
        MleAcceleration::Accelerated { max_step, growth } => {
            if !(max_step >= 1.0 && max_step.is_finite() && growth >= 1.0 && growth.is_finite()) {
                return Err(QfcError::invalid(format!(
                    "accelerated MLE schedule needs finite max_step ≥ 1 and \
                     growth ≥ 1 (got max_step = {max_step}, growth = {growth})"
                )));
            }
            // Likelihood-gated over-relaxation. `prev` holds the iterate
            // the current one was produced from, so an overshoot can be
            // rolled back for the price of one extra R build.
            //
            // `R` sums one ≈identity resolution per measured setting, so
            // its fixed-point value is `fsum·I`, not `I`; the identity
            // mix is applied to `R/fsum` so that `γ` measures the
            // over-relaxation relative to a unit classic step. The
            // normalization cancels in `tr(AρA)` at `γ = 1`, which is
            // why the unscaled classic step below is the same map.
            let fsum: f64 = pairs.iter().map(|&(_, f)| f).sum();
            let mut prev = rho.clone();
            let mut gamma = 1.0f64;
            let mut ll_prev = f64::NEG_INFINITY;
            let mut update_prev = f64::INFINITY;
            // qfc-lint: hot
            for _ in 0..options.max_iterations {
                iterations += 1;
                r.fill_zero();
                let mut ll = 0.0;
                for &(proj, f) in &pairs {
                    let p = rho.trace_of_product(proj).re.max(1e-12);
                    ll += f * p.ln();
                    r.add_scaled_assign(proj, f / p);
                }
                if ll + 1e-12 * ll.abs().max(1.0) < ll_prev {
                    // The over-relaxed step lost likelihood: restore the
                    // parent iterate, fall back to a classic step, and
                    // rebuild R there.
                    std::mem::swap(&mut rho, &mut prev);
                    gamma = 1.0;
                    r.fill_zero();
                    ll = 0.0;
                    for &(proj, f) in &pairs {
                        let p = rho.trace_of_product(proj).re.max(1e-12);
                        ll += f * p.ln();
                        r.add_scaled_assign(proj, f / p);
                    }
                }
                ll_prev = ll;
                if gamma > 1.0 {
                    accelerated_steps += 1;
                    r.scale_in_place(1.0 / fsum);
                    r.lerp_identity_in_place(gamma);
                }
                prev.copy_from(&rho);
                r.matmul_into(&rho, &mut r_rho);
                r_rho.matmul_into(&r, &mut next);
                let tr = next.trace().re;
                if !(tr.is_finite() && tr > 0.0) {
                    return Err(QfcError::SingularSystem {
                        context: format!(
                            "accelerated RρR update annihilated the trace \
                             (tr = {tr}) at iteration {iterations}"
                        ),
                    });
                }
                next.scale_in_place(1.0 / tr);
                final_update = next.frobenius_distance(&rho);
                if !final_update.is_finite() {
                    return Err(QfcError::non_finite("accelerated RρR update norm"));
                }
                std::mem::swap(&mut rho, &mut next);
                // An over-relaxed step is ~γ× a classic step, so the
                // raw update norm says nothing about progress across
                // different γ; `update/γ` is the classic-equivalent
                // residual. Near the likelihood ridge the iterate can
                // oscillate with a stalled residual while the
                // likelihood is flat at FP resolution — dropping back
                // to a classic step there restores the monotone tail.
                // Once the residual clears the tolerance, the next
                // step is forced classic as well, so the update that
                // terminates the loop is a genuine (unamplified) one.
                let residual = final_update / gamma;
                if residual > update_prev || residual < options.tolerance {
                    gamma = 1.0;
                } else {
                    gamma = (gamma * growth).min(max_step);
                }
                update_prev = residual;
                if final_update < options.tolerance {
                    break;
                }
            }
            qfc_obs::counter_add(
                "mle_accelerated_steps",
                cast::usize_to_u64(accelerated_steps),
            );
        }
    }
    qfc_obs::counter_add("mle_iterations", cast::usize_to_u64(iterations));
    // Numerical cleanup: symmetrize and clip round-off negativity.
    let herm = CMatrix::from_fn(dim, dim, |i, j| {
        (rho[(i, j)] + rho[(j, i)].conj()).scale(0.5)
    });
    let rho = try_project_physical(&herm)?;
    Ok(MleResult {
        rho,
        iterations,
        converged: final_update < options.tolerance,
        final_update,
        accelerated_steps,
    })
}

/// Convenience: full pipeline from data to a physical state via linear
/// inversion + projection (the fast path).
pub fn linear_reconstruction(data: &TomographyData) -> DensityMatrix {
    project_physical(&linear_inversion(data))
}

/// Fallible form of [`linear_reconstruction`].
pub fn try_linear_reconstruction(data: &TomographyData) -> QfcResult<DensityMatrix> {
    try_project_physical(&try_linear_inversion(data)?)
}

/// Convenience accessor for matrix elements of a reconstruction in
/// reports.
pub fn element(rho: &DensityMatrix, i: usize, j: usize) -> Complex64 {
    rho.as_matrix()[(i, j)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::{exact_counts, simulate_counts};
    use crate::settings::all_settings;
    use qfc_mathkit::rng::rng_from_seed;
    use qfc_quantum::bell::{bell_phi_plus, werner_state};
    use qfc_quantum::fidelity::state_fidelity;
    use qfc_quantum::state::PureState;

    #[test]
    fn linear_inversion_exact_single_qubit() {
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let data = exact_counts(&rho, &all_settings(1), 10_000_000);
        let rec = linear_inversion(&data);
        assert!(rec.approx_eq(rho.as_matrix(), 1e-4));
    }

    #[test]
    fn linear_inversion_exact_bell_state() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let data = exact_counts(&rho, &all_settings(2), 10_000_000);
        let rec = project_physical(&linear_inversion(&data));
        let f = state_fidelity(&rec, &rho);
        assert!(f > 0.999, "F = {f}");
    }

    #[test]
    fn mle_recovers_werner_state() {
        let mut rng = rng_from_seed(31);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 4000);
        let result = mle_reconstruction(&data, &MleOptions::default());
        let f = state_fidelity(&result.rho, &rho);
        assert!(f > 0.99, "F = {f}");
        assert!(result.rho.is_physical(1e-9));
    }

    #[test]
    fn mle_beats_or_matches_linear_at_low_counts() {
        let mut rng = rng_from_seed(32);
        let truth = werner_state(0.9, 0.3);
        let data = simulate_counts(&mut rng, &truth, &all_settings(2), 60);
        let lin = linear_reconstruction(&data);
        let mle = mle_reconstruction(&data, &MleOptions::default()).rho;
        let f_lin = state_fidelity(&lin, &truth);
        let f_mle = state_fidelity(&mle, &truth);
        // MLE should not be (much) worse; both should be decent.
        assert!(f_mle > f_lin - 0.05, "MLE {f_mle} vs linear {f_lin}");
        assert!(f_mle > 0.8);
    }

    #[test]
    fn mle_converges() {
        let mut rng = rng_from_seed(33);
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let data = simulate_counts(&mut rng, &rho, &all_settings(1), 5000);
        let result = mle_reconstruction(&data, &MleOptions::default());
        assert!(result.iterations < 300, "iterations {}", result.iterations);
        assert!(result.final_update < 1e-8);
        assert!(result.converged);
    }

    #[test]
    fn mle_divergence_flagged() {
        let mut rng = rng_from_seed(35);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 4000);
        // One iteration against an unattainable tolerance cannot converge.
        let opts = MleOptions {
            max_iterations: 1,
            tolerance: 1e-30,
            ..MleOptions::default()
        };
        let result = mle_reconstruction(&data, &opts);
        assert!(!result.converged);
    }

    #[test]
    fn try_mle_rejects_all_dark_data() {
        let settings = all_settings(2);
        let data = TomographyData {
            counts: settings.iter().map(|s| vec![0u64; s.outcomes()]).collect(),
            settings,
        };
        let err = try_mle_reconstruction(&data, &MleOptions::default()).unwrap_err();
        assert!(matches!(err, QfcError::SingularSystem { .. }), "{err}");
        assert!(err.to_string().contains("zero total events"), "{err}");
    }

    #[test]
    fn try_mle_rejects_empty_and_mixed_arity_settings() {
        use crate::settings::Setting;
        let empty = TomographyData {
            settings: vec![],
            counts: vec![],
        };
        let err = try_mle_reconstruction(&empty, &MleOptions::default()).unwrap_err();
        assert!(matches!(err, QfcError::InsufficientData { .. }), "{err}");

        let mixed = TomographyData {
            settings: vec![
                Setting::from_bases(&[PauliBasis::Z]),
                Setting::from_bases(&[PauliBasis::Z, PauliBasis::X]),
            ],
            counts: vec![vec![3, 1], vec![1, 1, 1, 1]],
        };
        let err = try_mle_reconstruction(&mixed, &MleOptions::default()).unwrap_err();
        assert!(err.to_string().contains("mixed-arity"), "{err}");
    }

    #[test]
    fn try_mle_rejects_mismatched_projector_cache() {
        let mut rng = rng_from_seed(36);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 500);
        let wrong = ProjectorSet::new(&all_settings(1));
        let err = try_mle_reconstruction_with(&wrong, &data, &MleOptions::default())
            .unwrap_err();
        assert!(matches!(err, QfcError::InvalidParameter { .. }), "{err}");
    }

    #[test]
    fn try_mle_zero_iterations_returns_mixed_state_unconverged() {
        let mut rng = rng_from_seed(37);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 500);
        let opts = MleOptions {
            max_iterations: 0,
            ..MleOptions::default()
        };
        let result = try_mle_reconstruction(&data, &opts).expect("zero iterations is legal");
        assert_eq!(result.iterations, 0);
        assert!(!result.converged);
        // No iterations: still the maximally mixed starting point.
        let mixed = DensityMatrix::maximally_mixed(2);
        assert!(result.rho.as_matrix().approx_eq(mixed.as_matrix(), 1e-12));
    }

    #[test]
    fn accelerated_schedule_validates_parameters() {
        let mut rng = rng_from_seed(38);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 500);
        let opts = MleOptions {
            acceleration: MleAcceleration::Accelerated {
                max_step: 0.5,
                growth: 1.4,
            },
            ..MleOptions::default()
        };
        let err = try_mle_reconstruction(&data, &opts).unwrap_err();
        assert!(matches!(err, QfcError::InvalidParameter { .. }), "{err}");
    }

    #[test]
    fn accelerated_matches_classic_fidelity_in_fewer_iterations() {
        let mut rng = rng_from_seed(39);
        let truth = werner_state(0.9, 0.2);
        let data = simulate_counts(&mut rng, &truth, &all_settings(2), 2000);
        let opts = MleOptions {
            max_iterations: 4000,
            tolerance: 1e-8,
            acceleration: MleAcceleration::Classic,
        };
        let classic = try_mle_reconstruction(&data, &opts).expect("classic");
        let accel = try_mle_reconstruction(
            &data,
            &MleOptions {
                acceleration: MleAcceleration::accelerated(),
                ..opts
            },
        )
        .expect("accelerated");
        assert!(classic.converged, "classic run must converge");
        assert!(accel.converged, "accelerated run must converge");
        assert!(accel.accelerated_steps > 0, "schedule never over-relaxed");
        assert!(
            accel.iterations < classic.iterations,
            "accelerated {} vs classic {} iterations",
            accel.iterations,
            classic.iterations
        );
        let f_c = state_fidelity(&classic.rho, &truth);
        let f_a = state_fidelity(&accel.rho, &truth);
        assert!((f_c - f_a).abs() < 1e-6, "classic F {f_c} vs accelerated F {f_a}");
    }

    #[test]
    fn classic_path_reports_zero_accelerated_steps() {
        let mut rng = rng_from_seed(40);
        let rho = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 500);
        let result = mle_reconstruction(&data, &MleOptions::default());
        assert_eq!(result.accelerated_steps, 0);
        // The serialized form must not mention the field, so classic
        // results stay byte-identical to the historical format.
        let json = serde_json::to_string(&result).expect("serialize");
        assert!(!json.contains("accelerated_steps"));
    }

    #[test]
    fn try_linear_inversion_rejects_empty_and_mixed_arity() {
        use crate::settings::Setting;
        let empty = TomographyData {
            settings: vec![],
            counts: vec![],
        };
        assert!(matches!(
            try_linear_inversion(&empty).unwrap_err(),
            QfcError::InsufficientData { .. }
        ));
        let mixed = TomographyData {
            settings: vec![
                Setting::from_bases(&[PauliBasis::Z]),
                Setting::from_bases(&[PauliBasis::Z, PauliBasis::X]),
            ],
            counts: vec![vec![3, 1], vec![1, 1, 1, 1]],
        };
        assert!(matches!(
            try_linear_inversion(&mixed).unwrap_err(),
            QfcError::InsufficientData { .. }
        ));
    }

    #[test]
    fn try_linear_inversion_reports_incomplete_data() {
        use crate::settings::{PauliBasis, Setting};
        let rho = DensityMatrix::from_pure(&PureState::plus());
        let data = exact_counts(&rho, &[Setting::from_bases(&[PauliBasis::Z])], 1000);
        let err = try_linear_inversion(&data).unwrap_err();
        assert!(err.to_string().contains("informationally incomplete"));
    }

    #[test]
    fn projection_fixes_unphysical_matrix() {
        use qfc_mathkit::complex::C_ONE;
        // diag(1.2, −0.2): Hermitian, trace 1, not PSD.
        let bad = CMatrix::diag(&[C_ONE.scale(1.2), C_ONE.scale(-0.2)]);
        let fixed = project_physical(&bad);
        assert!(fixed.is_physical(1e-10));
        assert!((fixed.as_matrix().trace().re - 1.0).abs() < 1e-10);
        assert_eq!(element(&fixed, 1, 1).re, 0.0);
    }

    #[test]
    fn linear_inversion_finite_counts_near_truth() {
        let mut rng = rng_from_seed(34);
        let rho = werner_state(0.7, 0.0);
        let data = simulate_counts(&mut rng, &rho, &all_settings(2), 20_000);
        let rec = linear_reconstruction(&data);
        let f = state_fidelity(&rec, &rho);
        assert!(f > 0.995, "F = {f}");
    }

    #[test]
    #[should_panic(expected = "informationally incomplete")]
    fn incomplete_data_detected() {
        use crate::settings::{PauliBasis, Setting};
        let rho = DensityMatrix::from_pure(&PureState::plus());
        // Only Z measured: X and Y strings uncovered.
        let data = exact_counts(&rho, &[Setting::from_bases(&[PauliBasis::Z])], 1000);
        let _ = linear_inversion(&data);
    }
}
