//! `qfc-lint` CLI: lint the workspace, print the human report, write the
//! canonical JSON report and call graph, and (with `--deny`) fail on any
//! finding.
//!
//! ```text
//! qfc-lint [--root DIR] [--json PATH] [--callgraph PATH] [--deny]
//!          [--list-rules] [--explain RULE]
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage or I/O error (including `--explain` of an unknown
//! rule).

use std::path::PathBuf;
use std::process::ExitCode;

use qfc_lint::{find_workspace_root, report, rules, run};

struct Options {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    callgraph: Option<PathBuf>,
    deny: bool,
    list_rules: bool,
    explain: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: None,
        callgraph: None,
        deny: false,
        list_rules: false,
        explain: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a path argument")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--callgraph" => {
                let v = it.next().ok_or("--callgraph requires a path argument")?;
                opts.callgraph = Some(PathBuf::from(v));
            }
            "--explain" => {
                let v = it.next().ok_or("--explain requires a rule name")?;
                opts.explain = Some(v.clone());
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qfc-lint [--root DIR] [--json PATH] [--callgraph PATH] \
                     [--deny] [--list-rules] [--explain RULE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Collapses raw-string indentation for terminal output.
fn flat(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn explain(name: &str) -> ExitCode {
    let Some(rule) = rules::rule_by_name(name) else {
        eprintln!("unknown rule `{name}` — run `qfc-lint --list-rules` for the roster");
        return ExitCode::from(2);
    };
    println!("{}", rule.name);
    println!("{}", "=".repeat(rule.name.len()));
    println!();
    println!("{}", flat(rule.summary));
    println!();
    println!("Why: {}", flat(rule.rationale));
    println!();
    if rule.allowable {
        println!(
            "Suppressible with `// qfc-lint: allow({}) — <justification>` on the \
             offending line (trailing) or the line above (standalone).",
            rule.name
        );
    } else {
        println!("Not suppressible: fix the finding at the source.");
    }
    println!();
    println!("Example:");
    for line in rule.example.lines() {
        println!("    {line}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(name) = &opts.explain {
        return explain(name);
    }

    if opts.list_rules {
        for rule in rules::RULES {
            let allow = if rule.allowable {
                "allowable"
            } else {
                "not allowable"
            };
            println!("{:<18} [{allow}] {}", rule.name, flat(rule.summary));
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let run_report = match run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let json_path = opts
        .json
        .unwrap_or_else(|| root.join("target").join("LINT_REPORT.json"));
    let graph_path = opts
        .callgraph
        .unwrap_or_else(|| root.join("target").join("CALLGRAPH.json"));
    let json = report::to_json(&run_report);
    for (path, text) in [(&json_path, &json), (&graph_path, &run_report.callgraph)] {
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    print!("{}", report::to_human(&run_report));
    println!("  report: {}", json_path.display());
    println!("  call graph: {}", graph_path.display());

    if opts.deny && !run_report.findings.is_empty() {
        eprintln!(
            "qfc-lint --deny: {} finding(s) — fix them or add a justified \
             `// qfc-lint: allow(<rule>) — <why>` at the offending line",
            run_report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
