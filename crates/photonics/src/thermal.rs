//! Thermal behaviour of the microring: the thermo-optic effect that (a)
//! lets the resonances be tuned onto the ITU channel grid and (b) causes
//! the slow drift the §II self-locked scheme must survive.

use serde::{Deserialize, Serialize};

use crate::constants::ITU_ANCHOR_HZ;
use crate::ring::Microring;
use crate::units::Frequency;
use crate::waveguide::Polarization;

/// Thermo-optic model of a tuned ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Thermo-optic coefficient `dn/dT`, 1/K.
    pub dn_dt: f64,
    /// Operating (effective phase) index used for the shift conversion.
    pub n_eff: f64,
}

impl ThermalModel {
    /// Hydex thermo-optic response: dn/dT ≈ 1.0 × 10⁻⁵ /K (silica-like).
    pub fn hydex() -> Self {
        Self {
            dn_dt: 1.0e-5,
            n_eff: 1.60,
        }
    }

    /// Resonance frequency shift for a temperature change `dt_kelvin`:
    /// `Δν = −ν·(dn/dT)·ΔT / n_eff` (heating red-shifts the resonance).
    pub fn resonance_shift(&self, at: Frequency, dt_kelvin: f64) -> Frequency {
        Frequency::from_hz(-at.hz() * self.dn_dt * dt_kelvin / self.n_eff)
    }

    /// Tuning rate at a frequency, Hz per kelvin (negative).
    pub fn tuning_rate_hz_per_k(&self, at: Frequency) -> f64 {
        self.resonance_shift(at, 1.0).hz()
    }

    /// Temperature change that moves the ring's pump resonance onto the
    /// nearest 200-GHz ITU grid point.
    pub fn temperature_for_itu_alignment(&self, ring: &Microring) -> f64 {
        let pump = ring.resonance(Polarization::Te, 0).hz();
        let grid = 200e9;
        let target = ITU_ANCHOR_HZ + ((pump - ITU_ANCHOR_HZ) / grid).round() * grid;
        let needed_shift = target - pump;
        needed_shift / self.tuning_rate_hz_per_k(Frequency::from_hz(pump))
    }

    /// Temperature stability required to hold the resonance within
    /// `fraction` of the loaded linewidth — the number that shows why a
    /// 110-MHz resonance needs mK-class stability (or the self-locked
    /// scheme).
    pub fn required_stability_kelvin(&self, ring: &Microring, fraction: f64) -> f64 {
        assert!(fraction > 0.0, "fraction must be positive");
        let max_shift = fraction * ring.linewidth().hz();
        let rate = self
            .tuning_rate_hz_per_k(ring.resonance(Polarization::Te, 0))
            .abs();
        max_shift / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Microring;

    #[test]
    fn heating_red_shifts() {
        let m = ThermalModel::hydex();
        let shift = m.resonance_shift(Frequency::from_thz(193.4), 1.0);
        assert!(shift.hz() < 0.0);
        // ~1.2 GHz/K for silica-class glass at 193 THz.
        assert!((shift.hz().abs() - 1.2e9).abs() < 0.3e9, "shift {shift}");
    }

    #[test]
    fn shift_linear_in_temperature() {
        let m = ThermalModel::hydex();
        let f = Frequency::from_thz(193.4);
        let s1 = m.resonance_shift(f, 2.0).hz();
        let s2 = m.resonance_shift(f, 4.0).hz();
        assert!((s2 / s1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn itu_alignment_within_half_grid() {
        let m = ThermalModel::hydex();
        let ring = Microring::paper_device();
        let dt = m.temperature_for_itu_alignment(&ring);
        // Tuning by at most half a grid spacing: |ΔT| ≤ 100 GHz / 1.2 GHz/K.
        assert!(dt.abs() <= 100e9 / 1.1e9, "ΔT = {dt}");
        // Applying it lands the resonance on the grid.
        let pump = ring.resonance(Polarization::Te, 0).hz();
        let shifted = pump + m.resonance_shift(Frequency::from_hz(pump), dt).hz();
        let off_grid = (shifted - ITU_ANCHOR_HZ).rem_euclid(200e9);
        let dist = off_grid.min(200e9 - off_grid);
        assert!(dist < 1e6, "distance to grid {dist}");
    }

    #[test]
    fn milli_kelvin_stability_required() {
        let m = ThermalModel::hydex();
        let ring = Microring::paper_device();
        // Hold within 10 % of the 110-MHz linewidth: ~10 mK class.
        let dt = m.required_stability_kelvin(&ring, 0.1);
        assert!(dt > 1e-3 && dt < 5e-2, "ΔT = {dt}");
    }

    #[test]
    #[should_panic(expected = "fraction must be positive")]
    fn zero_fraction_rejected() {
        let m = ThermalModel::hydex();
        let _ = m.required_stability_kelvin(&Microring::paper_device(), 0.0);
    }
}
