//! Large-d qudit tomography A/B: dense classic representation vs the
//! rank-1 + packed-GEMM fast path, at the full (non-smoke) problem
//! sizes of the `qudit-mle-16` / `qudit-mle-64` bench workloads.
//!
//! Prints, per dimension, the interleaved best-of-3 wall time of both
//! legs of the same reconstruction driver, the speedup, and the
//! reconstruction fidelity against the synthetic truth state — the
//! measured numbers quoted in README "Large-d tomography" and
//! DESIGN.md §17.
//!
//! Run from the workspace root:
//! `cargo run --release --example qudit_tomography_scale`

use std::time::Instant;

use qfc::quantum::density::DensityMatrix;
use qfc::quantum::fidelity::state_fidelity;
use qfc::tomography::rank1::{
    deterministic_bases, exact_counts_repr, synthetic_low_rank_state, try_mle_repr,
    ProjectorReprSet,
};
use qfc::tomography::reconstruct::{MleAcceleration, MleOptions};

fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64() * 1e3, out)
}

fn main() {
    // Both legs pinned to one worker: the ratio isolates the kernels
    // and the projector representation, not the thread pool.
    for &(dim, rank, n_bases, max_iterations) in &[(16usize, 3usize, 17usize, 200usize), (64, 4, 16, 120)] {
        let rho = synthetic_low_rank_state(dim, rank, 41).expect("qudit dims are supported");
        let bases = deterministic_bases(dim, n_bases, 77).expect("bases orthonormalize");
        let set = ProjectorReprSet::try_rank1_from_bases(&bases).expect("bases are unitary");
        let dense_set = set.to_dense();
        let counts = exact_counts_repr(&rho, &set, 1_000_000).expect("state matches set");
        let opts = MleOptions {
            max_iterations,
            tolerance: 1e-10,
            acceleration: MleAcceleration::accelerated(),
        };

        let mut best_dense = f64::INFINITY;
        let mut best_rank1 = f64::INFINITY;
        let mut result = None;
        for _ in 0..3 {
            let (ms_dense, dense) = time_ms(|| {
                qfc::runtime::with_threads(1, || {
                    try_mle_repr(&dense_set, &counts, &opts).expect("dense leg reconstructs")
                })
            });
            best_dense = best_dense.min(ms_dense);
            let (ms_rank1, fast) = time_ms(|| {
                qfc::runtime::with_threads(1, || {
                    try_mle_repr(&set, &counts, &opts).expect("rank-1 leg reconstructs")
                })
            });
            best_rank1 = best_rank1.min(ms_rank1);
            let f_legs = state_fidelity(&dense.rho, &fast.rho);
            assert!(f_legs > 0.9999, "legs disagree: fidelity {f_legs}");
            result = Some(fast);
        }
        let fast = result.expect("three reps ran");
        let truth = DensityMatrix::from_matrix(rho).expect("truth state is physical");
        let fid = state_fidelity(&fast.rho, &truth);
        println!(
            "d={dim:<3} bases={n_bases:<3} projectors={:<5} iterations={:<4} \
             converged={} fidelity={fid:.6}",
            n_bases * dim,
            fast.iterations,
            fast.converged,
        );
        println!(
            "      dense classic leg {best_dense:>10.1} ms | rank-1 + packed {best_rank1:>10.1} ms \
             | speedup {:.2}x",
            best_dense / best_rank1
        );
    }
}
