//! Workspace discovery, the whole-tree lint run, and the two
//! workspace-level checks (`forbid-unsafe`, `ci-roster`).
//!
//! The run is two-phase: phase 1 analyzes every file in isolation
//! (tokens, symbols, line-rule findings, directives), then the call
//! graph is built over *all* files at once and the semantic pass
//! ([`crate::semantic`]) computes cross-file reachability before any
//! allow-directive suppression happens. Library crates under `crates/`
//! are linted under the strict profile; the workspace root crate
//! (`src/`, including `src/bin/`) and `examples/` are linted under the
//! relaxed profile — see [`crate::rules::Profile`].

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::{self, FileCtx, GraphSummary};
use crate::engine::{analyze_source, finalize_file, Analysis, Finding};
use crate::lexer::{lex, TokKind};
use crate::rules::{Profile, NON_LIBRARY_DIRS};
use crate::semantic;
use crate::LintError;

/// Aggregate result of linting the workspace.
#[derive(Debug)]
pub struct RunReport {
    /// Library crates that were scanned, sorted by name.
    pub crates: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings in canonical order (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Advisory findings (relaxed-profile downgrades) in the same
    /// canonical order. Advisories never fail `--deny`.
    pub advisories: Vec<Finding>,
    /// Per-file count of slice/array indexing expressions (files with a
    /// non-zero count only) — the panic-surface audit metric.
    pub index_audit: BTreeMap<String, u64>,
    /// Total allow directives seen.
    pub allows_total: u64,
    /// Allow directives that suppressed at least one finding.
    pub allows_used: u64,
    /// Canonical `CALLGRAPH.json` document for this run.
    pub callgraph: String,
    /// Headline call-graph numbers (mirrored in the JSON summary).
    pub graph: GraphSummary,
}

/// One discovered library crate.
struct CrateInfo {
    /// Package name from `Cargo.toml` (e.g. `qfc-core`).
    name: String,
    /// Directory under `crates/`.
    dir: PathBuf,
}

/// One lint scope: a directory tree analyzed under one crate name and
/// one profile.
struct Scope {
    name: String,
    profile: Profile,
    dir: PathBuf,
    /// Crate-root file that must declare `#![forbid(unsafe_code)]`,
    /// when this scope carries the forbid-unsafe obligation.
    forbid_lib: Option<PathBuf>,
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(LintError::NotAWorkspace(start.display().to_string()));
        }
    }
}

/// Runs the full lint pass: every library crate under `root/crates`
/// (strict), plus the root crate `src/` and `examples/` when present
/// (relaxed).
pub fn run(root: &Path) -> Result<RunReport, LintError> {
    let mut crates = Vec::new();
    let crates_dir = root.join("crates");
    let mut entries: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
    entries.retain(|p| p.is_dir());
    for dir in entries {
        let Some(dirname) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        if NON_LIBRARY_DIRS.contains(&dirname.as_str()) {
            continue;
        }
        let name = package_name(&dir.join("Cargo.toml"))?.unwrap_or(format!("qfc-{dirname}"));
        crates.push(CrateInfo { name, dir });
    }
    crates.sort_by(|a, b| a.name.cmp(&b.name));

    let mut scopes: Vec<Scope> = crates
        .iter()
        .map(|info| Scope {
            name: info.name.clone(),
            profile: Profile::Strict,
            dir: info.dir.join("src"),
            forbid_lib: Some(info.dir.join("src").join("lib.rs")),
        })
        .collect();
    // The workspace root crate (binaries + shared plumbing) and the
    // examples tree ride along under the relaxed profile. Both are
    // optional so reduced fixtures (mini workspaces in tests) lint
    // cleanly without them.
    let root_src = root.join("src");
    if root_src.is_dir() {
        let name = package_name(&root.join("Cargo.toml"))?.unwrap_or_else(|| "qfc".to_string());
        let lib = root_src.join("lib.rs");
        let forbid_lib = lib.is_file().then_some(lib);
        scopes.push(Scope {
            name,
            profile: Profile::Relaxed,
            dir: root_src,
            forbid_lib,
        });
    }
    let examples_dir = root.join("examples");
    if examples_dir.is_dir() {
        scopes.push(Scope {
            name: "examples".to_string(),
            profile: Profile::Relaxed,
            dir: examples_dir,
            forbid_lib: None,
        });
    }

    // Phase 1: per-file analysis, in deterministic scope-then-path order.
    let mut analyses: Vec<Analysis> = Vec::new();
    let mut fn_allows = Vec::new();
    let mut extra_findings: Vec<Finding> = Vec::new();
    let mut files_scanned = 0usize;
    for scope in &scopes {
        let mut files = Vec::new();
        collect_rs_files(&scope.dir, &mut files)?;
        files.sort();
        let mut saw_forbid_unsafe = scope.forbid_lib.is_none();
        for path in files {
            let rel = rel_path(root, &path);
            let text = fs::read_to_string(&path).map_err(|e| LintError::io(&path, &e))?;
            if scope.forbid_lib.as_deref() == Some(path.as_path()) {
                saw_forbid_unsafe = has_forbid_unsafe(&text);
            }
            let analysis = analyze_source(&scope.name, &rel, &text, scope.profile);
            fn_allows.push(analysis.fn_allow_lines());
            analyses.push(analysis);
            files_scanned += 1;
        }
        if !saw_forbid_unsafe {
            let lib = scope
                .forbid_lib
                .clone()
                .unwrap_or_else(|| scope.dir.join("lib.rs"));
            extra_findings.push(Finding {
                rule: "forbid-unsafe",
                file: rel_path(root, &lib),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{}` must declare #![forbid(unsafe_code)] in its crate root",
                    scope.name
                ),
                snippet: String::new(),
            });
        }
    }

    // Phase 2: the workspace call graph and the semantic pass over it.
    let ctxs: Vec<FileCtx> = analyses.iter().map(|a| a.ctx.clone()).collect();
    let graph = callgraph::build(&ctxs);
    let sem = semantic::analyze(&ctxs, &graph, &fn_allows);
    let callgraph_json = callgraph::to_json(&ctxs, &graph, &sem.summary);

    let mut report = RunReport {
        crates: crates.iter().map(|c| c.name.clone()).collect(),
        files_scanned,
        findings: extra_findings,
        advisories: Vec::new(),
        index_audit: BTreeMap::new(),
        allows_total: 0,
        allows_used: 0,
        callgraph: callgraph_json,
        graph: sem.summary,
    };
    let mut sem_findings = sem.findings;
    let mut sem_advisories = sem.advisories;
    for (i, analysis) in analyses.into_iter().enumerate() {
        let rel = analysis.ctx.file.clone();
        let file_report = finalize_file(
            analysis,
            std::mem::take(&mut sem_findings[i]),
            std::mem::take(&mut sem_advisories[i]),
            &sem.used_fn_allows[i],
        );
        report.allows_total += file_report.allows_total;
        report.allows_used += file_report.allows_used;
        if file_report.index_audit > 0 {
            report.index_audit.insert(rel, file_report.index_audit);
        }
        report.findings.extend(file_report.findings);
        report.advisories.extend(file_report.advisories);
    }

    check_ci_roster(root, &report.crates, &mut report.findings);

    let sort = |v: &mut Vec<Finding>| {
        v.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.col, a.rule, a.message.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.col,
                b.rule,
                b.message.as_str(),
            ))
        });
    };
    sort(&mut report.findings);
    sort(&mut report.advisories);
    Ok(report)
}

/// The `ci-roster` check: `scripts/ci.sh` must (a) invoke `qfc-lint`,
/// (b) either derive its clippy roster from `crates/*` (the `for d in
/// crates/*/` idiom) or hand-list every library crate — and in either
/// form never exclude a [`crate::rules::CLIPPY_REQUIRED`] crate the way
/// `qfc-bench` is excluded — (c) when it wires a bench baseline via
/// `--check-baseline`, that baseline must carry every gated workload
/// ([`crate::rules::GATED_WORKLOADS`]) so neither a sweep kernel nor
/// the campaign engine can drop out of the bench-regression gate
/// unnoticed, and (d) verify call-graph drift: some non-comment line
/// must compare a freshly generated `CALLGRAPH.json` against a second
/// run (`cmp`/`diff`), keeping the byte-determinism contract under CI.
fn check_ci_roster(root: &Path, crates: &[String], findings: &mut Vec<Finding>) {
    let ci_path = root.join("scripts").join("ci.sh");
    let rel = rel_path(root, &ci_path);
    let push = |findings: &mut Vec<Finding>, message: String| {
        findings.push(Finding {
            rule: "ci-roster",
            file: rel.clone(),
            line: 1,
            col: 1,
            message,
            snippet: String::new(),
        });
    };
    let Ok(text) = fs::read_to_string(&ci_path) else {
        push(
            findings,
            "scripts/ci.sh is missing — the CI gate is gone".to_string(),
        );
        return;
    };
    if !text.contains("qfc-lint") {
        push(
            findings,
            "scripts/ci.sh does not invoke qfc-lint — the static-analysis gate is \
             not wired into CI"
                .to_string(),
        );
    }
    let derives_dynamically = text.contains("crates/*/");
    if !derives_dynamically {
        let missing: Vec<&String> = crates
            .iter()
            .filter(|c| !text.contains(&format!("-p {c}")))
            .collect();
        if !missing.is_empty() {
            push(
                findings,
                format!(
                    "scripts/ci.sh hand-lists its clippy roster but omits {} — derive \
                     the roster from crates/* so new crates cannot skip the gate",
                    missing
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
        }
    }
    // A required crate (e.g. qfc-campaign) must never be carved out of
    // the clippy roster: neither skipped by an exclusion branch in the
    // dynamic loop (the `!= "qfc-bench"` idiom) nor omitted from a
    // hand-written list.
    for name in crate::rules::CLIPPY_REQUIRED {
        if !crates.iter().any(|c| c == name) {
            continue;
        }
        let excluded = text
            .lines()
            .any(|l| l.contains(name) && l.contains("!="));
        let listed = derives_dynamically || text.contains(&format!("-p {name}"));
        if excluded || !listed {
            push(
                findings,
                format!(
                    "scripts/ci.sh must keep `{name}` in the clippy no-unwrap roster — \
                     its crash-recovery guarantees rest on error-path returns, so \
                     excluding it from the panic-freedom gate is a robustness regression"
                ),
            );
        }
    }
    if let Some(baseline) = baseline_after_flag(&text) {
        match fs::read_to_string(root.join(&baseline)) {
            Ok(json) => {
                for workload in crate::rules::GATED_WORKLOADS {
                    if !json.contains(&format!("\"{workload}\"")) {
                        push(
                            findings,
                            format!(
                                "bench baseline {baseline} omits the gated workload \
                                 `{workload}` — its regression gate is gone; regenerate \
                                 the baseline with `qfc-bench --smoke --out {baseline}`"
                            ),
                        );
                    }
                }
            }
            Err(_) => push(
                findings,
                format!(
                    "scripts/ci.sh wires `--check-baseline {baseline}` but the file is \
                     unreadable — the bench-regression gate cannot run"
                ),
            ),
        }
    }
    let checks_drift = text.lines().any(|l| {
        let l = l.trim_start();
        !l.starts_with('#')
            && l.contains("CALLGRAPH")
            && (l.contains("cmp") || l.contains("diff"))
    });
    if !checks_drift {
        push(
            findings,
            "scripts/ci.sh never compares CALLGRAPH.json across two lint runs \
             (`cmp`/`diff`) — the byte-determinism contract is not enforced in CI"
                .to_string(),
        );
    }
}

/// The path token following `--check-baseline` in a shell script, if
/// any. Comment and `echo` lines are skipped so a mention of the flag
/// in banner output does not shadow the real invocation.
fn baseline_after_flag(text: &str) -> Option<String> {
    for line in text.lines() {
        let line = line.trim_start();
        if line.starts_with('#') || line.starts_with("echo ") {
            continue;
        }
        let mut toks = line.split_whitespace();
        while let Some(tok) = toks.next() {
            if tok == "--check-baseline" {
                return toks.next().map(str::to_string);
            }
        }
    }
    None
}

/// Whether the crate-root source declares `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(lib_rs: &str) -> bool {
    let toks = lex(lib_rs);
    let code: Vec<&crate::lexer::Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    code.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = fs::read_dir(dir).map_err(|e| LintError::io(dir, &e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::io(dir, &e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (canonical report form).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extracts `name = "…"` from a Cargo manifest's `[package]` section.
fn package_name(manifest: &Path) -> Result<Option<String>, LintError> {
    let text = fs::read_to_string(manifest).map_err(|e| LintError::io(manifest, &e))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Ok(Some(v.to_string()));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbid_unsafe_detection() {
        assert!(has_forbid_unsafe(
            "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n"
        ));
        assert!(!has_forbid_unsafe("#![warn(missing_docs)]\n"));
        // A mention inside a comment does not count.
        assert!(!has_forbid_unsafe("// #![forbid(unsafe_code)]\n"));
    }
}
