//! Entanglement-based QKD feasibility — the application the paper's
//! introduction motivates ("reliable, low cost and scalable on-chip
//! sources … for quantum communications").
//!
//! Each multiplexed time-bin Bell pair can drive a BBM92 link: the
//! measured fringe visibility sets the quantum bit error rate
//! (`QBER = (1 − V)/2`), which sets the asymptotic secret-key fraction
//! `r = 1 − 2·h₂(QBER)`; multiplexing multiplies the rate by the number
//! of violating channels.

use serde::{Deserialize, Serialize};

use crate::report::{Comparison, Expectation, ExperimentReport};
use crate::timebin::TimeBinReport;

/// Binary entropy `h₂(p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// QBER implied by a fringe visibility: `(1 − V)/2`.
pub fn qber_from_visibility(v: f64) -> f64 {
    ((1.0 - v.clamp(0.0, 1.0)) / 2.0).clamp(0.0, 0.5)
}

/// Asymptotic BBM92 secret-key fraction per sifted bit,
/// `r = max(0, 1 − 2·h₂(QBER))` (symmetric errors, one-way
/// post-processing).
pub fn secret_key_fraction(qber: f64) -> f64 {
    (1.0 - 2.0 * binary_entropy(qber)).max(0.0)
}

/// The 11 % QBER threshold above which no one-way key survives.
pub const QBER_THRESHOLD: f64 = 0.11;

/// Per-channel QKD figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelKeyRate {
    /// Channel index.
    pub m: u32,
    /// Fringe visibility used.
    pub visibility: f64,
    /// Implied QBER.
    pub qber: f64,
    /// Sifted-bit rate (half the post-selected coincidence rate), bit/s.
    pub sifted_rate_hz: f64,
    /// Asymptotic secret-key rate, bit/s.
    pub secret_key_rate_hz: f64,
}

/// Multiplexed QKD feasibility estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QkdReport {
    /// Per-channel figures.
    pub channels: Vec<ChannelKeyRate>,
    /// Aggregate secret-key rate over all channels, bit/s.
    pub total_secret_key_rate_hz: f64,
}

impl QkdReport {
    /// Comparison rows: every channel must stay below the QBER
    /// threshold and the aggregate key rate must be positive.
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("QKD feasibility over the multiplexed comb");
        let worst_qber = self
            .channels
            .iter()
            .map(|c| c.qber)
            .fold(0.0f64, f64::max);
        r.push(Comparison::new(
            "QKD",
            "worst channel QBER (one-way threshold 11 %)",
            QBER_THRESHOLD,
            worst_qber,
            "",
            Expectation::AtMost,
        ));
        r.push(Comparison::new(
            "QKD",
            "aggregate secret-key rate",
            0.0,
            self.total_secret_key_rate_hz,
            "bit/s",
            Expectation::AtLeast,
        ));
        r
    }
}

/// Derives the QKD feasibility from a §IV time-bin run: the fringe
/// visibility per channel sets the QBER; the mean fringe level per frame
/// times the frame rate gives the sifted rate.
///
/// `frame_rate_hz` is the double-pulse repetition rate (10 MHz in the
/// paper); `mean_coincidence_prob_per_frame` the phase-averaged
/// post-selected coincidence probability per channel (from the model).
pub fn qkd_from_timebin(
    report: &TimeBinReport,
    frame_rate_hz: f64,
    mean_coincidence_prob_per_frame: &[f64],
) -> QkdReport {
    assert_eq!(
        report.fringes.len(),
        mean_coincidence_prob_per_frame.len(),
        "one probability per channel required"
    );
    let mut channels = Vec::new();
    let mut total = 0.0;
    for (f, &p_mean) in report.fringes.iter().zip(mean_coincidence_prob_per_frame) {
        let v = f.fit.visibility;
        let qber = qber_from_visibility(v);
        // Basis sifting keeps half of the post-selected coincidences.
        let sifted = 0.5 * p_mean * frame_rate_hz;
        let key = sifted * secret_key_fraction(qber);
        total += key;
        channels.push(ChannelKeyRate {
            m: f.m,
            visibility: v,
            qber,
            sifted_rate_hz: sifted,
            secret_key_rate_hz: key,
        });
    }
    QkdReport {
        channels,
        total_secret_key_rate_hz: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::QfcSource;
    use crate::timebin::{
        channel_state_model, coincidence_probability, run_timebin_experiment, TimeBinConfig,
    };

    #[test]
    fn binary_entropy_reference_points() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.11) - 0.4999).abs() < 0.001);
    }

    #[test]
    fn qber_and_key_fraction() {
        // Paper's 83 % visibility → QBER 8.5 % → positive key.
        let q = qber_from_visibility(0.83);
        assert!((q - 0.085).abs() < 1e-12);
        assert!(secret_key_fraction(q) > 0.1);
        // Below the CHSH threshold the key vanishes.
        assert_eq!(secret_key_fraction(0.12), 0.0);
    }

    #[test]
    fn key_fraction_threshold_near_11_percent() {
        assert!(secret_key_fraction(0.109) > 0.0);
        assert_eq!(secret_key_fraction(0.111), 0.0);
    }

    #[test]
    fn timebin_run_yields_positive_multiplexed_key() {
        let source = QfcSource::paper_device_timebin();
        let cfg = TimeBinConfig::fast_demo();
        let report = run_timebin_experiment(&source, &cfg, 71);
        let probs: Vec<f64> = (1..=cfg.channels)
            .map(|m| {
                let model = channel_state_model(&source, &cfg, m);
                // Phase-average over the fringe.
                (0..16)
                    .map(|k| {
                        let phi = 2.0 * std::f64::consts::PI * k as f64 / 16.0;
                        coincidence_probability(&model, &cfg, phi, 0.0)
                    })
                    .sum::<f64>()
                    / 16.0
            })
            .collect();
        let qkd = qkd_from_timebin(&report, 10.0e6, &probs);
        assert_eq!(qkd.channels.len(), cfg.channels as usize);
        for c in &qkd.channels {
            assert!(c.qber < QBER_THRESHOLD, "m={}: QBER {}", c.m, c.qber);
            assert!(c.secret_key_rate_hz > 0.0);
        }
        assert!(qkd.total_secret_key_rate_hz > 1.0, "{}", qkd.total_secret_key_rate_hz);
        assert!(qkd.to_report().all_pass());
    }

    #[test]
    #[should_panic(expected = "one probability per channel")]
    fn mismatched_probabilities_rejected() {
        let source = QfcSource::paper_device_timebin();
        let mut cfg = TimeBinConfig::fast_demo();
        cfg.channels = 2;
        let report = run_timebin_experiment(&source, &cfg, 72);
        let _ = qkd_from_timebin(&report, 1e7, &[1e-5]);
    }
}
