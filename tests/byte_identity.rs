//! Byte-identity gate for the zero-allocation kernel rework.
//!
//! The fixtures under `tests/golden/` were generated from the tree *before*
//! the shot kernels were converted to precomputed sampling tables and
//! in-place linear algebra (`cargo run --release --example golden_fixtures`
//! regenerates them, but they must never change). Each test re-runs one
//! workload through the reworked kernels and demands the serialized JSON
//! match the pre-rework output byte for byte — the strongest possible
//! statement that the optimizations are pure refactors of the arithmetic,
//! not statistical approximations of it.

use std::fs;
use std::path::PathBuf;

use qfc::core::heralded::{run_heralded_experiment, HeraldedConfig};
use qfc::core::multiphoton::{run_four_photon_tomography, MultiPhotonConfig};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_event_mc, TimeBinConfig};
use qfc::quantum::bell::{bell_phi_plus, werner_state};
use qfc::quantum::fidelity::fidelity_with_pure;
use qfc::tomography::bootstrap::bootstrap_functional;
use qfc::tomography::counts::simulate_counts_seeded;
use qfc::tomography::rank1::{
    deterministic_bases, exact_counts_repr, synthetic_low_rank_state, try_mle_repr,
    ProjectorReprSet,
};
use qfc::tomography::reconstruct::{mle_reconstruction, MleOptions};
use qfc::tomography::settings::all_settings;

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn assert_bytes_match(name: &str, fresh: &str) {
    let pinned = golden(name);
    if fresh != pinned {
        // Locate the first differing byte so a failure points at the
        // drifted field instead of dumping two multi-kB JSON blobs.
        let at = fresh
            .bytes()
            .zip(pinned.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.len().min(pinned.len()));
        let lo = at.saturating_sub(60);
        panic!(
            "{name}: reworked kernel output drifted from the pre-rework golden \
             at byte {at}\n  golden: …{}…\n  fresh:  …{}…",
            &pinned[lo..(at + 60).min(pinned.len())],
            &fresh[lo..(at + 60).min(fresh.len())],
        );
    }
}

#[test]
fn timebin_event_mc_matches_pre_rework_bytes() {
    let source = QfcSource::paper_device_timebin();
    let mut cfg = TimeBinConfig::fast_demo();
    cfg.frames_per_point = 200_000;
    let phases: Vec<f64> = (0..6).map(|k| 0.3 * f64::from(k)).collect();
    let scan = run_timebin_event_mc(&source, &cfg, 1, &phases, 11);
    assert_bytes_match(
        "timebin_event_mc.json",
        &serde_json::to_string(&scan).expect("json"),
    );
}

#[test]
fn tomography_counts_match_pre_rework_bytes() {
    let truth = werner_state(0.83, 0.0);
    let data = simulate_counts_seeded(&truth, &all_settings(2), 500, 17);
    assert_bytes_match(
        "tomography_counts.json",
        &serde_json::to_string(&data).expect("json"),
    );
}

#[test]
fn mle_reconstruction_matches_pre_rework_bytes() {
    let truth = werner_state(0.83, 0.0);
    let data = simulate_counts_seeded(&truth, &all_settings(2), 500, 17);
    let mle = mle_reconstruction(&data, &MleOptions::default());
    assert_bytes_match(
        "mle_reconstruction.json",
        &serde_json::to_string(&mle).expect("json"),
    );
}

#[test]
fn bootstrap_mle_matches_pre_rework_bytes() {
    let truth = werner_state(0.83, 0.0);
    let data = simulate_counts_seeded(&truth, &all_settings(2), 500, 17);
    let target = bell_phi_plus();
    let opts = MleOptions {
        max_iterations: 50,
        tolerance: 1e-8,
        ..MleOptions::default()
    };
    let boot = bootstrap_functional(
        23,
        &data,
        6,
        |d| mle_reconstruction(d, &opts).rho,
        |rho| fidelity_with_pure(rho, &target),
    );
    assert_bytes_match(
        "bootstrap_mle.json",
        &serde_json::to_string(&boot).expect("json"),
    );
}

/// The `qudit_mle_rank1.json` reconstruction: the rank-1 + packed-GEMM
/// fast path's own pinned baseline (it is a new path, deliberately not
/// byte-comparable to the classic dense fixture).
fn qudit_rank1_json() -> String {
    let truth = synthetic_low_rank_state(8, 2, 5).expect("synthetic state");
    let bases = deterministic_bases(8, 9, 21).expect("bases");
    let set = ProjectorReprSet::try_rank1_from_bases(&bases).expect("set");
    let counts = exact_counts_repr(&truth, &set, 200_000).expect("counts");
    let opts = MleOptions {
        max_iterations: 60,
        tolerance: 1e-9,
        ..MleOptions::default()
    };
    let mle = try_mle_repr(&set, &counts, &opts).expect("rank-1 MLE");
    serde_json::to_string(&mle).expect("json")
}

#[test]
fn qudit_rank1_mle_matches_pinned_bytes() {
    assert_bytes_match("qudit_mle_rank1.json", &qudit_rank1_json());
}

#[test]
fn qudit_rank1_mle_bytes_invariant_across_thread_counts() {
    // The parallel expectation sweep merges fixed-size chunks in
    // chunk-index order, so the reconstruction must replay the pinned
    // golden byte-for-byte at *any* worker count.
    for threads in [1usize, 4, 8] {
        let json = qfc::runtime::with_threads(threads, qudit_rank1_json);
        assert_bytes_match("qudit_mle_rank1.json", &json);
    }
}

#[test]
fn heralded_pipeline_matches_pre_rework_bytes() {
    let source = QfcSource::paper_device();
    let mut cfg = HeraldedConfig::fast_demo();
    cfg.duration_s = 1.0;
    cfg.channels = 2;
    let report = run_heralded_experiment(&source, &cfg, 7);
    assert_bytes_match("heralded.json", &serde_json::to_string(&report).expect("json"));
}

#[test]
fn four_photon_tomography_matches_pre_rework_bytes() {
    let source = QfcSource::paper_device_timebin();
    let four = run_four_photon_tomography(&source, &MultiPhotonConfig::fast_demo(), 13);
    assert_bytes_match("four_photon.json", &serde_json::to_string(&four).expect("json"));
}
