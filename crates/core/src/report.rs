//! Paper-vs-measured reporting: typed comparison records, table
//! rendering, and JSON export for EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use qfc_faults::{FaultSchedule, HealthReport};
use qfc_obs::RunManifest;

/// How a measured value is judged against the paper's value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Expectation {
    /// Measured should be within a relative tolerance of the reference.
    Within {
        /// Relative tolerance (e.g. `0.25` = ±25 %).
        rel_tol: f64,
    },
    /// Measured should be at least the reference (e.g. a bound violated).
    AtLeast,
    /// Measured should be at most the reference (e.g. a fluctuation cap).
    AtMost,
    /// Measured should fall in the closed interval `[lo, hi]`.
    InRange {
        /// Lower edge.
        lo: f64,
        /// Upper edge.
        hi: f64,
    },
}

/// One paper-claim vs measured-value comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Experiment id, e.g. `"F2"` or `"T1"`.
    pub id: String,
    /// Human description of the quantity.
    pub quantity: String,
    /// The value the paper reports.
    pub paper_value: f64,
    /// The value this reproduction measured.
    pub measured_value: f64,
    /// Unit label.
    pub unit: String,
    /// How agreement is judged.
    pub expectation: Expectation,
}

impl Comparison {
    /// Creates a comparison row.
    pub fn new(
        id: &str,
        quantity: &str,
        paper_value: f64,
        measured_value: f64,
        unit: &str,
        expectation: Expectation,
    ) -> Self {
        Self {
            id: id.to_owned(),
            quantity: quantity.to_owned(),
            paper_value,
            measured_value,
            unit: unit.to_owned(),
            expectation,
        }
    }

    /// `true` when the measurement satisfies its expectation.
    ///
    /// A NaN measured value never passes, whatever the expectation — a
    /// degenerate analysis (e.g. a guarded [`relative_fluctuation`]
    /// returning NaN) must surface as a failing row, not slip through a
    /// comparison whose ordering happens to be vacuous.
    ///
    /// [`relative_fluctuation`]: qfc_mathkit::stats::relative_fluctuation
    pub fn passes(&self) -> bool {
        if self.measured_value.is_nan() {
            return false;
        }
        match self.expectation {
            Expectation::Within { rel_tol } => {
                if self.paper_value == 0.0 {
                    self.measured_value.abs() <= rel_tol
                } else {
                    ((self.measured_value - self.paper_value) / self.paper_value).abs() <= rel_tol
                }
            }
            Expectation::AtLeast => self.measured_value >= self.paper_value,
            Expectation::AtMost => self.measured_value <= self.paper_value,
            Expectation::InRange { lo, hi } => {
                self.measured_value >= lo && self.measured_value <= hi
            }
        }
    }
}

/// A full experiment report: a set of comparison rows with a title.
///
/// Serde impls are hand-written (the vendored serde has no
/// `skip_serializing_if`): the `manifest` field is only emitted when
/// present, so reports from uninstrumented runs stay byte-identical to
/// the pre-observability format.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment title, e.g. `"§II heralded single photons"`.
    pub title: String,
    /// The comparison rows.
    pub comparisons: Vec<Comparison>,
    /// Run health: injected faults and the recovery actions taken.
    /// [`HealthReport::pristine`] for a clean run.
    pub health: HealthReport,
    /// Run manifest recorded by an installed [`qfc_obs::Collector`];
    /// `None` for uninstrumented runs.
    pub manifest: Option<RunManifest>,
}

impl Serialize for ExperimentReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("title".to_owned(), self.title.to_value()),
            ("comparisons".to_owned(), self.comparisons.to_value()),
            ("health".to_owned(), self.health.to_value()),
        ];
        if let Some(m) = &self.manifest {
            fields.push(("manifest".to_owned(), manifest_to_value(m)));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ExperimentReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            title: String::from_value(v.get_field("title")?)?,
            comparisons: Vec::from_value(v.get_field("comparisons")?)?,
            health: HealthReport::from_value(v.get_field("health")?)?,
            manifest: match v.get_field("manifest") {
                Ok(field) => Some(manifest_from_value(field)?),
                Err(_) => None,
            },
        })
    }
}

fn manifest_to_value(m: &RunManifest) -> serde::Value {
    let mut fields = vec![
        ("seed".to_owned(), m.seed.to_value()),
        ("config_digest".to_owned(), m.config_digest.to_value()),
        ("threads".to_owned(), m.threads.to_value()),
        ("qfc_threads_env".to_owned(), m.qfc_threads_env.to_value()),
        ("fault_events".to_owned(), m.fault_events.to_value()),
        ("fault_kinds".to_owned(), m.fault_kinds.to_value()),
        ("crate_version".to_owned(), m.crate_version.to_value()),
    ];
    // Like `manifest` itself: the campaign block is only emitted when
    // present, so single-process manifests keep their legacy bytes.
    if let Some(c) = &m.campaign {
        fields.push((
            "campaign".to_owned(),
            serde::Value::Object(vec![
                ("campaign_id".to_owned(), c.campaign_id.to_value()),
                ("shards_total".to_owned(), c.shards_total.to_value()),
                ("shards_resumed".to_owned(), c.shards_resumed.to_value()),
                ("retries".to_owned(), c.retries.to_value()),
                ("quarantined".to_owned(), c.quarantined.to_value()),
                (
                    "checkpoints_rejected".to_owned(),
                    c.checkpoints_rejected.to_value(),
                ),
            ]),
        ));
    }
    serde::Value::Object(fields)
}

fn manifest_from_value(v: &serde::Value) -> Result<RunManifest, serde::Error> {
    Ok(RunManifest {
        seed: u64::from_value(v.get_field("seed")?)?,
        config_digest: String::from_value(v.get_field("config_digest")?)?,
        threads: usize::from_value(v.get_field("threads")?)?,
        qfc_threads_env: Option::from_value(v.get_field("qfc_threads_env")?)?,
        fault_events: usize::from_value(v.get_field("fault_events")?)?,
        fault_kinds: Vec::from_value(v.get_field("fault_kinds")?)?,
        crate_version: String::from_value(v.get_field("crate_version")?)?,
        campaign: match v.get_field("campaign") {
            Ok(c) => Some(qfc_obs::CampaignSummary {
                campaign_id: String::from_value(c.get_field("campaign_id")?)?,
                shards_total: usize::from_value(c.get_field("shards_total")?)?,
                shards_resumed: usize::from_value(c.get_field("shards_resumed")?)?,
                retries: u64::from_value(c.get_field("retries")?)?,
                quarantined: usize::from_value(c.get_field("quarantined")?)?,
                checkpoints_rejected: usize::from_value(c.get_field("checkpoints_rejected")?)?,
            }),
            Err(_) => None,
        },
    })
}

/// Records a [`RunManifest`] for the current driver invocation on the
/// installed observability collector (no-op when none is installed).
///
/// The digest is FNV-1a 64 over the config's JSON serialization; the
/// thread count is the pool size the run resolved to.
pub fn record_manifest<C: Serialize>(seed: u64, config: &C, schedule: &FaultSchedule) {
    if !qfc_obs::enabled() {
        return;
    }
    let config_json = serde_json::to_string(config).unwrap_or_default();
    let mut fault_kinds: Vec<String> = schedule
        .events()
        .iter()
        .map(|e| e.kind.label())
        .collect();
    fault_kinds.sort();
    fault_kinds.dedup();
    qfc_obs::set_manifest(RunManifest {
        seed,
        config_digest: RunManifest::digest_hex(config_json.as_bytes()),
        threads: qfc_runtime::max_threads(),
        qfc_threads_env: std::env::var("QFC_THREADS").ok(),
        fault_events: schedule.events().len(),
        fault_kinds,
        crate_version: env!("CARGO_PKG_VERSION").to_owned(),
        campaign: None,
    });
}

impl ExperimentReport {
    /// Creates an empty report with pristine health, picking up the
    /// manifest recorded on the installed observability collector (if
    /// any) — uninstrumented runs carry `None` and serialize exactly as
    /// before.
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_owned(),
            comparisons: Vec::new(),
            health: HealthReport::pristine(),
            manifest: qfc_obs::current_manifest(),
        }
    }

    /// Attaches a health report (builder style).
    pub fn with_health(mut self, health: HealthReport) -> Self {
        self.health = health;
        self
    }

    /// Adds a row.
    pub fn push(&mut self, c: Comparison) {
        self.comparisons.push(c);
    }

    /// `true` when every row passes.
    pub fn all_pass(&self) -> bool {
        self.comparisons.iter().all(Comparison::passes)
    }

    /// Renders a fixed-width text table (for terminal output and
    /// EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        out.push_str(&format!(
            "| {:<4} | {:<44} | {:>12} | {:>12} | {:<8} | {:<4} |\n",
            "id", "quantity", "paper", "measured", "unit", "ok"
        ));
        out.push_str(&format!(
            "|{}|{}|{}|{}|{}|{}|\n",
            "-".repeat(6),
            "-".repeat(46),
            "-".repeat(14),
            "-".repeat(14),
            "-".repeat(10),
            "-".repeat(6)
        ));
        for c in &self.comparisons {
            out.push_str(&format!(
                "| {:<4} | {:<44} | {:>12} | {:>12} | {:<8} | {:<4} |\n",
                c.id,
                c.quantity,
                format_value(c.paper_value),
                format_value(c.measured_value),
                c.unit,
                if c.passes() { "yes" } else { "NO" }
            ));
        }
        if !self.health.is_pristine() {
            out.push('\n');
            out.push_str(&self.health.render());
        }
        if let Some(m) = &self.manifest {
            out.push_str(&format!(
                "\nmanifest: seed={} config={} threads={} faults={} v{}\n",
                m.seed, m.config_digest, m.threads, m.fault_events, m.crate_version
            ));
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e4 || v.abs() < 1e-2 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_expectation() {
        let c = Comparison::new("F2", "linewidth", 110e6, 104e6, "Hz", Expectation::Within { rel_tol: 0.1 });
        assert!(c.passes());
        let c2 = Comparison::new("F2", "linewidth", 110e6, 80e6, "Hz", Expectation::Within { rel_tol: 0.1 });
        assert!(!c2.passes());
    }

    #[test]
    fn at_least_and_at_most() {
        assert!(Comparison::new("T2", "S", 2.0, 2.35, "", Expectation::AtLeast).passes());
        assert!(!Comparison::new("T2", "S", 2.0, 1.9, "", Expectation::AtLeast).passes());
        assert!(Comparison::new("F3", "fluct", 0.05, 0.03, "", Expectation::AtMost).passes());
    }

    #[test]
    fn in_range() {
        let e = Expectation::InRange { lo: 12.8, hi: 32.4 };
        assert!(Comparison::new("T1", "CAR", 0.0, 20.0, "", e).passes());
        assert!(!Comparison::new("T1", "CAR", 0.0, 40.0, "", e).passes());
    }

    #[test]
    fn zero_reference_within() {
        let c = Comparison::new("x", "offset", 0.0, 0.005, "Hz", Expectation::Within { rel_tol: 0.01 });
        assert!(c.passes());
    }

    #[test]
    fn report_renders_and_aggregates() {
        let mut r = ExperimentReport::new("test");
        r.push(Comparison::new("A", "q", 1.0, 1.0, "u", Expectation::Within { rel_tol: 0.1 }));
        assert!(r.all_pass());
        let text = r.render();
        assert!(text.contains("## test"));
        assert!(text.contains("yes"));
        r.push(Comparison::new("B", "q2", 1.0, 2.0, "u", Expectation::Within { rel_tol: 0.1 }));
        assert!(!r.all_pass());
        assert!(r.render().contains("NO"));
    }

    #[test]
    fn nan_measured_value_never_passes() {
        // Regression: NaN used to pass AtMost/AtLeast vacuously-false
        // orderings? No — NaN fails all orderings, but the audit pins the
        // guarantee for every arm, including the zero-reference Within.
        let expectations = [
            Expectation::Within { rel_tol: 0.5 },
            Expectation::AtLeast,
            Expectation::AtMost,
            Expectation::InRange {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
            },
        ];
        for e in expectations {
            let c = Comparison::new("x", "q", 1.0, f64::NAN, "", e);
            assert!(!c.passes(), "{e:?} passed a NaN measurement");
        }
        let zero_ref = Comparison::new(
            "x",
            "q",
            0.0,
            f64::NAN,
            "",
            Expectation::Within { rel_tol: 1.0 },
        );
        assert!(!zero_ref.passes());
        // A guarded relative_fluctuation (negative-mean sample → NaN) can
        // no longer sneak past the paper's ≤5 % stability cap.
        let fluct = qfc_mathkit::stats::relative_fluctuation(&[-1.0, -2.0]);
        assert!(!Comparison::new("F3", "fluct", 0.05, fluct, "", Expectation::AtMost).passes());
    }

    #[test]
    fn manifest_absent_keeps_legacy_json() {
        let mut r = ExperimentReport::new("plain");
        r.push(Comparison::new("A", "q", 1.0, 1.1, "u", Expectation::AtLeast));
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(!json.contains("manifest"));
        let back: ExperimentReport = serde_json::from_str(&json).expect("deserializes");
        assert!(back.manifest.is_none());
    }

    #[test]
    fn manifest_round_trips_when_present() {
        let mut r = ExperimentReport::new("instrumented");
        r.manifest = Some(RunManifest {
            seed: 42,
            config_digest: "00000000deadbeef".to_owned(),
            threads: 8,
            qfc_threads_env: Some("8".to_owned()),
            fault_events: 2,
            fault_kinds: vec!["pump power drop".to_owned()],
            crate_version: "0.1.0".to_owned(),
            campaign: None,
        });
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("\"config_digest\""));
        // Single-process manifests keep the legacy shape: no campaign key.
        assert!(!json.contains("\"campaign\""));
        let back: ExperimentReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.manifest, r.manifest);
        assert!(r.render().contains("manifest: seed=42"));
    }

    #[test]
    fn campaign_summary_round_trips_when_present() {
        let mut r = ExperimentReport::new("campaigned");
        r.manifest = Some(RunManifest {
            seed: 7,
            config_digest: "00000000deadbeef".to_owned(),
            threads: 4,
            qfc_threads_env: None,
            fault_events: 0,
            fault_kinds: Vec::new(),
            crate_version: "0.1.0".to_owned(),
            campaign: Some(qfc_obs::CampaignSummary {
                campaign_id: "00000000cafef00d".to_owned(),
                shards_total: 6,
                shards_resumed: 2,
                retries: 1,
                quarantined: 0,
                checkpoints_rejected: 1,
            }),
        });
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("\"campaign_id\":\"00000000cafef00d\""));
        let back: ExperimentReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.manifest, r.manifest);
    }

    #[test]
    fn report_serializes() {
        let mut r = ExperimentReport::new("serde");
        r.push(Comparison::new("A", "q", 1.0, 1.1, "u", Expectation::AtLeast));
        let json = serde_json::to_string(&r).expect("serializes");
        let back: ExperimentReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.title, "serde");
        assert_eq!(back.comparisons.len(), 1);
        assert!(back.health.is_pristine());
    }

    #[test]
    fn degraded_health_appears_in_render() {
        let mut r = ExperimentReport::new("health");
        r.push(Comparison::new("A", "q", 1.0, 1.0, "u", Expectation::AtLeast));
        assert!(!r.render().contains("health:"));
        let mut h = HealthReport::pristine();
        h.record_quarantine(2, "dead signal detector");
        let r = r.with_health(h);
        assert!(r.render().contains("channel 2 quarantined"));
    }
}
