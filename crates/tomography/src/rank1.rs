//! Rank-1 projector tomography — the large-`d` fast path.
//!
//! Qubit tomography settings (and any orthonormal-basis qudit
//! measurement) have outcome projectors that are rank-1 outer products
//! `|ψ⟩⟨ψ|`. The classic MLE path materializes each of them as a dense
//! `d × d` matrix, so one RρR iteration streams `m·d²` complex entries
//! through `tr(ρ·Π)` (a stride-`d` column walk) and again through the
//! `R` accumulation — at `d = 64` with ~10³ projectors that is tens of
//! megabytes of traffic per iteration, far beyond any cache.
//!
//! This module keeps the *vectors* instead: [`ProjectorRepr::Rank1`]
//! stores `|ψ⟩` (shrinking the projector cache from `m·d²` to `m·d`
//! entries) and exploits the Hermitian structure of both operands —
//! expectations become the allocation-free quadratic form `⟨ψ|ρ|ψ⟩`
//! over `ρ`'s upper triangle ([`CMatrix::quadratic_form_hermitian`]),
//! and the `R` build becomes upper-triangle-only
//! [`CMatrix::ger_hermitian_upper`] rank-1 updates with a single
//! mirror per sweep — each at *half* the complex multiplies of their
//! full-matrix counterparts, every access contiguous. The `RρR`
//! products run through the packed GEMM
//! ([`CMatrix::matmul_packed_into`]), and iterates are kept bitwise
//! Hermitian so the triangle kernels stay exact. The per-iteration
//! sweep is parallelized over fixed-size pair chunks with a
//! chunk-index-ordered merge, so results are bitwise identical at any
//! thread count.
//!
//! This is a **new opt-in path** with its own golden baselines: its
//! arithmetic is *mathematically* equal to the classic dense path but
//! associates products differently, so it is **not** byte-identical to
//! `reconstruct::try_mle_reconstruction` — which stays untouched and
//! keeps replaying `tests/golden/` bit for bit (the established
//! new-baselines-for-new-paths rule).

use serde::{Deserialize, Serialize};

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::cast;
use qfc_mathkit::cmatrix::{CMatrix, GemmScratch};
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::cvector::CVector;
use qfc_quantum::qudit::BipartiteQudit;

use crate::reconstruct::{try_project_physical, MleAcceleration, MleOptions, MleResult};
use crate::settings::Setting;

/// Probability floor shared with the classic path: expectations are
/// clamped to this before dividing, so empty-outcome projectors cannot
/// blow up `R`.
const P_FLOOR: f64 = 1e-12;

/// Pairs per parallel sweep task. The chunk layout depends only on the
/// pair count — never on the thread count — so the partial-`R` merge
/// below is bitwise thread-invariant.
const SWEEP_CHUNK_PAIRS: usize = 64;

/// Minimum `pairs · d²` work for the sweep to go parallel at all.
/// Below this the per-task dispatch and the per-chunk partial-`R`
/// allocation dominate the O(d²) kernels and the parallel leg is
/// slower than the serial one (the four-photon regression); small
/// problems take a single serial chunk instead. The choice only picks
/// a code path per *problem size*, so any given reconstruction is
/// still deterministic and thread-invariant.
const PAR_SWEEP_MIN_WORK: usize = 1 << 15;

/// One outcome projector, stored in whichever representation the
/// measurement admits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProjectorRepr {
    /// A general projector as a dense matrix — the representation the
    /// classic path uses, kept for A/B reference reconstructions.
    Dense(CMatrix),
    /// A rank-1 projector `|ψ⟩⟨ψ|` stored as the vector `|ψ⟩` — `d`
    /// entries instead of `d²`.
    Rank1(CVector),
}

impl ProjectorRepr {
    /// Hilbert-space dimension the projector acts on.
    pub fn dim(&self) -> usize {
        match self {
            ProjectorRepr::Dense(m) => m.rows(),
            ProjectorRepr::Rank1(v) => v.dim(),
        }
    }

    /// Expectation `tr(ρ·Π)`. Dense projectors use the diagonal-only
    /// product trace (the classic path's kernel); rank-1 projectors use
    /// the Hermitian quadratic form `⟨ψ|ρ|ψ⟩`
    /// ([`CMatrix::quadratic_form_hermitian`]) — contiguous,
    /// allocation-free, and half the complex multiplies of a full
    /// sandwich because only `ρ`'s upper triangle is read. The rank-1
    /// arm therefore requires `rho` to be Hermitian — density matrices
    /// always are, and the MLE driver below keeps its iterates bitwise
    /// Hermitian.
    pub fn expectation(&self, rho: &CMatrix) -> f64 {
        match self {
            ProjectorRepr::Dense(m) => rho.trace_of_product(m).re,
            ProjectorRepr::Rank1(v) => rho.quadratic_form_hermitian(v),
        }
    }

    /// Accumulates `w·Π` into `r`: a dense scaled add, or a rank-1
    /// `ger` update that never materializes the outer product.
    pub fn accumulate_scaled(&self, r: &mut CMatrix, w: f64) {
        match self {
            ProjectorRepr::Dense(m) => r.add_scaled_assign(m, w),
            ProjectorRepr::Rank1(v) => r.ger_assign(w, v, v),
        }
    }

    /// Sweep-internal accumulation that keeps only `r`'s diagonal and
    /// upper triangle authoritative: the dense arm adds the full matrix
    /// (its upper triangle is correct either way), the rank-1 arm runs
    /// the half-work [`CMatrix::ger_hermitian_upper`] update. `build_r`
    /// mirrors the triangle once after the chunk merge, so callers of
    /// the driver always observe a full Hermitian `R`.
    fn accumulate_scaled_upper(&self, r: &mut CMatrix, w: f64) {
        match self {
            ProjectorRepr::Dense(m) => r.add_scaled_assign(m, w),
            ProjectorRepr::Rank1(v) => r.ger_hermitian_upper(w, v),
        }
    }

    /// The projector as a dense matrix (clones / materializes).
    pub fn to_dense_matrix(&self) -> CMatrix {
        match self {
            ProjectorRepr::Dense(m) => m.clone(),
            ProjectorRepr::Rank1(v) => CMatrix::outer(v, v),
        }
    }
}

/// Outcome projectors for a list of measurement settings, in
/// representation form — the rank-1 counterpart of
/// [`crate::settings::ProjectorSet`].
#[derive(Debug, Clone)]
pub struct ProjectorReprSet {
    /// `reprs[s][o]` for setting `s`, outcome `o`.
    reprs: Vec<Vec<ProjectorRepr>>,
    /// Hilbert-space dimension.
    dim: usize,
}

impl ProjectorReprSet {
    /// Rank-1 projectors for qubit tomography settings, via
    /// [`Setting::outcome_vector`] Kronecker chains — `m·d` stored
    /// entries where the dense [`crate::settings::ProjectorSet`] stores
    /// `m·d²`.
    ///
    /// # Errors
    ///
    /// [`QfcError::InsufficientData`] for an empty setting list,
    /// [`QfcError::InvalidParameter`] for mixed-arity settings.
    pub fn try_rank1_from_settings(settings: &[Setting]) -> QfcResult<Self> {
        let first = settings.first().ok_or_else(|| QfcError::InsufficientData {
            context: "rank-1 projector set needs at least one setting".to_owned(),
        })?;
        let n = first.qubits();
        let mut reprs = Vec::with_capacity(settings.len());
        for (s, setting) in settings.iter().enumerate() {
            if setting.qubits() != n {
                return Err(QfcError::invalid(format!(
                    "mixed-arity setting list: setting {s} measures {} qubit(s) \
                     but setting 0 measures {n}",
                    setting.qubits()
                )));
            }
            reprs.push(
                (0..setting.outcomes())
                    .map(|o| ProjectorRepr::Rank1(setting.outcome_vector(o)))
                    .collect(),
            );
        }
        Ok(Self { reprs, dim: 1 << n })
    }

    /// Rank-1 projectors from orthonormal measurement bases: each basis
    /// is a `d × d` unitary whose *columns* are the outcome vectors —
    /// the natural form for qudit tomography where each reconfiguration
    /// of the analyzer measures one complete orthonormal basis.
    ///
    /// # Errors
    ///
    /// [`QfcError::InsufficientData`] for an empty basis list,
    /// [`QfcError::InvalidParameter`] for non-square, mixed-dimension,
    /// or non-unitary (tolerance `1e-9`) bases.
    pub fn try_rank1_from_bases(bases: &[CMatrix]) -> QfcResult<Self> {
        let first = bases.first().ok_or_else(|| QfcError::InsufficientData {
            context: "rank-1 projector set needs at least one basis".to_owned(),
        })?;
        let dim = first.rows();
        let mut reprs = Vec::with_capacity(bases.len());
        for (b, basis) in bases.iter().enumerate() {
            if !basis.is_square() || basis.rows() != dim {
                return Err(QfcError::invalid(format!(
                    "basis {b} is {}x{}, expected {dim}x{dim}",
                    basis.rows(),
                    basis.cols()
                )));
            }
            if !basis.is_unitary(1e-9) {
                return Err(QfcError::invalid(format!(
                    "basis {b} is not unitary within 1e-9; its columns do not \
                     form an orthonormal outcome basis"
                )));
            }
            reprs.push(
                (0..dim)
                    .map(|o| ProjectorRepr::Rank1(basis.col(o)))
                    .collect(),
            );
        }
        Ok(Self { reprs, dim })
    }

    /// The same set with every projector materialized as a dense
    /// matrix — the classic-representation reference leg for A/B
    /// benchmarks of the rank-1 path.
    pub fn to_dense(&self) -> Self {
        Self {
            reprs: self
                .reprs
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|r| ProjectorRepr::Dense(r.to_dense_matrix()))
                        .collect()
                })
                .collect(),
            dim: self.dim,
        }
    }

    /// Hilbert-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of settings covered.
    #[inline]
    pub fn settings(&self) -> usize {
        self.reprs.len()
    }

    /// Outcomes of setting `s`.
    #[inline]
    pub fn outcomes(&self, s: usize) -> usize {
        self.reprs[s].len()
    }

    /// The representation of outcome `o` in setting `s`.
    #[inline]
    pub fn repr(&self, s: usize, o: usize) -> &ProjectorRepr {
        &self.reprs[s][o]
    }
}

/// Splitmix-style hash to a unit-interval double — the deterministic
/// entropy source for synthetic bases and states (no RNG state, so the
/// construction is reproducible from `(dim, salt)` alone).
fn hash_unit(h: u64) -> f64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    cast::to_f64(z >> 11) / cast::to_f64(1u64 << 53)
}

/// Deterministic pseudo-random complex vector with entries in the unit
/// square centered on 0.
fn hashed_vector(dim: usize, salt: u64) -> CVector {
    let mut v = CVector::zeros(dim);
    for i in 0..dim {
        let k = cast::usize_to_u64(i).wrapping_mul(2).wrapping_add(salt << 8);
        v[i] = Complex64::new(hash_unit(k) - 0.5, hash_unit(k.wrapping_add(1)) - 0.5);
    }
    v
}

/// Orthonormalizes the columns of `m` by modified Gram–Schmidt with one
/// re-orthogonalization pass (needed for numerical orthogonality at
/// `d = 64`).
fn gram_schmidt_columns(m: &CMatrix) -> QfcResult<CMatrix> {
    let d = m.rows();
    let mut cols: Vec<CVector> = (0..d).map(|j| m.col(j)).collect();
    for j in 0..d {
        let (head, tail) = cols.split_at_mut(j);
        let v = &mut tail[0];
        for _ in 0..2 {
            for u in head.iter() {
                let proj = u.dot(v);
                for k in 0..d {
                    let w = v[k] - proj * u[k];
                    v[k] = w;
                }
            }
        }
        let n = v.norm();
        if n < 1e-8 {
            return Err(QfcError::SingularSystem {
                context: format!("Gram–Schmidt column {j} degenerated (norm {n:.2e})"),
            });
        }
        let inv = 1.0 / n;
        for k in 0..d {
            let w = v[k].scale(inv);
            v[k] = w;
        }
    }
    Ok(CMatrix::from_fn(d, d, |i, j| cols[j][i]))
}

/// `count` deterministic orthonormal measurement bases in dimension
/// `dim`: the computational basis first, then Gram–Schmidt
/// orthonormalizations of hash-seeded matrices. Reproducible from
/// `(dim, count, salt)` alone.
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] for `dim < 2` or `count == 0`;
/// [`QfcError::SingularSystem`] if a seeded matrix degenerates (not
/// observed for any tested `(dim, salt)`; guarded rather than assumed).
pub fn deterministic_bases(dim: usize, count: usize, salt: u64) -> QfcResult<Vec<CMatrix>> {
    if dim < 2 {
        return Err(QfcError::invalid(format!(
            "measurement bases need dimension ≥ 2 (got {dim})"
        )));
    }
    if count == 0 {
        return Err(QfcError::invalid("need at least one measurement basis"));
    }
    let mut out = Vec::with_capacity(count);
    out.push(CMatrix::identity(dim));
    for b in 1..count {
        let seed = salt
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            .wrapping_add(cast::usize_to_u64(b));
        let raw = CMatrix::from_fn(dim, dim, |i, j| {
            let k = cast::usize_to_u64(i * dim + j)
                .wrapping_mul(3)
                .wrapping_add(seed << 16);
            Complex64::new(hash_unit(k) - 0.5, hash_unit(k.wrapping_add(1)) - 0.5)
        });
        let u = gram_schmidt_columns(&raw)?;
        if !u.is_unitary(1e-9) {
            return Err(QfcError::non_finite("Gram–Schmidt basis orthonormalization"));
        }
        out.push(u);
    }
    Ok(out)
}

/// Deterministic synthetic rank-`rank` qudit state of dimension `dim`:
/// the reduced state of a bipartite pure state whose amplitude matrix
/// is a sum of `rank` hash-seeded outer products with a `1/(t+1)`
/// Schmidt-weight decay. Trace 1, Hermitian, PSD by construction
/// (`ρ = CC†` up to normalization via [`BipartiteQudit::reduced_a`]).
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] for `dim` outside the supported qudit
/// range `2..=64` or `rank` outside `1..=dim`.
pub fn synthetic_low_rank_state(dim: usize, rank: usize, salt: u64) -> QfcResult<CMatrix> {
    if !(2..=64).contains(&dim) {
        return Err(QfcError::invalid(format!(
            "synthetic qudit dimension must be in 2..=64 (got {dim})"
        )));
    }
    if rank == 0 || rank > dim {
        return Err(QfcError::invalid(format!(
            "synthetic state rank must be in 1..={dim} (got {rank})"
        )));
    }
    let mut c = CMatrix::zeros(dim, dim);
    for t in 0..rank {
        let ts = cast::usize_to_u64(t);
        let g = hashed_vector(dim, salt.wrapping_add(ts.wrapping_mul(2).wrapping_add(1)));
        let h = hashed_vector(dim, salt.wrapping_add(ts.wrapping_mul(2).wrapping_add(2)));
        let w = 1.0 / cast::to_f64(cast::usize_to_u64(t + 1));
        for i in 0..dim {
            for j in 0..dim {
                c[(i, j)] += (g[i] * h[j]).scale(w);
            }
        }
    }
    Ok(BipartiteQudit::from_amplitude_matrix(&c).reduced_a())
}

/// Exact ("infinite statistics") outcome counts of `rho` under a
/// projector set: `round(scale · tr(ρ·Π))` per outcome — the qudit
/// counterpart of [`crate::counts::exact_counts`].
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] if `rho` is not square of the set's
/// dimension.
pub fn exact_counts_repr(
    rho: &CMatrix,
    set: &ProjectorReprSet,
    scale: u64,
) -> QfcResult<Vec<Vec<u64>>> {
    if !rho.is_square() || rho.rows() != set.dim() {
        return Err(QfcError::invalid(format!(
            "state is {}x{}, projector set has dimension {}",
            rho.rows(),
            rho.cols(),
            set.dim()
        )));
    }
    let mut counts = Vec::with_capacity(set.settings());
    for s in 0..set.settings() {
        let row: Vec<u64> = (0..set.outcomes(s))
            .map(|o| {
                let p = set.repr(s, o).expectation(rho).clamp(0.0, 1.0);
                cast::f64_to_u64((p * cast::to_f64(scale)).round())
            })
            .collect();
        counts.push(row);
    }
    Ok(counts)
}

/// One sweep task: partial `R` and partial log-likelihood over a chunk
/// of `(projector, frequency)` pairs against the current iterate. The
/// partial `R` is authoritative only on its diagonal and upper triangle
/// (rank-1 pairs skip the lower half); `build_r` mirrors once after the
/// merge.
///
/// All-rank-1 chunks (the common case — sets built by the public
/// constructors are homogeneous) take a blocked fast path: expectations
/// via [`CMatrix::quadratic_forms_hermitian`] and the `R` accumulation
/// via [`CMatrix::ger_hermitian_upper_batch`], four pairs per pass over
/// `ρ` / `R`. Both batch kernels are bitwise identical to their
/// per-pair forms and the log-likelihood is summed in pair order, so
/// the fast path produces exactly the bits of the generic loop below.
fn sweep_chunk(pairs: &[(&ProjectorRepr, f64)], rho: &CMatrix) -> (CMatrix, f64) {
    let mut r_part = CMatrix::zeros(rho.rows(), rho.cols());
    let mut ll = 0.0;
    let mut vecs: Vec<&CVector> = Vec::with_capacity(pairs.len());
    for &(repr, _) in pairs {
        if let ProjectorRepr::Rank1(v) = repr {
            vecs.push(v);
        }
    }
    if vecs.len() == pairs.len() {
        let mut ps = vec![0.0f64; pairs.len()];
        rho.quadratic_forms_hermitian(&vecs, &mut ps);
        let mut updates: Vec<(f64, &CVector)> = Vec::with_capacity(pairs.len());
        for ((&(_, f), p), &v) in pairs.iter().zip(&mut ps).zip(&vecs) {
            *p = p.max(P_FLOOR);
            ll += f * p.ln();
            updates.push((f / *p, v));
        }
        r_part.ger_hermitian_upper_batch(&updates);
        return (r_part, ll);
    }
    // qfc-lint: hot
    for &(repr, f) in pairs {
        let p = repr.expectation(rho).max(P_FLOOR);
        ll += f * p.ln();
        repr.accumulate_scaled_upper(&mut r_part, f / p);
    }
    (r_part, ll)
}

/// Builds `R = Σ (f/p)·Π` into `r` and returns the log-likelihood
/// `Σ f·ln p`. Large problems fan the pair sweep out over the worker
/// pool in fixed [`SWEEP_CHUNK_PAIRS`]-sized chunks and merge the
/// partial `R` matrices by summation in chunk-index order — the chunk
/// layout never depends on the thread count, so the result is bitwise
/// identical at any thread count. The sweep accumulates only the upper
/// triangle for rank-1 pairs; one [`CMatrix::hermitianize_upper`]
/// mirror after the merge (O(d²/2) copies, no arithmetic) restores the
/// full Hermitian `R`.
fn build_r(pairs: &[(&ProjectorRepr, f64)], rho: &CMatrix, r: &mut CMatrix) -> f64 {
    let dim = rho.rows();
    let ll = if pairs.len() * dim * dim >= PAR_SWEEP_MIN_WORK {
        let partials = qfc_runtime::par_chunks(pairs, SWEEP_CHUNK_PAIRS, |_, chunk| {
            sweep_chunk(chunk, rho)
        });
        r.fill_zero();
        let mut ll = 0.0;
        for (r_part, ll_part) in &partials {
            r.add_scaled_assign(r_part, 1.0);
            ll += *ll_part;
        }
        ll
    } else {
        // Below the grain threshold the dispatch overhead beats the
        // win: one serial chunk (still the same kernels).
        let (r_part, ll) = sweep_chunk(pairs, rho);
        r.copy_from(&r_part);
        ll
    };
    r.hermitianize_upper();
    ll
}

/// Iterative RρR maximum-likelihood reconstruction against a
/// representation projector set — the rank-1 + packed-GEMM fast path.
///
/// Same fixed-point map and convergence contract as
/// [`crate::reconstruct::try_mle_reconstruction_with`], but expectations
/// run through [`ProjectorRepr::expectation`], the `R` build through
/// [`ProjectorRepr::accumulate_scaled`] (parallel fixed-order sweep),
/// and the `RρR` products through the packed GEMM. Supports the same
/// classic and accelerated schedules. Results are mathematically equal
/// to the dense classic path but **not** byte-identical to it — this
/// path pins its own golden baselines.
///
/// `counts[s][o]` are the events for outcome `o` of setting `s`;
/// frequencies are per-setting, and zero-frequency outcomes are skipped
/// exactly as in the classic path.
///
/// # Errors
///
/// * [`QfcError::InvalidParameter`] — count table shape does not match
///   the set, or the dimension is not a power of two ≥ 2 (the result
///   type is a `DensityMatrix`);
/// * [`QfcError::SingularSystem`] — zero total events, or an iteration
///   whose update annihilated the trace;
/// * [`QfcError::NonFinite`] — the update norm left the finite range.
pub fn try_mle_repr(
    set: &ProjectorReprSet,
    counts: &[Vec<u64>],
    options: &MleOptions,
) -> QfcResult<MleResult> {
    let dim = set.dim();
    if dim < 2 || !dim.is_power_of_two() {
        return Err(QfcError::invalid(format!(
            "MLE result is a DensityMatrix: dimension must be a power of \
             two ≥ 2 (got {dim})"
        )));
    }
    if counts.len() != set.settings() {
        return Err(QfcError::invalid(format!(
            "count table has {} row(s) for {} setting(s)",
            counts.len(),
            set.settings()
        )));
    }
    for (s, row) in counts.iter().enumerate() {
        if row.len() != set.outcomes(s) {
            return Err(QfcError::invalid(format!(
                "setting {s} has {} count slot(s) for {} outcome(s)",
                row.len(),
                set.outcomes(s)
            )));
        }
    }
    let grand_total: u64 = counts.iter().map(|row| row.iter().sum::<u64>()).sum();
    if grand_total == 0 {
        return Err(QfcError::SingularSystem {
            context: "rank-1 MLE reconstruction: zero total events (all-dark data)".to_owned(),
        });
    }

    // (projector, frequency) pairs in (s, o) order, f > 0 only — the
    // classic path's gathering order.
    let mut pairs: Vec<(&ProjectorRepr, f64)> = Vec::new();
    for (s, row) in counts.iter().enumerate() {
        let total: u64 = row.iter().sum();
        if total == 0 {
            continue;
        }
        for (o, &c) in row.iter().enumerate() {
            if c > 0 {
                pairs.push((
                    set.repr(s, o),
                    cast::to_f64(c) / cast::to_f64(total),
                ));
            }
        }
    }

    let mut rho = CMatrix::identity(dim).scale(1.0 / cast::to_f64(cast::usize_to_u64(dim)));
    let mut r = CMatrix::zeros(dim, dim);
    let mut r_rho = CMatrix::zeros(dim, dim);
    let mut next = CMatrix::zeros(dim, dim);
    let mut gemm = GemmScratch::new();
    let mut iterations = 0;
    let mut final_update = f64::INFINITY;
    let mut accelerated_steps = 0usize;
    match options.acceleration {
        MleAcceleration::Classic => {
            for _ in 0..options.max_iterations {
                iterations += 1;
                let _ll = build_r(&pairs, &rho, &mut r);
                r.matmul_packed_into(&rho, &mut r_rho, &mut gemm);
                r_rho.matmul_packed_into(&r, &mut next, &mut gemm);
                let tr = next.trace().re;
                if !(tr.is_finite() && tr > 0.0) {
                    return Err(QfcError::SingularSystem {
                        context: format!(
                            "rank-1 RρR update annihilated the trace (tr = {tr}) \
                             at iteration {iterations}"
                        ),
                    });
                }
                next.scale_in_place(1.0 / tr);
                // RρR with Hermitian R, ρ is Hermitian up to round-off;
                // mirroring the upper triangle makes every iterate
                // *bitwise* Hermitian, which the rank-1 expectation
                // kernel relies on (it never reads the lower half).
                next.hermitianize_upper();
                final_update = next.frobenius_distance(&rho);
                if !final_update.is_finite() {
                    return Err(QfcError::non_finite("rank-1 RρR update norm"));
                }
                std::mem::swap(&mut rho, &mut next);
                if final_update < options.tolerance {
                    break;
                }
            }
        }
        MleAcceleration::Accelerated { max_step, growth } => {
            if !(max_step >= 1.0 && max_step.is_finite() && growth >= 1.0 && growth.is_finite()) {
                return Err(QfcError::invalid(format!(
                    "accelerated MLE schedule needs finite max_step ≥ 1 and \
                     growth ≥ 1 (got max_step = {max_step}, growth = {growth})"
                )));
            }
            // Same likelihood-gated over-relaxation as the dense
            // accelerated path (see reconstruct.rs for the schedule
            // rationale); only the kernels underneath differ.
            let fsum: f64 = pairs.iter().map(|&(_, f)| f).sum();
            let mut prev = rho.clone();
            let mut gamma = 1.0f64;
            let mut ll_prev = f64::NEG_INFINITY;
            let mut update_prev = f64::INFINITY;
            for _ in 0..options.max_iterations {
                iterations += 1;
                let mut ll = build_r(&pairs, &rho, &mut r);
                if ll + 1e-12 * ll.abs().max(1.0) < ll_prev {
                    // Overshot the likelihood ridge: restore the parent
                    // iterate, rebuild R there, and step classically.
                    std::mem::swap(&mut rho, &mut prev);
                    gamma = 1.0;
                    ll = build_r(&pairs, &rho, &mut r);
                }
                ll_prev = ll;
                if gamma > 1.0 {
                    accelerated_steps += 1;
                    r.scale_in_place(1.0 / fsum);
                    r.lerp_identity_in_place(gamma);
                }
                prev.copy_from(&rho);
                r.matmul_packed_into(&rho, &mut r_rho, &mut gemm);
                r_rho.matmul_packed_into(&r, &mut next, &mut gemm);
                let tr = next.trace().re;
                if !(tr.is_finite() && tr > 0.0) {
                    return Err(QfcError::SingularSystem {
                        context: format!(
                            "rank-1 accelerated RρR update annihilated the trace \
                             (tr = {tr}) at iteration {iterations}"
                        ),
                    });
                }
                next.scale_in_place(1.0 / tr);
                // RρR with Hermitian R, ρ is Hermitian up to round-off;
                // mirroring the upper triangle makes every iterate
                // *bitwise* Hermitian, which the rank-1 expectation
                // kernel relies on (it never reads the lower half).
                next.hermitianize_upper();
                final_update = next.frobenius_distance(&rho);
                if !final_update.is_finite() {
                    return Err(QfcError::non_finite("rank-1 accelerated RρR update norm"));
                }
                std::mem::swap(&mut rho, &mut next);
                let residual = final_update / gamma;
                if residual > update_prev || residual < options.tolerance {
                    gamma = 1.0;
                } else {
                    gamma = (gamma * growth).min(max_step);
                }
                update_prev = residual;
                if final_update < options.tolerance {
                    break;
                }
            }
            qfc_obs::counter_add(
                "mle_rank1_accelerated_steps",
                cast::usize_to_u64(accelerated_steps),
            );
        }
    }
    qfc_obs::counter_add("mle_rank1_iterations", cast::usize_to_u64(iterations));
    // Numerical cleanup: symmetrize and clip round-off negativity.
    let herm = CMatrix::from_fn(dim, dim, |i, j| {
        (rho[(i, j)] + rho[(j, i)].conj()).scale(0.5)
    });
    let rho = try_project_physical(&herm)?;
    Ok(MleResult {
        rho,
        iterations,
        converged: final_update < options.tolerance,
        final_update,
        accelerated_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::exact_counts;
    use crate::settings::{all_settings, ProjectorSet};
    use qfc_quantum::bell::werner_state;
    use qfc_quantum::fidelity::state_fidelity;

    #[test]
    fn rank1_set_matches_dense_projectors() {
        let settings = all_settings(2);
        let set = ProjectorReprSet::try_rank1_from_settings(&settings).expect("build");
        let dense = ProjectorSet::new(&settings);
        assert_eq!(set.dim(), 4);
        assert_eq!(set.settings(), 9);
        for s in 0..settings.len() {
            assert_eq!(set.outcomes(s), 4);
            for o in 0..4 {
                let outer = set.repr(s, o).to_dense_matrix();
                assert!(
                    outer.approx_eq(dense.projector(s, o), 1e-13),
                    "setting {s} outcome {o}"
                );
            }
        }
    }

    #[test]
    fn rank1_set_rejects_empty_and_mixed_arity() {
        assert!(matches!(
            ProjectorReprSet::try_rank1_from_settings(&[]).unwrap_err(),
            QfcError::InsufficientData { .. }
        ));
        use crate::settings::PauliBasis;
        let mixed = [
            Setting::from_bases(&[PauliBasis::Z]),
            Setting::from_bases(&[PauliBasis::Z, PauliBasis::X]),
        ];
        assert!(matches!(
            ProjectorReprSet::try_rank1_from_settings(&mixed).unwrap_err(),
            QfcError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn bases_set_rejects_non_unitary() {
        let bad = CMatrix::from_real_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(matches!(
            ProjectorReprSet::try_rank1_from_bases(&[bad]).unwrap_err(),
            QfcError::InvalidParameter { .. }
        ));
        assert!(matches!(
            ProjectorReprSet::try_rank1_from_bases(&[]).unwrap_err(),
            QfcError::InsufficientData { .. }
        ));
    }

    #[test]
    fn deterministic_bases_are_unitary_and_reproducible() {
        for dim in [2, 5, 16] {
            let bases = deterministic_bases(dim, 4, 99).expect("bases");
            assert_eq!(bases.len(), 4);
            assert!(bases[0].approx_eq(&CMatrix::identity(dim), 0.0));
            for (b, u) in bases.iter().enumerate() {
                assert!(u.is_unitary(1e-10), "dim {dim} basis {b}");
            }
            let again = deterministic_bases(dim, 4, 99).expect("bases");
            for (u, v) in bases.iter().zip(&again) {
                assert!(u.approx_eq(v, 0.0));
            }
        }
        assert!(deterministic_bases(1, 3, 0).is_err());
        assert!(deterministic_bases(4, 0, 0).is_err());
    }

    #[test]
    fn synthetic_state_is_physical_low_rank() {
        let rho = synthetic_low_rank_state(16, 3, 7).expect("state");
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.is_hermitian(1e-12));
        // Positive semidefinite: ⟨v|ρ|v⟩ ≥ 0 on probe vectors.
        for salt in 0..4 {
            let v = hashed_vector(16, 1000 + salt);
            assert!(rho.sandwich(&v, &v).re > -1e-12);
        }
        // Rank ≤ 3: the state is CC† with C a sum of 3 outer products.
        let eig = qfc_mathkit::hermitian::eigh(&rho);
        let big = eig.eigenvalues.iter().filter(|&&x| x > 1e-9).count();
        assert!(big <= 3, "rank {big}");
        assert!(synthetic_low_rank_state(65, 1, 0).is_err());
        assert!(synthetic_low_rank_state(8, 0, 0).is_err());
    }

    #[test]
    fn exact_counts_repr_complete_per_basis() {
        let rho = synthetic_low_rank_state(8, 2, 3).expect("state");
        let bases = deterministic_bases(8, 3, 11).expect("bases");
        let set = ProjectorReprSet::try_rank1_from_bases(&bases).expect("set");
        let counts = exact_counts_repr(&rho, &set, 1_000_000).expect("counts");
        // Each orthonormal basis resolves the identity, so every
        // setting's probabilities sum to 1 up to rounding.
        for row in &counts {
            let total: u64 = row.iter().sum();
            assert!(total.abs_diff(1_000_000) <= 4, "{total}");
        }
    }

    #[test]
    fn rank1_mle_agrees_with_classic_dense_on_qubits() {
        let truth = werner_state(0.85, 0.1);
        let settings = all_settings(2);
        let data = exact_counts(&truth, &settings, 100_000);
        let classic =
            crate::reconstruct::try_mle_reconstruction(&data, &MleOptions::default())
                .expect("classic");
        let set = ProjectorReprSet::try_rank1_from_settings(&settings).expect("set");
        let rank1 = try_mle_repr(&set, &data.counts, &MleOptions::default()).expect("rank1");
        let f = state_fidelity(&classic.rho, &rank1.rho);
        assert!(f > 0.9999, "classic vs rank-1 fidelity {f}");
        assert!(rank1.converged);
        let f_truth = state_fidelity(&rank1.rho, &truth);
        assert!(f_truth > 0.999, "rank-1 vs truth fidelity {f_truth}");
    }

    #[test]
    fn rank1_and_dense_repr_legs_agree() {
        let rho = synthetic_low_rank_state(8, 2, 5).expect("state");
        let bases = deterministic_bases(8, 9, 21).expect("bases");
        let set = ProjectorReprSet::try_rank1_from_bases(&bases).expect("set");
        let counts = exact_counts_repr(&rho, &set, 200_000).expect("counts");
        let opts = MleOptions {
            max_iterations: 150,
            tolerance: 1e-9,
            acceleration: MleAcceleration::accelerated(),
        };
        let fast = try_mle_repr(&set, &counts, &opts).expect("rank1 leg");
        let dense = try_mle_repr(&set.to_dense(), &counts, &opts).expect("dense leg");
        let f = state_fidelity(&fast.rho, &dense.rho);
        assert!(f > 0.9999, "rank-1 vs dense-repr fidelity {f}");
        let f_truth = state_fidelity(&fast.rho, &qfc_quantum::density::DensityMatrix::from_matrix(rho).expect("truth"));
        assert!(f_truth > 0.99, "reconstruction vs truth fidelity {f_truth}");
    }

    #[test]
    fn rank1_mle_thread_invariant() {
        let rho = synthetic_low_rank_state(16, 2, 9).expect("state");
        let bases = deterministic_bases(16, 6, 31).expect("bases");
        let set = ProjectorReprSet::try_rank1_from_bases(&bases).expect("set");
        let counts = exact_counts_repr(&rho, &set, 100_000).expect("counts");
        let opts = MleOptions {
            max_iterations: 25,
            ..MleOptions::default()
        };
        let one = qfc_runtime::with_threads(1, || try_mle_repr(&set, &counts, &opts))
            .expect("1 thread");
        let three = qfc_runtime::with_threads(3, || try_mle_repr(&set, &counts, &opts))
            .expect("3 threads");
        assert_eq!(one.iterations, three.iterations);
        assert_eq!(one.final_update.to_bits(), three.final_update.to_bits());
        let a = one.rho.as_matrix().as_slice();
        let b = three.rho.as_matrix().as_slice();
        assert!(a
            .iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()));
    }

    #[test]
    fn rank1_mle_rejects_degenerate_inputs() {
        let bases = deterministic_bases(8, 2, 1).expect("bases");
        let set = ProjectorReprSet::try_rank1_from_bases(&bases).expect("set");
        // All-dark data.
        let dark = vec![vec![0u64; 8]; 2];
        assert!(matches!(
            try_mle_repr(&set, &dark, &MleOptions::default()).unwrap_err(),
            QfcError::SingularSystem { .. }
        ));
        // Malformed count table.
        let short = vec![vec![1u64; 8]];
        assert!(matches!(
            try_mle_repr(&set, &short, &MleOptions::default()).unwrap_err(),
            QfcError::InvalidParameter { .. }
        ));
        // Non-power-of-two dimension.
        let b3 = deterministic_bases(3, 2, 1).expect("bases");
        let s3 = ProjectorReprSet::try_rank1_from_bases(&b3).expect("set");
        let c3 = vec![vec![1u64; 3]; 2];
        let err = try_mle_repr(&s3, &c3, &MleOptions::default()).unwrap_err();
        assert!(err.to_string().contains("power of two"), "{err}");
    }
}
