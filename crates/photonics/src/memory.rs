//! Quantum-memory bandwidth compatibility.
//!
//! The paper's §II argument: atomic quantum memories accept photons with
//! linewidths "on the order of 100 MHz", and the ring's 110-MHz photons
//! are therefore directly compatible — unlike broadband SPDC sources that
//! must be filtered at enormous loss. This module quantifies that claim
//! as a spectral overlap efficiency.

use serde::{Deserialize, Serialize};

use crate::ring::Microring;
use crate::units::Frequency;

/// An atomic quantum-memory acceptance profile (Lorentzian).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Acceptance FWHM.
    pub bandwidth: Frequency,
}

impl MemoryProfile {
    /// A 100-MHz-class atomic transition memory (the paper's reference
    /// point).
    pub fn atomic_100mhz() -> Self {
        Self {
            bandwidth: Frequency::from_hz(100e6),
        }
    }
}

/// Spectral acceptance efficiency of a photon with Lorentzian linewidth
/// `photon_fwhm` into a memory of Lorentzian acceptance `memory_fwhm`
/// (both centered): the overlap of the two normalized Lorentzians times
/// the acceptance bandwidth, `η = Δν_mem / (Δν_mem + Δν_ph)`.
///
/// This is the standard two-Lorentzian convolution result: matched
/// widths give ½, a photon much narrower than the memory gives → 1.
pub fn acceptance_efficiency(photon_fwhm: Frequency, memory_fwhm: Frequency) -> f64 {
    let p = photon_fwhm.hz();
    let m = memory_fwhm.hz();
    assert!(p > 0.0 && m > 0.0, "linewidths must be positive");
    m / (m + p)
}

/// Acceptance of the ring's photons into a memory.
pub fn ring_memory_efficiency(ring: &Microring, memory: &MemoryProfile) -> f64 {
    acceptance_efficiency(ring.linewidth(), memory.bandwidth)
}

/// Filtering loss (in dB) a broadband source of linewidth
/// `source_fwhm` pays to match the same memory: the fraction of its
/// spectrum outside the memory acceptance is discarded.
pub fn filtering_penalty_db(source_fwhm: Frequency, memory: &MemoryProfile) -> f64 {
    let eta = acceptance_efficiency(source_fwhm, memory.bandwidth);
    -10.0 * eta.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Microring;

    #[test]
    fn matched_widths_give_half() {
        let e = acceptance_efficiency(Frequency::from_hz(1e8), Frequency::from_hz(1e8));
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn narrow_photon_fully_accepted() {
        let e = acceptance_efficiency(Frequency::from_hz(1e4), Frequency::from_hz(1e8));
        assert!(e > 0.999);
    }

    #[test]
    fn ring_photons_memory_compatible() {
        let ring = Microring::paper_device();
        let eta = ring_memory_efficiency(&ring, &MemoryProfile::atomic_100mhz());
        // 110-MHz photons into a 100-MHz memory: ≈ 48 % direct acceptance.
        assert!(eta > 0.4 && eta < 0.55, "η = {eta}");
    }

    #[test]
    fn broadband_spdc_pays_huge_penalty() {
        // A typical 1-THz SPDC source filtered to a 100-MHz memory.
        let penalty = filtering_penalty_db(Frequency::from_thz(1.0), &MemoryProfile::atomic_100mhz());
        assert!(penalty > 35.0, "penalty {penalty} dB");
        // The ring pays ~3 dB.
        let ring_penalty =
            filtering_penalty_db(Frequency::from_hz(110e6), &MemoryProfile::atomic_100mhz());
        assert!(ring_penalty < 3.5, "ring penalty {ring_penalty} dB");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_linewidth_rejected() {
        let _ = acceptance_efficiency(Frequency::from_hz(0.0), Frequency::from_hz(1e8));
    }
}
