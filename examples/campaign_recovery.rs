//! Crash-and-resume smoke for the campaign engine, wired into
//! `scripts/ci.sh`.
//!
//! The script: run a sharded §IV campaign with an injected mid-flight
//! shard abort (the process "dies" after checkpointing the shards
//! ordered before the abort point), then re-run with the *same* options
//! — the marker file makes the injection one-shot — and demand the
//! resumed campaign's merged report be byte-identical to a fresh
//! single-process driver run. Any divergence exits non-zero, failing CI.

use std::process::ExitCode;

use qfc::campaign::{run_campaign, CampaignOptions, CampaignWorkload, TimeBinCampaign};
use qfc::core::source::QfcSource;
use qfc::core::timebin::TimeBinConfig;
use qfc::faults::{FaultEvent, FaultKind, FaultSchedule, QfcError};

fn main() -> ExitCode {
    let source = QfcSource::paper_device_timebin();
    let mut cfg = TimeBinConfig::fast_demo();
    cfg.channels = 3;
    cfg.frames_per_point = 100_000;
    cfg.phase_steps = 8;
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 2017,
        schedule: &empty,
    };

    let dir = std::path::PathBuf::from("target/tmp/campaign-recovery-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = CampaignOptions::new(dir);
    opts.faults = FaultSchedule::empty().with(FaultEvent::new(
        0.0,
        1.0,
        FaultKind::ShardAbort { shard: 1 },
    ));

    println!("campaign-recovery smoke: run 1 (shard 1 aborts mid-flight)");
    match run_campaign(&workload, &opts) {
        Err(QfcError::CampaignInterrupted {
            completed_shards,
            total_shards,
        }) => {
            println!("  interrupted as injected: {completed_shards}/{total_shards} shards checkpointed");
        }
        Err(e) => {
            eprintln!("FAIL: expected CampaignInterrupted, got: {e}");
            return ExitCode::FAILURE;
        }
        Ok(_) => {
            eprintln!("FAIL: the injected abort did not interrupt the campaign");
            return ExitCode::FAILURE;
        }
    }

    println!("campaign-recovery smoke: run 2 (resume from checkpoints)");
    let outcome = match run_campaign(&workload, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("FAIL: resume did not complete: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  resumed {} shard(s) from checkpoints, executed {} fresh",
        outcome.stats.shards_resumed, outcome.stats.shards_completed
    );

    let reference = match workload.reference_json() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: single-process reference run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if outcome.report_json != reference {
        eprintln!(
            "FAIL: resumed campaign report diverged from the single-process run \
             ({} vs {} bytes)",
            outcome.report_json.len(),
            reference.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "  byte-identity proof: merged report == single-process report \
         ({} bytes, campaign {})",
        reference.len(),
        outcome.manifest.campaign_id
    );
    ExitCode::SUCCESS
}
