//! Paper-vs-measured reporting: typed comparison records, table
//! rendering, and JSON export for EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use qfc_faults::HealthReport;

/// How a measured value is judged against the paper's value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Expectation {
    /// Measured should be within a relative tolerance of the reference.
    Within {
        /// Relative tolerance (e.g. `0.25` = ±25 %).
        rel_tol: f64,
    },
    /// Measured should be at least the reference (e.g. a bound violated).
    AtLeast,
    /// Measured should be at most the reference (e.g. a fluctuation cap).
    AtMost,
    /// Measured should fall in the closed interval `[lo, hi]`.
    InRange {
        /// Lower edge.
        lo: f64,
        /// Upper edge.
        hi: f64,
    },
}

/// One paper-claim vs measured-value comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Experiment id, e.g. `"F2"` or `"T1"`.
    pub id: String,
    /// Human description of the quantity.
    pub quantity: String,
    /// The value the paper reports.
    pub paper_value: f64,
    /// The value this reproduction measured.
    pub measured_value: f64,
    /// Unit label.
    pub unit: String,
    /// How agreement is judged.
    pub expectation: Expectation,
}

impl Comparison {
    /// Creates a comparison row.
    pub fn new(
        id: &str,
        quantity: &str,
        paper_value: f64,
        measured_value: f64,
        unit: &str,
        expectation: Expectation,
    ) -> Self {
        Self {
            id: id.to_owned(),
            quantity: quantity.to_owned(),
            paper_value,
            measured_value,
            unit: unit.to_owned(),
            expectation,
        }
    }

    /// `true` when the measurement satisfies its expectation.
    pub fn passes(&self) -> bool {
        match self.expectation {
            Expectation::Within { rel_tol } => {
                if self.paper_value == 0.0 {
                    self.measured_value.abs() <= rel_tol
                } else {
                    ((self.measured_value - self.paper_value) / self.paper_value).abs() <= rel_tol
                }
            }
            Expectation::AtLeast => self.measured_value >= self.paper_value,
            Expectation::AtMost => self.measured_value <= self.paper_value,
            Expectation::InRange { lo, hi } => {
                self.measured_value >= lo && self.measured_value <= hi
            }
        }
    }
}

/// A full experiment report: a set of comparison rows with a title.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment title, e.g. `"§II heralded single photons"`.
    pub title: String,
    /// The comparison rows.
    pub comparisons: Vec<Comparison>,
    /// Run health: injected faults and the recovery actions taken.
    /// [`HealthReport::pristine`] for a clean run.
    pub health: HealthReport,
}

impl ExperimentReport {
    /// Creates an empty report with pristine health.
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_owned(),
            comparisons: Vec::new(),
            health: HealthReport::pristine(),
        }
    }

    /// Attaches a health report (builder style).
    pub fn with_health(mut self, health: HealthReport) -> Self {
        self.health = health;
        self
    }

    /// Adds a row.
    pub fn push(&mut self, c: Comparison) {
        self.comparisons.push(c);
    }

    /// `true` when every row passes.
    pub fn all_pass(&self) -> bool {
        self.comparisons.iter().all(Comparison::passes)
    }

    /// Renders a fixed-width text table (for terminal output and
    /// EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        out.push_str(&format!(
            "| {:<4} | {:<44} | {:>12} | {:>12} | {:<8} | {:<4} |\n",
            "id", "quantity", "paper", "measured", "unit", "ok"
        ));
        out.push_str(&format!(
            "|{}|{}|{}|{}|{}|{}|\n",
            "-".repeat(6),
            "-".repeat(46),
            "-".repeat(14),
            "-".repeat(14),
            "-".repeat(10),
            "-".repeat(6)
        ));
        for c in &self.comparisons {
            out.push_str(&format!(
                "| {:<4} | {:<44} | {:>12} | {:>12} | {:<8} | {:<4} |\n",
                c.id,
                c.quantity,
                format_value(c.paper_value),
                format_value(c.measured_value),
                c.unit,
                if c.passes() { "yes" } else { "NO" }
            ));
        }
        if !self.health.is_pristine() {
            out.push('\n');
            out.push_str(&self.health.render());
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e4 || v.abs() < 1e-2 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_expectation() {
        let c = Comparison::new("F2", "linewidth", 110e6, 104e6, "Hz", Expectation::Within { rel_tol: 0.1 });
        assert!(c.passes());
        let c2 = Comparison::new("F2", "linewidth", 110e6, 80e6, "Hz", Expectation::Within { rel_tol: 0.1 });
        assert!(!c2.passes());
    }

    #[test]
    fn at_least_and_at_most() {
        assert!(Comparison::new("T2", "S", 2.0, 2.35, "", Expectation::AtLeast).passes());
        assert!(!Comparison::new("T2", "S", 2.0, 1.9, "", Expectation::AtLeast).passes());
        assert!(Comparison::new("F3", "fluct", 0.05, 0.03, "", Expectation::AtMost).passes());
    }

    #[test]
    fn in_range() {
        let e = Expectation::InRange { lo: 12.8, hi: 32.4 };
        assert!(Comparison::new("T1", "CAR", 0.0, 20.0, "", e).passes());
        assert!(!Comparison::new("T1", "CAR", 0.0, 40.0, "", e).passes());
    }

    #[test]
    fn zero_reference_within() {
        let c = Comparison::new("x", "offset", 0.0, 0.005, "Hz", Expectation::Within { rel_tol: 0.01 });
        assert!(c.passes());
    }

    #[test]
    fn report_renders_and_aggregates() {
        let mut r = ExperimentReport::new("test");
        r.push(Comparison::new("A", "q", 1.0, 1.0, "u", Expectation::Within { rel_tol: 0.1 }));
        assert!(r.all_pass());
        let text = r.render();
        assert!(text.contains("## test"));
        assert!(text.contains("yes"));
        r.push(Comparison::new("B", "q2", 1.0, 2.0, "u", Expectation::Within { rel_tol: 0.1 }));
        assert!(!r.all_pass());
        assert!(r.render().contains("NO"));
    }

    #[test]
    fn report_serializes() {
        let mut r = ExperimentReport::new("serde");
        r.push(Comparison::new("A", "q", 1.0, 1.1, "u", Expectation::AtLeast));
        let json = serde_json::to_string(&r).expect("serializes");
        let back: ExperimentReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.title, "serde");
        assert_eq!(back.comparisons.len(), 1);
        assert!(back.health.is_pristine());
    }

    #[test]
    fn degraded_health_appears_in_render() {
        let mut r = ExperimentReport::new("health");
        r.push(Comparison::new("A", "q", 1.0, 1.0, "u", Expectation::AtLeast));
        assert!(!r.render().contains("health:"));
        let mut h = HealthReport::pristine();
        h.record_quarantine(2, "dead signal detector");
        let r = r.with_health(h);
        assert!(r.render().contains("channel 2 quarantined"));
    }
}
