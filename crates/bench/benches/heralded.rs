//! §II bench targets: F1 coincidence matrix, T1 CAR/rates, F2 linewidth,
//! F3 stability — each criterion target regenerates the corresponding
//! figure at reduced statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qfc_bench::configs::heralded_small;
use qfc_core::heralded::{run_heralded_experiment, run_stability_experiment, StabilityConfig};
use qfc_core::source::QfcSource;

fn f1_coincidence_matrix(c: &mut Criterion) {
    let source = QfcSource::paper_device();
    let cfg = heralded_small();
    let mut g = c.benchmark_group("f1_coincidence_matrix");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let report = run_heralded_experiment(black_box(&source), black_box(&cfg), 1);
            black_box(report.coincidence_matrix)
        })
    });
    g.finish();
}

fn t1_car_rates(c: &mut Criterion) {
    let source = QfcSource::paper_device();
    let cfg = heralded_small();
    let mut g = c.benchmark_group("t1_car_rates");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let report = run_heralded_experiment(black_box(&source), black_box(&cfg), 2);
            black_box((report.car_range(), report.rate_range()))
        })
    });
    g.finish();
}

fn f2_linewidth(c: &mut Criterion) {
    let source = QfcSource::paper_device();
    let mut cfg = heralded_small();
    cfg.channels = 1;
    cfg.duration_s = 0.2;
    cfg.linewidth_pairs = 20_000;
    let mut g = c.benchmark_group("f2_linewidth");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let report = run_heralded_experiment(black_box(&source), black_box(&cfg), 3);
            black_box(report.linewidth.linewidth_hz)
        })
    });
    g.finish();
}

fn f3_stability(c: &mut Criterion) {
    let source = QfcSource::paper_device();
    let cfg = StabilityConfig::paper();
    let mut g = c.benchmark_group("f3_stability");
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let report = run_stability_experiment(black_box(&source), black_box(&cfg), 4);
            black_box(report.relative_fluctuation)
        })
    });
    g.finish();
}

criterion_group!(benches, f1_coincidence_matrix, t1_car_rates, f2_linewidth, f3_stability);
criterion_main!(benches);
