//! Dense complex matrices (row-major).

use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::{Complex64, C_ONE, C_ZERO};
use crate::cvector::CVector;

/// A dense complex matrix with row-major storage.
///
/// All quantum operators (density matrices, unitaries, projectors) and
/// discretized joint spectral amplitudes in the workspace use this type.
///
/// # Examples
///
/// ```
/// use qfc_mathkit::cmatrix::CMatrix;
///
/// let id = CMatrix::identity(2);
/// let m = &id * &id;
/// assert!(m.approx_eq(&id, 1e-15));
/// assert!((id.trace().re - 2.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C_ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C_ONE;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices of real values.
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&x| Complex64::real(x)));
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Builds a matrix element-wise from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Outer product `|a⟩⟨b|` (i.e. `a · b†`).
    pub fn outer(a: &CVector, b: &CVector) -> Self {
        Self::from_fn(a.dim(), b.dim(), |i, j| a[i] * b[j].conj())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Extracts row `i` as a vector.
    pub fn row(&self, i: usize) -> CVector {
        assert!(i < self.rows);
        CVector::from_vec(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> CVector {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√Σ|aᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every entry by a real factor.
    pub fn scale(&self, s: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(s)).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale_c(&self, s: Complex64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * s).collect(),
        }
    }

    /// Matrix-vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()`.
    pub fn matvec(&self, v: &CVector) -> CVector {
        assert_eq!(v.dim(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)] * v[j])
                    .sum::<Complex64>()
            })
            .collect()
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.approx_zero(0.0) {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Kronecker (tensor) product `A ⊗ B`.
    pub fn kron(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Quadratic form `⟨x|A|y⟩ = x† A y`.
    pub fn sandwich(&self, x: &CVector, y: &CVector) -> Complex64 {
        x.dot(&self.matvec(y))
    }

    /// `true` if `‖A − A†‖∞ ≤ tol` element-wise.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if `A†A ≈ I` within `tol` element-wise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let p = self.adjoint().matmul(self);
        p.approx_eq(&Self::identity(self.rows), tol)
    }

    /// `true` if every element is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Largest element-wise modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: Self) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: Self) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: Self) -> CMatrix {
        self.matmul(rhs)
    }
}

impl Mul<&CVector> for &CMatrix {
    type Output = CVector;
    fn mul(self, rhs: &CVector) -> CVector {
        self.matvec(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_I;

    #[test]
    fn identity_and_trace() {
        let id = CMatrix::identity(3);
        assert_eq!(id.trace().re, 3.0);
        assert!(id.is_hermitian(0.0));
        assert!(id.is_unitary(1e-15));
    }

    #[test]
    fn indexing_row_major() {
        let m = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)].re, 2.0);
        assert_eq!(m[(1, 0)].re, 3.0);
        assert_eq!(m.row(1), CVector::from_real(&[3.0, 4.0]));
        assert_eq!(m.col(0), CVector::from_real(&[1.0, 3.0]));
    }

    #[test]
    fn matmul_known_product() {
        let a = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = CMatrix::from_real_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        let expect = CMatrix::from_real_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!(c.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex64::new(i as f64, j as f64));
        assert!(a.matmul(&CMatrix::identity(3)).approx_eq(&a, 0.0));
        assert!(CMatrix::identity(3).matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let m = CMatrix::from_vec(1, 2, vec![C_I, Complex64::new(1.0, 2.0)]);
        let a = m.adjoint();
        assert_eq!(a.rows(), 2);
        assert_eq!(a[(0, 0)], -C_I);
        assert_eq!(a[(1, 0)], Complex64::new(1.0, -2.0));
    }

    #[test]
    fn pauli_y_is_hermitian_and_unitary() {
        let y = CMatrix::from_vec(2, 2, vec![C_ZERO, -C_I, C_I, C_ZERO]);
        assert!(y.is_hermitian(0.0));
        assert!(y.is_unitary(1e-15));
        // Y² = I
        assert!(y.matmul(&y).approx_eq(&CMatrix::identity(2), 1e-15));
    }

    #[test]
    fn kron_of_identities() {
        let k = CMatrix::identity(2).kron(&CMatrix::identity(3));
        assert!(k.approx_eq(&CMatrix::identity(6), 0.0));
    }

    #[test]
    fn kron_trace_is_product_of_traces() {
        let a = CMatrix::from_real_rows(&[&[1.0, 5.0], &[0.0, 2.0]]);
        let b = CMatrix::from_real_rows(&[&[3.0, 1.0], &[1.0, 4.0]]);
        let k = a.kron(&b);
        assert!((k.trace() - a.trace() * b.trace()).approx_zero(1e-12));
    }

    #[test]
    fn outer_product_is_rank_one_projector() {
        let v = CVector::from_real(&[1.0, 0.0]).normalized();
        let p = CMatrix::outer(&v, &v);
        assert!(p.matmul(&p).approx_eq(&p, 1e-14));
        assert!((p.trace().re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = CVector::from_real(&[1.0, -1.0]);
        let r = m.matvec(&v);
        assert_eq!(r, CVector::from_real(&[-1.0, -1.0]));
    }

    #[test]
    fn sandwich_expectation() {
        let z = CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let plus = CVector::from_real(&[1.0, 1.0]).normalized();
        assert!(z.sandwich(&plus, &plus).approx_zero(1e-14));
        let zero = CVector::basis(2, 0);
        assert!((z.sandwich(&zero, &zero).re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn diag_and_from_fn() {
        let d = CMatrix::diag(&[C_ONE, C_I]);
        assert_eq!(d[(1, 1)], C_I);
        assert_eq!(d[(0, 1)], C_ZERO);
        let f = CMatrix::from_fn(2, 2, |i, j| Complex64::real((i + j) as f64));
        assert_eq!(f[(1, 1)].re, 2.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = CMatrix::from_real_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn arithmetic_ops() {
        let a = CMatrix::identity(2);
        let b = a.scale(2.0);
        assert_eq!((&a + &a), b);
        assert!((&b - &a).approx_eq(&a, 0.0));
        assert!((-&a).approx_eq(&a.scale(-1.0), 0.0));
        let c = b.scale_c(C_I);
        assert_eq!(c[(0, 0)], Complex64::new(0.0, 2.0));
    }
}
