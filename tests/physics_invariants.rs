//! Property-based tests of cross-crate physics invariants.

use proptest::prelude::*;

use qfc::mathkit::cmatrix::CMatrix;
use qfc::mathkit::complex::Complex64;
use qfc::mathkit::cvector::CVector;
use qfc::mathkit::hermitian::eigh;
use qfc::photonics::ring::MicroringBuilder;
use qfc::photonics::units::{Frequency, Power};
use qfc::photonics::waveguide::{Polarization, Waveguide};
use qfc::photonics::{fwm, opo};
use qfc::quantum::bell::{concurrence, werner_state};
use qfc::quantum::chsh::{s_value, ChshSettings, TSIRELSON_BOUND};
use qfc::quantum::density::DensityMatrix;
use qfc::quantum::fidelity::{state_fidelity, trace_distance};
use qfc::quantum::fock::TwoModeSqueezedVacuum;
use qfc::quantum::state::PureState;
use qfc::timetag::coincidence::{count_coincidences, measure_car};
use qfc::timetag::events::TagStream;

fn ring_with(linewidth_mhz: f64, fsr_ghz: f64) -> qfc::photonics::ring::Microring {
    let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
    b.radius_for_fsr(Frequency::from_ghz(fsr_ghz));
    b.coupling_for_linewidth(Frequency::from_hz(linewidth_mhz * 1e6));
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_builder_hits_linewidth_target(lw in 40.0..400.0f64, fsr in 100.0..400.0f64) {
        let ring = ring_with(lw, fsr);
        let got = ring.linewidth().mhz();
        prop_assert!((got - lw).abs() / lw < 0.05, "target {lw} got {got}");
        let got_fsr = ring.fsr(Polarization::Te).ghz();
        prop_assert!((got_fsr - fsr).abs() / fsr < 0.01);
    }

    #[test]
    fn sfwm_rate_monotone_in_power(p1 in 0.5..10.0f64, scale in 1.1..4.0f64) {
        let ring = ring_with(110.0, 200.0);
        let r1 = fwm::pair_rate_cw(&ring, Polarization::Te, Power::from_mw(p1), 1);
        let r2 = fwm::pair_rate_cw(&ring, Polarization::Te, Power::from_mw(p1 * scale), 1);
        prop_assert!(r2 > r1);
        // Quadratic scaling.
        prop_assert!((r2 / r1 - scale * scale).abs() / (scale * scale) < 1e-9);
    }

    #[test]
    fn opo_threshold_scales_inversely_with_enhancement(lw in 60.0..300.0f64) {
        // Narrower linewidth → higher Q → stronger enhancement → lower
        // threshold.
        let narrow = ring_with(lw, 200.0);
        let broad = ring_with(lw * 2.0, 200.0);
        prop_assert!(opo::threshold(&narrow).w() < opo::threshold(&broad).w());
    }

    #[test]
    fn werner_chsh_never_exceeds_tsirelson(v in 0.0..1.0f64, phi in 0.0..6.2f64) {
        let rho = werner_state(v, phi);
        let s = s_value(&rho, &ChshSettings::optimal_for_phi_plus());
        prop_assert!(s <= TSIRELSON_BOUND + 1e-9);
    }

    #[test]
    fn concurrence_bounded(v in 0.0..1.0f64) {
        let c = concurrence(&werner_state(v, 0.0));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn fidelity_and_trace_distance_bounds(v1 in 0.0..1.0f64, v2 in 0.0..1.0f64) {
        let a = werner_state(v1, 0.0);
        let b = werner_state(v2, 0.0);
        let f = state_fidelity(&a, &b);
        let d = trace_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((-1e-9..=1.0).contains(&d));
        // Fuchs–van de Graaf.
        prop_assert!(1.0 - f.sqrt() <= d + 1e-7);
        prop_assert!(d <= (1.0 - f).sqrt() + 1e-7);
    }

    #[test]
    fn tmsv_statistics_consistent(mu in 0.0001..2.0f64, eta in 0.05..1.0f64) {
        let t = TwoModeSqueezedVacuum::new(mu);
        // P(n) is a distribution.
        let total: f64 = (0..400).map(|n| t.p_n(n)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Coincidence ≤ single probability.
        let c = t.coincidence_probability(eta, eta);
        let s = t.single_probability(eta);
        prop_assert!(c <= s + 1e-12);
        // Heralded g² in [0, 2].
        let g2 = t.heralded_g2(eta);
        prop_assert!((0.0..=2.0 + 1e-6).contains(&g2));
    }

    #[test]
    fn eigh_preserves_trace_and_orthonormality(seed in 0u64..1000) {
        // Random Hermitian from a seeded generator.
        use qfc::mathkit::rng::{normal, rng_from_seed};
        let mut rng = rng_from_seed(seed);
        let n = 5;
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::real(normal(&mut rng, 0.0, 1.0));
            for j in (i + 1)..n {
                let z = Complex64::new(normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0));
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        let e = eigh(&m);
        let tr: f64 = e.eigenvalues.iter().sum();
        prop_assert!((tr - m.trace().re).abs() < 1e-8);
        prop_assert!(e.eigenvectors.is_unitary(1e-8));
        prop_assert!(e.reconstruct().approx_eq(&m, 1e-8));
    }

    #[test]
    fn coincidence_count_symmetric_under_shift(shift in -1_000_000i64..1_000_000) {
        let a = TagStream::from_unsorted(vec![1_000_000, 2_000_000, 5_000_000]);
        let shifted: TagStream = a.as_slice().iter().map(|t| t + shift).collect();
        // Shifting both streams by the same offset preserves coincidences.
        let b = TagStream::from_unsorted(vec![1_000_100, 4_900_000]);
        let b_shifted: TagStream = b.as_slice().iter().map(|t| t + shift).collect();
        prop_assert_eq!(
            count_coincidences(&a, &b, 400, 0),
            count_coincidences(&shifted, &b_shifted, 400, 0)
        );
    }

    #[test]
    fn car_non_negative(seed in 0u64..200) {
        use qfc::mathkit::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(seed);
        let a: TagStream = (0..500).map(|_| (rng.gen::<f64>() * 1e10) as i64).collect();
        let b: TagStream = (0..500).map(|_| (rng.gen::<f64>() * 1e10) as i64).collect();
        let r = measure_car(&a, &b, 1000, 100_000, 5);
        prop_assert!(r.car >= 0.0 || r.car.is_infinite());
        prop_assert!(r.accidentals >= 0.0);
    }

    #[test]
    fn pure_state_normalization_preserved_by_ops(re0 in -1.0..1.0f64, im0 in -1.0..1.0f64,
                                                 re1 in -1.0..1.0f64, im1 in -1.0..1.0f64) {
        prop_assume!((re0.abs() + im0.abs() + re1.abs() + im1.abs()) > 0.1);
        let v = CVector::from_vec(vec![Complex64::new(re0, im0), Complex64::new(re1, im1)]);
        let s = PureState::from_amplitudes(v).expect("nonzero");
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
        // Purity of the projector is 1.
        let rho = DensityMatrix::from_pure(&s);
        prop_assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_shrinks_chsh(v in 0.5..1.0f64, p in 0.0..1.0f64) {
        let clean = werner_state(v, 0.0);
        let noisy = clean.depolarize(p);
        let settings = ChshSettings::optimal_for_phi_plus();
        prop_assert!(s_value(&noisy, &settings) <= s_value(&clean, &settings) + 1e-9);
    }

    #[test]
    fn fft_roundtrip_and_parseval(seed in 0u64..500, log_n in 3u32..9) {
        use qfc::mathkit::fft::{fft, ifft};
        use qfc::mathkit::rng::{normal, rng_from_seed};
        let n = 1usize << log_n;
        let mut rng = rng_from_seed(seed);
        let original: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0)))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        // Parseval: energy preserved up to the 1/N convention.
        let te: f64 = original.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-6 * te.max(1.0));
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!(a.approx_eq(*b, 1e-8));
        }
    }

    #[test]
    fn jones_elements_never_amplify(theta in 0.0..3.2f64, angle in 0.0..3.2f64) {
        use qfc::photonics::jones::{JonesMatrix, JonesVector};
        let state = JonesVector::linear(angle);
        for element in [
            JonesMatrix::polarizer(theta),
            JonesMatrix::half_wave_plate(theta),
            JonesMatrix::quarter_wave_plate(theta),
            JonesMatrix::retarder(theta),
        ] {
            prop_assert!(state.intensity_after(&element) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn qudit_entropy_bounded_by_log_d(d in 2usize..7, w0 in 0.1..1.0f64, w1 in 0.1..1.0f64) {
        use qfc::quantum::qudit::BipartiteQudit;
        let weights: Vec<f64> = (0..d)
            .map(|k| if k % 2 == 0 { w0 } else { w1 })
            .collect();
        let state = BipartiteQudit::from_channel_weights(&weights);
        let e = state.entanglement_entropy_bits();
        prop_assert!(e >= -1e-9);
        prop_assert!(e <= (d as f64).log2() + 1e-9);
    }
}
