//! Dense complex vectors.

use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::{Complex64, C_ZERO};

/// A dense complex vector.
///
/// Used throughout the workspace for quantum state amplitudes, spectral
/// samples, and interferometer mode amplitudes.
///
/// # Examples
///
/// ```
/// use qfc_mathkit::cvector::CVector;
/// use qfc_mathkit::complex::Complex64;
///
/// let v = CVector::basis(4, 1);
/// assert_eq!(v.dim(), 4);
/// assert_eq!(v[1], Complex64::real(1.0));
/// assert!((v.norm() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CVector {
    data: Vec<Complex64>,
}

impl CVector {
    /// Creates a vector of `dim` zeros.
    pub fn zeros(dim: usize) -> Self {
        Self {
            data: vec![C_ZERO; dim],
        }
    }

    /// Creates a vector from raw components.
    pub fn from_vec(data: Vec<Complex64>) -> Self {
        Self { data }
    }

    /// Creates a vector from real components.
    pub fn from_real(data: &[f64]) -> Self {
        Self {
            data: data.iter().map(|&x| Complex64::real(x)).collect(),
        }
    }

    /// Computational-basis vector `e_k` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= dim`.
    pub fn basis(dim: usize, k: usize) -> Self {
        assert!(k < dim, "basis index {k} out of range for dimension {dim}");
        let mut v = Self::zeros(dim);
        v.data[k] = Complex64::real(1.0);
        v
    }

    /// Dimension (number of components).
    #[inline]
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no components.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the components.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the components.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Iterator over components.
    pub fn iter(&self) -> std::slice::Iter<'_, Complex64> {
        self.data.iter()
    }

    /// Hermitian inner product `⟨self|other⟩ = Σ conj(selfᵢ)·otherᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &Self) -> Complex64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in dot");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Squared Euclidean norm `Σ |vᵢ|²`.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns a normalized copy (unit norm).
    ///
    /// # Panics
    ///
    /// Panics if the vector is (numerically) zero.
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize zero vector");
        self.scale(1.0 / n)
    }

    /// Normalizes in place.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (numerically) zero.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize zero vector");
        for z in &mut self.data {
            *z = *z / n;
        }
    }

    /// Scales all components by a real factor.
    pub fn scale(&self, s: f64) -> Self {
        Self {
            data: self.data.iter().map(|z| z.scale(s)).collect(),
        }
    }

    /// Scales all components by a complex factor.
    pub fn scale_c(&self, s: Complex64) -> Self {
        Self {
            data: self.data.iter().map(|z| *z * s).collect(),
        }
    }

    /// Component-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Tensor (Kronecker) product `self ⊗ other`.
    ///
    /// ```
    /// use qfc_mathkit::cvector::CVector;
    /// let a = CVector::basis(2, 0);
    /// let b = CVector::basis(2, 1);
    /// let ab = a.kron(&b);
    /// assert_eq!(ab.dim(), 4);
    /// assert_eq!(ab[1].re, 1.0); // |01⟩
    /// ```
    pub fn kron(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.dim() * other.dim());
        for a in &self.data {
            for b in &other.data {
                out.push(*a * *b);
            }
        }
        Self { data: out }
    }

    /// `true` if every component is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

impl Index<usize> for CVector {
    type Output = Complex64;
    #[inline]
    fn index(&self, i: usize) -> &Complex64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Complex64 {
        &mut self.data[i]
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: Self) -> CVector {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch in add");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: Self) -> CVector {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch in sub");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        CVector {
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul<Complex64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: Complex64) -> CVector {
        self.scale_c(rhs)
    }
}

impl FromIterator<Complex64> for CVector {
    fn from_iter<I: IntoIterator<Item = Complex64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<Complex64> for CVector {
    fn extend<I: IntoIterator<Item = Complex64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl<'a> IntoIterator for &'a CVector {
    type Item = &'a Complex64;
    type IntoIter = std::slice::Iter<'a, Complex64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_I;

    #[test]
    fn zeros_and_basis() {
        let z = CVector::zeros(3);
        assert_eq!(z.dim(), 3);
        assert_eq!(z.norm(), 0.0);
        let e = CVector::basis(3, 2);
        assert_eq!(e[2].re, 1.0);
        assert_eq!(e[0], C_ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = CVector::basis(2, 2);
    }

    #[test]
    fn dot_is_conjugate_linear_in_first_argument() {
        let a = CVector::from_vec(vec![C_I, Complex64::new(1.0, 1.0)]);
        let b = CVector::from_vec(vec![Complex64::real(2.0), C_I]);
        let d = a.dot(&b);
        // conj(i)*2 + conj(1+i)*i = -2i + (1-i)i = -2i + i + 1 = 1 - i
        assert!(d.approx_eq(Complex64::new(1.0, -1.0), 1e-14));
    }

    #[test]
    fn norm_and_normalize() {
        let mut v = CVector::from_real(&[3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-15);
        let w = CVector::from_real(&[0.0, 2.0]).normalized();
        assert!((w.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        CVector::zeros(2).normalize();
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CVector::from_real(&[1.0, 2.0]);
        let b = CVector::from_real(&[3.0, 4.0, 5.0]);
        let k = a.kron(&b);
        assert_eq!(k.dim(), 6);
        assert_eq!(k[0].re, 3.0);
        assert_eq!(k[5].re, 10.0);
    }

    #[test]
    fn kron_norm_is_product_of_norms() {
        let a = CVector::from_vec(vec![C_I, Complex64::new(0.5, -0.5)]);
        let b = CVector::from_real(&[1.0, 1.0, 2.0]);
        let k = a.kron(&b);
        assert!((k.norm() - a.norm() * b.norm()).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = CVector::from_real(&[1.0, 2.0]);
        let b = CVector::from_real(&[3.0, -1.0]);
        assert_eq!((&a + &b), CVector::from_real(&[4.0, 1.0]));
        assert_eq!((&a - &b), CVector::from_real(&[-2.0, 3.0]));
        assert_eq!((-&a), CVector::from_real(&[-1.0, -2.0]));
        let s = &a * C_I;
        assert!(s[0].approx_eq(C_I, 1e-15));
    }

    #[test]
    fn collect_and_extend() {
        let v: CVector = (0..3).map(|k| Complex64::real(k as f64)).collect();
        assert_eq!(v.dim(), 3);
        let mut w = CVector::zeros(0);
        w.extend(v.iter().copied());
        assert_eq!(w, v);
    }
}
