//! Crash-tolerance gate for the sharded campaign engine.
//!
//! The contract under test: a campaign — whole, interrupted by an
//! injected crash, damaged on disk, or resumed across invocations —
//! always merges to a report **byte-identical** to the single-process
//! driver run, at any thread count. Each test drives `run_campaign`
//! with `prove: true`, so the engine itself re-runs the driver and
//! checks the bytes; the assertions here additionally pin the recovery
//! bookkeeping (retries, backoff, resume and rejection counts).

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use qfc::campaign::{run_campaign, CampaignOptions, CampaignOutcome, CampaignWorkload};
use qfc::campaign::{CrossPolCampaign, HeraldedCampaign, MultiPhotonCampaign, TimeBinCampaign};
use qfc::core::crosspol::CrossPolConfig;
use qfc::core::heralded::HeraldedConfig;
use qfc::core::multiphoton::MultiPhotonConfig;
use qfc::core::source::QfcSource;
use qfc::core::timebin::TimeBinConfig;
use qfc::faults::{Arm, FaultEvent, FaultKind, FaultSchedule, QfcError};
use qfc::runtime::with_threads;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/tmp/campaign-tests")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create campaign test dir");
    dir
}

fn timebin_config() -> TimeBinConfig {
    let mut c = TimeBinConfig::fast_demo();
    c.channels = 3;
    c.frames_per_point = 50_000;
    c.phase_steps = 8;
    c
}

fn proving(dir: PathBuf) -> CampaignOptions {
    let mut opts = CampaignOptions::new(dir);
    opts.prove = true;
    opts
}

fn expect_proof(outcome: &CampaignOutcome) {
    assert_eq!(
        outcome.proof,
        Some(true),
        "campaign report diverged from the single-process driver run"
    );
}

/// Shorthand: a schedule holding one campaign fault (the window is
/// irrelevant — campaign faults are keyed by shard index).
fn campaign_fault(kind: FaultKind) -> FaultSchedule {
    FaultSchedule::empty().with(FaultEvent::new(0.0, 1.0, kind))
}

#[test]
fn timebin_campaign_is_byte_identical_at_1_4_8_threads() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_config();
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 71,
        schedule: &empty,
    };
    let mut reports = Vec::new();
    for threads in [1usize, 4, 8] {
        let opts = proving(fresh_dir(&format!("timebin-threads-{threads}")));
        let outcome =
            with_threads(threads, || run_campaign(&workload, &opts)).expect("campaign runs");
        expect_proof(&outcome);
        assert_eq!(outcome.stats.shards_total, 3);
        assert_eq!(outcome.stats.shards_completed, 3);
        assert_eq!(outcome.stats.shards_resumed, 0);
        reports.push(outcome.report_json);
    }
    assert_eq!(reports[0], reports[1], "1 vs 4 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
}

#[test]
fn heralded_campaign_is_byte_identical_including_shot_shards() {
    let source = QfcSource::paper_device();
    let mut cfg = HeraldedConfig::fast_demo();
    cfg.duration_s = 1.0;
    cfg.linewidth_pairs = 2000;
    let empty = FaultSchedule::empty();
    let workload = HeraldedCampaign {
        source: &source,
        config: &cfg,
        seed: 72,
        schedule: &empty,
    };
    let opts = proving(fresh_dir("heralded-clean"));
    let outcome = run_campaign(&workload, &opts).expect("campaign runs");
    expect_proof(&outcome);
    // Per-channel shards plus the fixed 32-way linewidth decomposition.
    assert!(
        outcome.stats.shards_total > 32,
        "expected channel + linewidth shards, got {}",
        outcome.stats.shards_total
    );
}

#[test]
fn multiphoton_campaign_is_byte_identical_with_physics_faults() {
    let source = QfcSource::paper_device_timebin();
    let mut cfg = MultiPhotonConfig::fast_demo();
    cfg.timebin.frames_per_point = 50_000;
    cfg.bell_shots_per_setting = 100;
    cfg.four_fold_phase_steps = 8;
    cfg.four_shots_per_setting = 10;
    // A physics fault rides along: the campaign must reproduce the
    // fault-adjusted driver run, health section included.
    let schedule = FaultSchedule::empty().with(FaultEvent::new(
        10.0,
        40.0,
        FaultKind::DetectorDropout {
            channel: 1,
            arm: Arm::Signal,
        },
    ));
    let workload = MultiPhotonCampaign {
        source: &source,
        config: &cfg,
        seed: 73,
        schedule: &schedule,
    };
    let opts = proving(fresh_dir("multiphoton-faulted"));
    let outcome = run_campaign(&workload, &opts).expect("campaign runs");
    expect_proof(&outcome);
}

#[test]
fn crosspol_campaign_is_byte_identical() {
    let source = QfcSource::paper_device_type2();
    let mut cfg = CrossPolConfig::fast_demo();
    cfg.duration_s = 5.0;
    let empty = FaultSchedule::empty();
    let workload = CrossPolCampaign {
        source: &source,
        config: &cfg,
        seed: 74,
        schedule: &empty,
    };
    let opts = proving(fresh_dir("crosspol-clean"));
    let outcome = run_campaign(&workload, &opts).expect("campaign runs");
    expect_proof(&outcome);
    assert_eq!(outcome.stats.shards_total, 1);
}

#[test]
fn shard_abort_interrupts_then_resume_is_byte_identical() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_config();
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 75,
        schedule: &empty,
    };
    let mut opts = proving(fresh_dir("timebin-abort"));
    opts.faults = campaign_fault(FaultKind::ShardAbort { shard: 1 });

    let err = run_campaign(&workload, &opts).expect_err("abort kills the first run");
    match err {
        QfcError::CampaignInterrupted {
            completed_shards,
            total_shards,
        } => {
            assert_eq!(completed_shards, 1, "only the shard before the abort runs");
            assert_eq!(total_shards, 3);
        }
        other => panic!("expected CampaignInterrupted, got {other}"),
    }

    // Same options on the re-run: the marker file makes the injection
    // one-shot, so the resume survives and completes.
    let outcome = run_campaign(&workload, &opts).expect("resume completes");
    expect_proof(&outcome);
    assert_eq!(outcome.stats.shards_resumed, 1);
    assert_eq!(outcome.stats.shards_completed, 2);
}

#[test]
fn corrupted_checkpoint_is_rejected_and_recomputed() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_config();
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 76,
        schedule: &empty,
    };
    let mut opts = proving(fresh_dir("timebin-corrupt"));
    opts.faults = campaign_fault(FaultKind::CheckpointCorruption { shard: 0 });

    let err = run_campaign(&workload, &opts).expect_err("corruption kills the first run");
    assert!(matches!(err, QfcError::CampaignInterrupted { .. }), "{err}");

    let outcome = run_campaign(&workload, &opts).expect("resume completes");
    expect_proof(&outcome);
    assert_eq!(
        outcome.stats.checkpoints_rejected, 1,
        "the torn checkpoint must be detected and discarded"
    );
    assert_eq!(outcome.stats.shards_completed, 3, "all shards recomputed or rerun");
}

#[test]
fn stale_checkpoint_is_rejected_and_recomputed() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_config();
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 77,
        schedule: &empty,
    };
    let mut opts = proving(fresh_dir("timebin-stale"));
    opts.faults = campaign_fault(FaultKind::CheckpointStale { shard: 2 });

    let err = run_campaign(&workload, &opts).expect_err("stale write kills the first run");
    assert!(matches!(err, QfcError::CampaignInterrupted { .. }), "{err}");

    let outcome = run_campaign(&workload, &opts).expect("resume completes");
    expect_proof(&outcome);
    assert_eq!(
        outcome.stats.checkpoints_rejected, 1,
        "the mismatched fingerprint must be detected"
    );
}

#[test]
fn executor_faults_retry_with_the_deterministic_backoff_ladder() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_config();
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 78,
        schedule: &empty,
    };
    let mut opts = proving(fresh_dir("timebin-retry"));
    opts.faults = campaign_fault(FaultKind::ShardExecutorFault {
        shard: 1,
        failures: 2,
    });
    let outcome = run_campaign(&workload, &opts).expect("retries absorb the failures");
    expect_proof(&outcome);
    assert_eq!(outcome.stats.retries, 2);
    // base·2⁰ before attempt 2, base·2¹ before attempt 3.
    let expected = opts.backoff_base_s * 3.0;
    assert!(
        (outcome.stats.backoff_s - expected).abs() < 1e-12,
        "backoff {} ≠ {expected}",
        outcome.stats.backoff_s
    );
    assert!(outcome.stats.quarantined.is_empty());
}

#[test]
fn exhausted_retries_quarantine_then_a_clean_rerun_completes() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_config();
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 79,
        schedule: &empty,
    };
    let dir = fresh_dir("timebin-quarantine");
    let mut opts = proving(dir.clone());
    opts.faults = campaign_fault(FaultKind::ShardExecutorFault {
        shard: 1,
        failures: 99,
    });
    let err = run_campaign(&workload, &opts).expect_err("budget exhausts");
    match err {
        QfcError::ShardsQuarantined { shards } => assert_eq!(shards, vec![1]),
        other => panic!("expected ShardsQuarantined, got {other}"),
    }

    // The operator clears the fault (new options, same directory): the
    // two healthy shards resume from checkpoints, the quarantined one
    // finally runs, and the merged bytes still match the driver.
    let clean = proving(dir);
    let outcome = run_campaign(&workload, &clean).expect("clean rerun completes");
    expect_proof(&outcome);
    assert_eq!(outcome.stats.shards_resumed, 2);
    assert_eq!(outcome.stats.shards_completed, 1);
}

#[test]
fn resumed_campaign_recomputes_nothing_and_still_proves() {
    let source = QfcSource::paper_device_timebin();
    let cfg = timebin_config();
    let empty = FaultSchedule::empty();
    let workload = TimeBinCampaign {
        source: &source,
        config: &cfg,
        seed: 80,
        schedule: &empty,
    };
    let dir = fresh_dir("timebin-idempotent");
    let opts = proving(dir);
    let first = run_campaign(&workload, &opts).expect("first run");
    let second = run_campaign(&workload, &opts).expect("second run");
    expect_proof(&second);
    assert_eq!(second.stats.shards_resumed, 3);
    assert_eq!(second.stats.shards_completed, 0);
    assert_eq!(first.report_json, second.report_json);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any abort point, any seed: interrupt → resume → byte-identical.
    #[test]
    fn any_abort_point_resumes_byte_identical(shard in 0u32..3, seed in 0u64..1000) {
        let source = QfcSource::paper_device_timebin();
        let cfg = timebin_config();
        let empty = FaultSchedule::empty();
        let workload = TimeBinCampaign {
            source: &source,
            config: &cfg,
            seed,
            schedule: &empty,
        };
        let mut opts = proving(fresh_dir(&format!("prop-abort-{shard}-{seed}")));
        opts.faults = campaign_fault(FaultKind::ShardAbort { shard });
        let err = run_campaign(&workload, &opts).expect_err("abort kills the first run");
        prop_assert!(matches!(err, QfcError::CampaignInterrupted { .. }));
        let outcome = run_campaign(&workload, &opts).expect("resume completes");
        prop_assert_eq!(outcome.proof, Some(true));
        prop_assert_eq!(
            outcome.stats.shards_resumed,
            usize::try_from(shard).expect("small"),
            "shards before the abort point come back from checkpoints"
        );
        // Belt and braces: the merged bytes equal an independent
        // single-process reference.
        let reference = workload.reference_json().expect("reference run");
        prop_assert_eq!(outcome.report_json, reference);
    }
}
