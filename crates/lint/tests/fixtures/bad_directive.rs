//@ crate: qfc-core
// qfc-lint: allow(lossy-cast)
//~^ ERROR bad-directive
pub fn missing_justification(n: usize) -> f64 {
    n as f64 //~ ERROR lossy-cast
}

// qfc-lint: allow(no-such-rule) — justification present
//~^ ERROR bad-directive
pub fn unknown_rule() {}

// qfc-lint: allow(forbid-unsafe) — workspace rules cannot be suppressed
//~^ ERROR bad-directive
pub fn unsuppressable_rule() {}

/// Doc comments may describe the `qfc-lint: allow(...)` grammar freely.
pub fn doc_comments_are_not_directives() {}
