//! The rule taxonomy: names, summaries, rationale, and per-crate
//! applicability.
//!
//! Rules encode *domain* invariants of this workspace — the software
//! analogue of the paper's metrological-stability claim is that every
//! published number is a pure, byte-identical function of explicit
//! seeds, so anything that injects wall-clock time, ambient entropy,
//! unordered iteration, silent value truncation, or an unstructured
//! panic into a library crate is a defect class, not a style nit.
//!
//! Since the semantic layer (v2) the engine distinguishes two lint
//! profiles: library crates under `crates/` run [`Profile::Strict`];
//! the root crate (`src/`, `src/bin/`) and `examples/` run
//! [`Profile::Relaxed`], where panic rules and wall-clock determinism
//! are advisory (reported, never denied) but entropy-determinism and
//! RNG-lane rules stay enforced — a CLI may time itself, but it must
//! never let ambient entropy into a result.

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case rule name (used in reports and allow directives).
    pub name: &'static str,
    /// One-line summary shown by `qfc-lint --list-rules`.
    pub summary: &'static str,
    /// Whether a `// qfc-lint: allow(<rule>) — <justification>` directive
    /// may suppress this rule at a specific line.
    pub allowable: bool,
    /// Why the rule exists, shown by `qfc-lint --explain <rule>`.
    pub rationale: &'static str,
    /// A minimal before/after example, shown by `qfc-lint --explain`.
    pub example: &'static str,
}

/// Lint profile a file is analyzed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Profile {
    /// Library crates: every rule enforced.
    Strict,
    /// Root crate binaries and examples: panic rules and wall-clock
    /// determinism downgrade to advisories; entropy determinism and
    /// RNG-lane discipline stay enforced.
    Relaxed,
}

/// Every rule the engine can emit, in canonical (report) order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "lossy-cast",
        summary: "no `as` numeric casts in library crates — use qfc_mathkit::cast, \
                  From/try_from, to_bits, or total_cmp",
        allowable: true,
        rationale: "`as` silently truncates, wraps, and saturates; a narrowed shot \
                    count or a sign-flipped index corrupts published numbers without \
                    an error. The vetted qfc_mathkit::cast helpers make every \
                    conversion's clamping behavior explicit and tested.",
        example: "// bad:  let n = shots as u32;\n\
                  // good: let n = qfc_mathkit::cast::u64_to_u32_clamp(shots);",
    },
    Rule {
        name: "determinism",
        summary: "no wall-clock, ambient entropy, or unordered-iteration types \
                  (Instant/SystemTime/thread_rng/from_entropy/HashMap/HashSet) \
                  in result-affecting code; wall-clock is advisory in the \
                  relaxed profile",
        allowable: true,
        rationale: "Published results must be byte-identical functions of (config, \
                    seed). Wall-clock reads, ambient entropy, and hash-order \
                    iteration each inject machine state into that function. CLI \
                    timing (relaxed profile) may read clocks, but nothing may \
                    draw ambient entropy.",
        example: "// bad:  let mut seen = HashMap::new();\n\
                  // good: let mut seen = BTreeMap::new();",
    },
    Rule {
        name: "rng-lane",
        summary: "drivers obtain RNGs only via qfc_mathkit::rng split_seed lanes, \
                  never raw seed_from_u64/from_seed",
        allowable: true,
        rationale: "Counter-based split_seed lanes keep every parallel shard's \
                    stream disjoint and reproducible at any thread count. A raw \
                    seed_from_u64 bypasses the lane book-keeping and risks stream \
                    collisions between shards.",
        example: "// bad:  let rng = StdRng::seed_from_u64(seed);\n\
                  // good: let rng = rng_from_seed(split_seed(seed, lane));",
    },
    Rule {
        name: "rng-lane-flow",
        summary: "an RNG constructed inside (or reachable from) a parallel closure \
                  must take its seed from a split_seed lane, even when the seed is \
                  laundered through helper-fn parameters",
        allowable: true,
        rationale: "The per-line rng-lane rule cannot see a raw seed passed through \
                    a function boundary into a par_map/par_chunks/par_shots \
                    closure. Two shards seeding rng_from_seed with the same raw \
                    value draw identical streams, which silently correlates \
                    samples and breaks thread-count invariance of the merged \
                    result. The flow rule traces seed arguments interprocedurally \
                    from every parallel region back to a split_seed lane.",
        example: "// bad:  par_map(&items, |it| helper(it, seed));      // raw capture\n\
                  // good: par_map(&items, |it| helper(it, split_seed(seed, it.lane)));",
    },
    Rule {
        name: "panic-reachability",
        summary: "no panic site (panic!/unreachable!/todo!/unimplemented!/unwrap/\
                  expect) reachable from a public fn of a library crate without a \
                  justifying allow directive at the site or on the entry fn; \
                  advisory in the relaxed profile",
        allowable: true,
        rationale: "A panic reachable from public API can abort a multi-hour \
                    campaign from deep inside a call chain the caller never sees. \
                    The call-graph proof replaces the old per-line panic-surface \
                    heuristic: a private helper that panics is flagged exactly \
                    when some public entry point can actually reach it, and the \
                    finding carries the offending call path.",
        example: "// bad:  pub fn run() { helper() }  fn helper() { x.unwrap(); }\n\
                  // good: pub fn run() -> QfcResult<()> { helper()? }  \
                  fn helper() -> QfcResult<T> { x.ok_or(...) }",
    },
    Rule {
        name: "par-merge-order",
        summary: "parallel closure results merge only by deterministic \
                  shard-index-ordered folds — no shared-state mutation inside or \
                  reachable from a parallel closure, no order-sensitive merge \
                  stage",
        allowable: true,
        rationale: "The runtime already returns shard results in index order; a \
                    closure that instead mutates a captured accumulator (+=, \
                    Mutex, atomics, channels) or a merge stage that reorders its \
                    input (rev/pop/swap_remove) makes the merged f64 depend on \
                    scheduling, which breaks byte-identity across thread counts.",
        example: "// bad:  par_map(&xs, |x| { total += f(x); 0 });\n\
                  // good: let parts = par_map(&xs, f); let total: f64 = parts.iter().sum();",
    },
    Rule {
        name: "error-taxonomy",
        summary: "public fallible fns in library crates return QfcError/QfcResult",
        allowable: true,
        rationale: "A single error taxonomy lets the supervisor and the campaign \
                    engine classify failures (retry vs quarantine vs abort) \
                    without string-matching ad-hoc error types.",
        example: "// bad:  pub fn load(p: &Path) -> Result<Cfg, String>\n\
                  // good: pub fn load(p: &Path) -> QfcResult<Cfg>",
    },
    Rule {
        name: "hot-loop-alloc",
        summary: "no Vec::new/vec!/.clone() inside a `// qfc-lint: hot` region — \
                  preallocate or hoist buffers out of shot kernels",
        allowable: true,
        rationale: "Shot kernels run millions of times; a per-shot allocation \
                    dominates the profile and regresses the allocation-count \
                    columns gated by the bench baseline.",
        example: "// bad:  for _ in 0..shots { let mut buf = Vec::new(); ... }\n\
                  // good: let mut buf = Vec::with_capacity(n); for _ in 0..shots { buf.clear(); ... }",
    },
    Rule {
        name: "forbid-unsafe",
        summary: "every library crate root declares #![forbid(unsafe_code)]",
        allowable: false,
        rationale: "The workspace's determinism proofs are all source-level; a \
                    single unsafe block could invalidate them invisibly. Forbid \
                    (not deny) so no inner attribute can re-enable it.",
        example: "// lib.rs first line:\n#![forbid(unsafe_code)]",
    },
    Rule {
        name: "ci-roster",
        summary: "scripts/ci.sh derives its clippy roster from the workspace \
                  (never excluding qfc-campaign), invokes qfc-lint, checks \
                  CALLGRAPH.json drift, and its bench baseline carries every \
                  gated workload, so no crate, workload, or analysis can \
                  silently skip a gate",
        allowable: false,
        rationale: "Every gate that is not structurally derived from the workspace \
                    eventually rots: a hand-listed roster misses new crates, a \
                    trimmed baseline drops a regression gate, and an analyzer \
                    whose output is never diffed can go nondeterministic \
                    unnoticed.",
        example: "# ci.sh fragments the rule looks for:\n\
                  cargo run -p qfc-lint -- --deny\n\
                  for d in crates/*/; do ... clippy ... done\n\
                  cmp target/CALLGRAPH.json target/CALLGRAPH.second.json",
    },
    Rule {
        name: "bad-directive",
        summary: "a qfc-lint allow directive must name known rules and carry a \
                  non-empty justification",
        allowable: false,
        rationale: "An allow directive is a reviewed exception; without a named \
                    rule and a reason it degenerates into an unconditional lint \
                    mute that hides future regressions.",
        example: "// qfc-lint: allow(lossy-cast) — u16 channel ids, bounded by N_CHANNELS",
    },
    Rule {
        name: "unused-allow",
        summary: "an allow directive whose target line (or, for fn-level \
                  panic-reachability allows, target fn) has no matching finding \
                  is stale and must be removed",
        allowable: false,
        rationale: "A stale allow is a latent hole: the code it excused is gone, \
                    but the directive would silently excuse the next regression \
                    at the same line.",
        example: "// delete the directive once the code it excused is fixed",
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Crate directories under `crates/` that are *not* library crates and
/// are therefore outside the lint scope (the bench harness trades rigor
/// for throughput by design).
pub const NON_LIBRARY_DIRS: &[&str] = &["bench"];

/// Workloads that must be present in the bench baseline referenced by
/// `scripts/ci.sh --check-baseline` (the `ci-roster` check): dropping
/// one from the baseline would silently remove its allocation and
/// wall-time regression gate. The two spectral sweeps gate the SoA
/// batch kernels; `campaign-checkpoint` gates the campaign engine's
/// checkpoint overhead and resume latency; `streaming-tomography`
/// gates the streaming count accumulator and the accelerated RρR
/// reconstruction path; the two qudit MLE workloads gate the rank-1
/// projector + packed-GEMM large-d tomography kernels.
pub const GATED_WORKLOADS: &[&str] = &[
    "ring-dispersion-sweep",
    "opo-threshold-sweep",
    "campaign-checkpoint",
    "streaming-tomography",
    "qudit-mle-16",
    "qudit-mle-64",
];

/// Crates the clippy no-unwrap roster must always gate when they exist
/// in the workspace (the `ci-roster` check). `qfc-campaign` is pinned
/// explicitly: its crash-recovery guarantees rest on error-path
/// returns, so excluding it from the panic-freedom gate (the way
/// `qfc-bench` is excluded) would be a silent robustness regression.
pub const CLIPPY_REQUIRED: &[&str] = &["qfc-campaign"];

/// Crates exempt from `error-taxonomy`: they sit *below* `qfc-faults`
/// in the dependency graph (or are zero-dependency by design) and so
/// cannot name `QfcError`. Their local error types convert into
/// `QfcError` at the faults boundary.
const ERROR_TAXONOMY_EXEMPT: &[&str] = &["qfc-mathkit", "qfc-obs", "qfc-runtime", "qfc-lint"];

/// Crates exempt from `rng-lane` and `rng-lane-flow`: `qfc-mathkit`
/// *implements* the lane discipline (`rng_from_seed`/`split_seed`), so
/// it is the one place a raw `seed_from_u64` is legitimate.
const RNG_LANE_EXEMPT: &[&str] = &["qfc-mathkit"];

/// Crates exempt from the transitive (reachability) half of
/// `par-merge-order`: `qfc-runtime` owns the worker pool (its scoped
/// channels and join machinery *are* the deterministic merge), and
/// `qfc-obs` guards its global collector with a Mutex that is
/// re-entrancy-safe by construction and never feeds back into results
/// (collector-off byte-identity is asserted by tests/observability.rs).
/// Hazards written directly inside a parallel closure are still
/// flagged even in these crates.
pub const PAR_MERGE_EXEMPT: &[&str] = &["qfc-runtime", "qfc-obs"];

/// Whether `rule` applies to `crate_name` (a library crate).
pub fn rule_applies(rule: &str, crate_name: &str) -> bool {
    match rule {
        "error-taxonomy" => !ERROR_TAXONOMY_EXEMPT.contains(&crate_name),
        "rng-lane" | "rng-lane-flow" => !RNG_LANE_EXEMPT.contains(&crate_name),
        _ => true,
    }
}

/// Primitive numeric type names, the right-hand side of a flagged `as`.
pub const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Wall-clock identifiers flagged by the `determinism` rule. Enforced
/// in the strict profile, advisory in the relaxed profile (a CLI may
/// time itself).
pub const WALLCLOCK_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// Ambient-entropy / unordered-iteration identifiers flagged by the
/// `determinism` rule. Enforced in *every* profile.
pub const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "HashMap", "HashSet"];

/// Identifiers flagged by the `rng-lane` rule.
pub const RNG_LANE_IDENTS: &[&str] = &["seed_from_u64", "from_seed"];

/// Macro names treated as panic sites (when followed by `!`) by the
/// `panic-reachability` rule.
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_kebab_case() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(
                r.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{}",
                r.name
            );
            assert!(RULES[i + 1..].iter().all(|s| s.name != r.name));
        }
    }

    #[test]
    fn every_rule_documents_itself() {
        for r in RULES {
            assert!(!r.rationale.is_empty(), "{} has no rationale", r.name);
            assert!(!r.example.is_empty(), "{} has no example", r.name);
        }
    }

    #[test]
    fn scoping_encodes_the_dependency_graph() {
        assert!(!rule_applies("error-taxonomy", "qfc-mathkit"));
        assert!(rule_applies("error-taxonomy", "qfc-core"));
        assert!(!rule_applies("rng-lane", "qfc-mathkit"));
        assert!(!rule_applies("rng-lane-flow", "qfc-mathkit"));
        assert!(rule_applies("rng-lane", "qfc-core"));
        assert!(rule_applies("rng-lane-flow", "qfc-core"));
        assert!(rule_applies("lossy-cast", "qfc-mathkit"));
        assert!(rule_applies("par-merge-order", "qfc-runtime"));
    }

    #[test]
    fn lookup_finds_every_rule() {
        for r in RULES {
            assert!(rule_by_name(r.name).is_some());
        }
        assert!(rule_by_name("nope").is_none());
        assert!(rule_by_name("panic-surface").is_none(), "v1 rule retired");
    }

    #[test]
    fn semantic_rules_are_allowable() {
        for name in ["panic-reachability", "par-merge-order", "rng-lane-flow"] {
            let r = rule_by_name(name).expect("rule exists");
            assert!(r.allowable, "{name} must accept allow directives");
        }
    }
}
