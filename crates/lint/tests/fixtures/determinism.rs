//@ crate: qfc-core
use std::collections::HashMap; //~ ERROR determinism
use std::time::Instant; //~ ERROR determinism

pub fn stamp() {
    let _t0 = Instant::now(); //~ ERROR determinism
}

pub fn ambient_entropy() {
    let _rng = thread_rng(); //~ ERROR determinism
}

pub fn ordered_is_fine() {
    let _m: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
}
