//! Time-tagged photon detection events.
//!
//! All timestamps are integer **picoseconds**; at ±2⁶³ ps the range covers
//! ±106 days, comfortably beyond the paper's weeks-long stability run when
//! events are batched per-day.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

/// Identifier of a detector/TDC input channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(pub u16);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A single detection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeTag {
    /// Timestamp, ps.
    pub time_ps: i64,
    /// Channel the event arrived on.
    pub channel: ChannelId,
}

/// A time-ordered stream of timestamps for one channel.
///
/// # Examples
///
/// ```
/// use qfc_timetag::events::TagStream;
/// let s = TagStream::from_unsorted(vec![30, 10, 20]);
/// assert_eq!(s.as_slice(), &[10, 20, 30]);
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TagStream {
    times_ps: Vec<i64>,
}

impl TagStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stream from already-sorted timestamps.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the input is not sorted.
    pub fn from_sorted(times_ps: Vec<i64>) -> Self {
        debug_assert!(times_ps.windows(2).all(|w| w[0] <= w[1]), "unsorted input");
        Self { times_ps }
    }

    /// Creates a stream from arbitrary timestamps, sorting them.
    pub fn from_unsorted(mut times_ps: Vec<i64>) -> Self {
        times_ps.sort_unstable();
        Self { times_ps }
    }

    /// The sorted timestamps.
    pub fn as_slice(&self) -> &[i64] {
        &self.times_ps
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.times_ps.len()
    }

    /// `true` when the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.times_ps.is_empty()
    }

    /// Mean count rate in Hz over an observation window of `duration_s`.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s <= 0`.
    pub fn rate_hz(&self, duration_s: f64) -> f64 {
        assert!(duration_s > 0.0, "duration must be positive");
        cast::to_f64(self.times_ps.len()) / duration_s
    }

    /// Merges another stream into this one, keeping order.
    pub fn merge(&mut self, other: &TagStream) {
        self.times_ps.extend_from_slice(&other.times_ps);
        self.times_ps.sort_unstable();
    }
}

impl FromIterator<i64> for TagStream {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

/// Converts seconds to integer picoseconds (saturating).
pub fn s_to_ps(t_s: f64) -> i64 {
    cast::f64_to_i64((t_s * 1e12).round())
}

/// Converts picoseconds to seconds.
pub fn ps_to_s(t_ps: i64) -> f64 {
    cast::to_f64(t_ps) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_sorting_and_len() {
        let s = TagStream::from_unsorted(vec![5, 1, 3]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(TagStream::new().is_empty());
    }

    #[test]
    fn stream_merge_keeps_order() {
        let mut a = TagStream::from_unsorted(vec![1, 5]);
        let b = TagStream::from_unsorted(vec![2, 4]);
        a.merge(&b);
        assert_eq!(a.as_slice(), &[1, 2, 4, 5]);
    }

    #[test]
    fn rate_calculation() {
        let s = TagStream::from_unsorted(vec![0; 100]);
        assert!((s.rate_hz(2.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(s_to_ps(1e-9), 1000);
        assert!((ps_to_s(1500) - 1.5e-9).abs() < 1e-21);
        assert_eq!(s_to_ps(ps_to_s(123_456)), 123_456);
    }

    #[test]
    fn collect_from_iterator() {
        let s: TagStream = [3i64, 1, 2].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn channel_display() {
        assert_eq!(ChannelId(4).to_string(), "ch4");
    }
}
