//! Descriptive statistics and histograms used by the analysis pipelines.

use crate::cast;
use serde::{Deserialize, Serialize};

/// Arithmetic mean of a sample. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / cast::to_f64(xs.len())
}

/// Population variance (divides by `n`). Returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / cast::to_f64(xs.len())
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample standard deviation (divides by `n − 1`).
///
/// Returns `NaN` when fewer than two samples are given.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / cast::to_f64(xs.len() - 1)).sqrt()
}

/// Relative fluctuation: peak-to-peak range divided by the mean.
///
/// The paper's §II stability claim ("less than 5 % fluctuation over weeks")
/// is stated in exactly this measure, which is only meaningful for a
/// strictly positive mean (count rates). A zero, negative, or non-finite
/// mean returns `NaN` — previously it produced `±inf` or a *negative*
/// "fluctuation" that could spuriously satisfy an at-most bound.
pub fn relative_fluctuation(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    if !m.is_finite() || m <= 0.0 {
        return f64::NAN;
    }
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    (max - min) / m
}

/// Minimum of a sample (`NaN` if empty).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NAN, f64::min)
}

/// Maximum of a sample (`NaN` if empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NAN, f64::max)
}

/// Linear interpolation percentile (`q` in `[0, 1]`).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the slice is empty.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile q out of range");
    assert!(!xs.is_empty(), "percentile of empty sample");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q * cast::to_f64(v.len() - 1);
    let lo = cast::f64_to_usize(pos.floor());
    let hi = cast::f64_to_usize(pos.ceil());
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - cast::to_f64(lo);
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// A uniform-bin histogram over `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use qfc_mathkit::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.add(1.0);
/// h.add(9.5);
/// h.add(100.0); // out of range → overflow bucket
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(4), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Reassembles a histogram from externally accumulated bin counts —
    /// the merge step of sharded parallel filling, where each shard bins
    /// into a local `Vec<u64>` with the same arithmetic as
    /// [`add_weighted`](Self::add_weighted).
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `counts` is empty.
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>, underflow: u64, overflow: u64) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts,
            underflow,
            overflow,
        }
    }

    /// Adds every count of `other` (same `lo`/`hi`/bin layout) into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different ranges or bin counts.
    pub fn absorb(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram layouts differ"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of a single bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / cast::to_f64(self.counts.len())
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1);
    }

    /// Adds `w` identical samples.
    pub fn add_weighted(&mut self, x: f64, w: u64) {
        if x < self.lo {
            self.underflow += w;
        } else if x >= self.hi {
            self.overflow += w;
        } else {
            let idx = cast::f64_to_usize((x - self.lo) / self.bin_width());
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += w;
        }
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (cast::to_f64(i) + 0.5) * self.bin_width()
    }

    /// Samples below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index and count of the fullest bin (`None` when all bins are empty).
    pub fn peak(&self) -> Option<(usize, u64)> {
        let (i, &c) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)?;
        if c == 0 {
            None
        } else {
            Some((i, c))
        }
    }

    /// Full width at half maximum in x-units, by linear interpolation of the
    /// bin profile around the peak.
    ///
    /// Returns `None` when all bins are empty **or when either half-max
    /// crossing lies outside the histogram range** — the profile is then
    /// truncated and any width would be a confidently wrong lower bound
    /// (this feeds the §II Δν = 110 MHz linewidth comparison).
    /// [`fwhm_estimate`](Self::fwhm_estimate) exposes the clamped width
    /// for callers that can tolerate it.
    pub fn fwhm(&self) -> Option<f64> {
        let est = self.fwhm_estimate()?;
        if est.left_clamped || est.right_clamped {
            None
        } else {
            Some(est.width)
        }
    }

    /// Like [`fwhm`](Self::fwhm), but always returns the interpolated
    /// width when a peak exists, with explicit flags marking whether
    /// either crossing had to be clamped to the histogram edge (i.e. the
    /// true width is wider than the range can show).
    pub fn fwhm_estimate(&self) -> Option<FwhmEstimate> {
        let (peak_idx, peak) = self.peak()?;
        let half = cast::to_f64(peak) / 2.0;
        // Walk left.
        let mut left = self.bin_center(0);
        let mut left_clamped = true;
        for i in (0..peak_idx).rev() {
            if (cast::to_f64(self.counts[i])) < half {
                let c0 = cast::to_f64(self.counts[i]);
                let c1 = cast::to_f64(self.counts[i + 1]);
                let frac = if c1 > c0 { (half - c0) / (c1 - c0) } else { 0.5 };
                left = self.bin_center(i) + frac * self.bin_width();
                left_clamped = false;
                break;
            }
        }
        // Walk right.
        let mut right = self.bin_center(self.bins() - 1);
        let mut right_clamped = true;
        for i in peak_idx + 1..self.bins() {
            if (cast::to_f64(self.counts[i])) < half {
                let c0 = cast::to_f64(self.counts[i - 1]);
                let c1 = cast::to_f64(self.counts[i]);
                let frac = if c0 > c1 { (c0 - half) / (c0 - c1) } else { 0.5 };
                right = self.bin_center(i - 1) + frac * self.bin_width();
                right_clamped = false;
                break;
            }
        }
        Some(FwhmEstimate {
            width: right - left,
            left_clamped,
            right_clamped,
        })
    }
}

/// Result of [`Histogram::fwhm_estimate`]: an interpolated width plus
/// flags recording whether either half-max crossing fell outside the
/// histogram range and was clamped to the edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FwhmEstimate {
    /// Interpolated full width at half maximum (clamped to the range
    /// when a crossing is missing — see the flags).
    pub width: f64,
    /// The left crossing was not found inside the range.
    pub left_clamped: bool,
    /// The right crossing was not found inside the range.
    pub right_clamped: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-15);
        assert!((sample_std_dev(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn empty_sample_statistics() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(sample_std_dev(&[1.0]).is_nan());
        assert!(relative_fluctuation(&[]).is_nan());
    }

    #[test]
    fn relative_fluctuation_known() {
        let xs = [95.0, 100.0, 105.0];
        assert!((relative_fluctuation(&xs) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 0.25), 2.0);
        assert!((percentile(&xs, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.count(i), 1);
        }
        assert_eq!(h.total(), 10);
        assert_eq!(h.bin_width(), 1.0);
        assert_eq!(h.bin_center(0), 0.5);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(1.0); // boundary belongs to overflow ([lo, hi))
        h.add(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn histogram_peak_and_fwhm_triangle() {
        // Triangular profile peaking in the middle.
        let mut h = Histogram::new(0.0, 9.0, 9);
        let profile = [1u64, 2, 4, 8, 16, 8, 4, 2, 1];
        for (i, &c) in profile.iter().enumerate() {
            h.add_weighted(i as f64 + 0.5, c);
        }
        let (idx, peak) = h.peak().expect("nonempty");
        assert_eq!(idx, 4);
        assert_eq!(peak, 16);
        let fwhm = h.fwhm().expect("peak exists");
        assert!(fwhm > 1.0 && fwhm < 4.0, "fwhm {fwhm}");
    }

    #[test]
    fn relative_fluctuation_guards_nonpositive_mean() {
        // Regression: a negative mean used to yield a *negative*
        // fluctuation (range / mean < 0), which spuriously satisfies any
        // at-most bound; a zero mean yielded ±inf.
        assert!(relative_fluctuation(&[-1.0, -2.0, -3.0]).is_nan());
        assert!(relative_fluctuation(&[-1.0, 1.0]).is_nan());
        assert!(relative_fluctuation(&[0.0, 0.0]).is_nan());
        assert!(relative_fluctuation(&[f64::INFINITY, 1.0]).is_nan());
        // Positive-mean samples are unaffected.
        assert!((relative_fluctuation(&[95.0, 100.0, 105.0]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fwhm_returns_none_when_crossing_outside_range() {
        // Regression: a profile whose half-max crossing lies outside the
        // histogram used to silently clamp to the range edges and report
        // the full range as the width.
        let mut h = Histogram::new(0.0, 5.0, 5);
        // Monotone decreasing from an edge peak; right side never drops
        // below half (16/2 = 8), left side has no bins at all.
        for (i, &c) in [16u64, 12, 10, 9, 8].iter().enumerate() {
            h.add_weighted(i as f64 + 0.5, c);
        }
        assert_eq!(h.fwhm(), None);
        let est = h.fwhm_estimate().expect("peak exists");
        assert!(est.left_clamped && est.right_clamped);

        // One-sided truncation is also flagged.
        let mut h = Histogram::new(0.0, 5.0, 5);
        for (i, &c) in [16u64, 12, 7, 2, 1].iter().enumerate() {
            h.add_weighted(i as f64 + 0.5, c);
        }
        assert_eq!(h.fwhm(), None);
        let est = h.fwhm_estimate().expect("peak exists");
        assert!(est.left_clamped && !est.right_clamped);
    }

    #[test]
    fn fwhm_estimate_matches_fwhm_when_contained() {
        let mut h = Histogram::new(0.0, 9.0, 9);
        for (i, &c) in [1u64, 2, 4, 8, 16, 8, 4, 2, 1].iter().enumerate() {
            h.add_weighted(i as f64 + 0.5, c);
        }
        let est = h.fwhm_estimate().expect("peak exists");
        assert!(!est.left_clamped && !est.right_clamped);
        assert_eq!(h.fwhm(), Some(est.width));
    }

    #[test]
    fn histogram_empty_peak() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.peak().is_none());
        assert!(h.fwhm().is_none());
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn histogram_invalid_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
