//! Pump configurations — the paper's central idea: *the same ring,
//! operated with different pump schemes, emits different families of
//! quantum states*.

use serde::{Deserialize, Serialize};

use crate::units::{Frequency, Power};

/// The pump scheme applied to the quantum frequency comb.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PumpConfig {
    /// §II — self-locked intracavity CW pumping: the ring sits inside the
    /// pump laser's own cavity, so the pump passively tracks the
    /// resonance. No active stabilization; runs for weeks.
    SelfLockedCw {
        /// On-chip pump power.
        power: Power,
    },
    /// External CW laser tuned to a resonance; needs active locking to
    /// stay on resonance (used as the §II stability baseline).
    ExternalCw {
        /// On-chip pump power.
        power: Power,
        /// Whether an active feedback lock is engaged.
        actively_stabilized: bool,
    },
    /// §III — bichromatic orthogonal pumping: one CW tone on a TE
    /// resonance and one on a TM resonance, driving type-II SFWM.
    BichromaticOrthogonal {
        /// On-chip power of the TE pump tone.
        power_te: Power,
        /// On-chip power of the TM pump tone.
        power_tm: Power,
    },
    /// §IV–V — phase-coherent double pulses from a stabilized unbalanced
    /// Michelson interferometer, spectrally filtered to one resonance.
    DoublePulse {
        /// On-chip peak power of each pulse.
        peak_power: Power,
        /// Time-bin separation between the two pulses, s.
        bin_separation: f64,
        /// Pulse repetition rate, Hz (rate of double-pulse frames).
        repetition_rate: f64,
        /// Relative phase written between the early and late pulse, rad.
        relative_phase: f64,
    },
}

impl PumpConfig {
    /// Paper §II configuration: 15 mW self-locked CW.
    pub fn paper_self_locked() -> Self {
        Self::SelfLockedCw {
            power: Power::from_mw(15.0),
        }
    }

    /// Paper §III configuration: 2 mW total bichromatic pumping
    /// (1 mW per polarization).
    pub fn paper_bichromatic() -> Self {
        Self::BichromaticOrthogonal {
            power_te: Power::from_mw(1.0),
            power_tm: Power::from_mw(1.0),
        }
    }

    /// Paper §IV–V configuration: double pulses separated by a few ns at
    /// a 10-MHz frame rate. The peak power is calibrated so the mean
    /// pair number per frame reaches the μ ≈ 0.02 operating point of the
    /// published time-bin experiments (the full pulsed cavity-buildup
    /// dynamics is outside the analytic model; see EXPERIMENTS.md).
    pub fn paper_double_pulse() -> Self {
        Self::DoublePulse {
            peak_power: Power::from_w(5.7),
            bin_separation: 4.0e-9,
            repetition_rate: 10.0e6,
            relative_phase: 0.0,
        }
    }

    /// Total average on-chip pump power of the configuration.
    pub fn total_power(&self) -> Power {
        match *self {
            Self::SelfLockedCw { power } | Self::ExternalCw { power, .. } => power,
            Self::BichromaticOrthogonal { power_te, power_tm } => power_te + power_tm,
            Self::DoublePulse {
                peak_power,
                repetition_rate,
                ..
            } => {
                // Two resonance-limited pulses per frame; duty cycle is
                // (2 × cavity lifetime) × repetition rate. The lifetime
                // is a property of the ring, so approximate with 1.5 ns.
                let duty = (2.0 * 1.5e-9 * repetition_rate).min(1.0);
                peak_power * duty
            }
        }
    }

    /// `true` for the passively stable §II scheme.
    pub fn is_passively_stable(&self) -> bool {
        matches!(self, Self::SelfLockedCw { .. })
    }

    /// `true` when the scheme drives type-II (cross-polarized) SFWM.
    pub fn drives_type2(&self) -> bool {
        matches!(self, Self::BichromaticOrthogonal { .. })
    }

    /// `true` when the scheme prepares time-bin superpositions.
    pub fn prepares_time_bins(&self) -> bool {
        matches!(self, Self::DoublePulse { .. })
    }
}

/// Slow drift + noise model for the pump-resonance detuning, used by the
/// §II stability experiment: thermal drift pulls an external laser off
/// resonance, while the self-locked scheme tracks it passively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    /// RMS slow drift of the resonance per day, Hz/√day (random walk).
    pub drift_hz_per_sqrt_day: f64,
    /// RMS fast jitter, Hz.
    pub jitter_hz: f64,
}

impl DriftModel {
    /// Laboratory-grade environment: tens of MHz of thermal drift per
    /// day — fatal for an unlocked external laser on a 110-MHz line,
    /// harmless for the self-locked scheme.
    pub fn laboratory() -> Self {
        Self {
            drift_hz_per_sqrt_day: 40e6,
            jitter_hz: 2e6,
        }
    }
}

/// Residual pump-resonance detuning under a pump scheme after `t_days`
/// of a random-walk excursion `walk` (in units of the daily RMS drift).
///
/// Self-locked: the lock tracks all slow drift, leaving only jitter.
/// Actively stabilized external: drift suppressed 100×.
/// Free-running external: full excursion.
pub fn residual_detuning(config: &PumpConfig, model: &DriftModel, walk_sigma_units: f64, t_days: f64) -> Frequency {
    let slow = model.drift_hz_per_sqrt_day * t_days.max(0.0).sqrt() * walk_sigma_units;
    let hz = match config {
        PumpConfig::SelfLockedCw { .. } => 0.0,
        PumpConfig::ExternalCw {
            actively_stabilized: true,
            ..
        } => slow / 100.0,
        PumpConfig::ExternalCw {
            actively_stabilized: false,
            ..
        } => slow,
        // Pulsed/bichromatic schemes in the paper are actively matched to
        // the resonance by construction of the experiment.
        _ => slow / 100.0,
    };
    Frequency::from_hz(hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_expected_powers() {
        assert!((PumpConfig::paper_self_locked().total_power().mw() - 15.0).abs() < 1e-9);
        assert!((PumpConfig::paper_bichromatic().total_power().mw() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn classification_flags() {
        assert!(PumpConfig::paper_self_locked().is_passively_stable());
        assert!(!PumpConfig::paper_bichromatic().is_passively_stable());
        assert!(PumpConfig::paper_bichromatic().drives_type2());
        assert!(PumpConfig::paper_double_pulse().prepares_time_bins());
        assert!(!PumpConfig::paper_double_pulse().drives_type2());
    }

    #[test]
    fn double_pulse_average_power_below_peak() {
        let cfg = PumpConfig::paper_double_pulse();
        if let PumpConfig::DoublePulse { peak_power, .. } = cfg {
            assert!(cfg.total_power().w() < peak_power.w());
        } else {
            unreachable!();
        }
    }

    #[test]
    fn self_locked_kills_drift() {
        let model = DriftModel::laboratory();
        let locked = residual_detuning(&PumpConfig::paper_self_locked(), &model, 1.0, 21.0);
        let free = residual_detuning(
            &PumpConfig::ExternalCw {
                power: Power::from_mw(15.0),
                actively_stabilized: false,
            },
            &model,
            1.0,
            21.0,
        );
        assert_eq!(locked.hz(), 0.0);
        // Free-running drift after 3 weeks dwarfs the 110-MHz linewidth.
        assert!(free.hz() > 110e6, "free drift {free}");
    }

    #[test]
    fn active_stabilization_suppresses_but_not_eliminates() {
        let model = DriftModel::laboratory();
        let stab = residual_detuning(
            &PumpConfig::ExternalCw {
                power: Power::from_mw(15.0),
                actively_stabilized: true,
            },
            &model,
            1.0,
            21.0,
        );
        assert!(stab.hz() > 0.0 && stab.hz() < 10e6);
    }
}
