//! Bootstrap error bars for reconstructed quantities.
//!
//! Tomographic fidelities are nonlinear functions of Poissonian counts;
//! the standard way to attach an uncertainty is the parametric
//! bootstrap: resample each setting's counts from a multinomial with the
//! observed frequencies, re-run the reconstructor, and take the spread.

use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_mathkit::sampling::DiscreteSampler;
use qfc_mathkit::stats::{mean, sample_std_dev};
use qfc_quantum::density::DensityMatrix;

use crate::counts::TomographyData;

/// A bootstrap estimate: central value and 1σ spread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapEstimate {
    /// Mean over the bootstrap replicas.
    pub value: f64,
    /// Sample standard deviation over the replicas.
    pub sigma: f64,
    /// Number of replicas used.
    pub replicas: usize,
}

/// Resamples a tomography data set once (parametric bootstrap: same
/// per-setting totals, multinomial frequencies).
pub fn resample<R: Rng + ?Sized>(rng: &mut R, data: &TomographyData) -> TomographyData {
    ResampleTables::new(data).resample(rng, data)
}

/// Precomputed per-setting sampling tables for repeated [`resample`]
/// calls over the same data set.
///
/// Every bootstrap replica resamples from identical per-setting weights;
/// building the [`DiscreteSampler`] threshold ladders once and sharing
/// them across replicas removes the per-replica weight rebuild without
/// changing a single drawn outcome (sampler construction is RNG-free and
/// the draws are bit-identical to [`qfc_mathkit::rng::discrete`]).
#[derive(Debug, Clone)]
pub struct ResampleTables {
    /// `Some(sampler)` for settings with events; `None` mirrors the
    /// zero-total guard of the direct resampling loop.
    samplers: Vec<Option<DiscreteSampler>>,
    /// Per-setting event totals (resampled totals are preserved).
    totals: Vec<u64>,
}

impl ResampleTables {
    /// Builds the per-setting tables for `data`.
    pub fn new(data: &TomographyData) -> Self {
        let mut samplers = Vec::with_capacity(data.counts.len());
        let mut totals = Vec::with_capacity(data.counts.len());
        for (s, setting_counts) in data.counts.iter().enumerate() {
            let total = data.setting_total(s);
            let weights: Vec<f64> =
                setting_counts.iter().map(|&c| cast::to_f64(c)).collect();
            if total > 0 && weights.iter().sum::<f64>() > 0.0 {
                samplers.push(Some(DiscreteSampler::new(&weights)));
            } else {
                samplers.push(None);
            }
            totals.push(total);
        }
        Self { samplers, totals }
    }

    /// One parametric-bootstrap resample of `data` through the cached
    /// tables. `data` must be the data set the tables were built from.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different setting count than the build
    /// data.
    pub fn resample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        data: &TomographyData,
    ) -> TomographyData {
        assert_eq!(
            self.samplers.len(),
            data.counts.len(),
            "resample tables do not match the data's settings"
        );
        let mut counts = Vec::with_capacity(data.counts.len());
        for (s, setting_counts) in data.counts.iter().enumerate() {
            let mut new_counts = vec![0u64; setting_counts.len()];
            if let Some(sampler) = &self.samplers[s] {
                // qfc-lint: hot
                for _ in 0..self.totals[s] {
                    new_counts[sampler.sample(rng)] += 1;
                }
            }
            counts.push(new_counts);
        }
        TomographyData {
            settings: data.settings.clone(),
            counts,
        }
    }
}

/// Bootstraps a scalar functional of the reconstructed state (e.g. a
/// fidelity): re-reconstructs `replicas` resampled data sets and reports
/// mean ± σ of `functional`.
///
/// Replicas run in parallel, each resampling from its own split-seed
/// stream (`split_seed(seed, replica_index)`); the replica values are
/// collected in index order, so the estimate is bitwise-identical at any
/// thread count.
///
/// # Panics
///
/// Panics if `replicas < 2`.
pub fn bootstrap_functional<F, G>(
    seed: u64,
    data: &TomographyData,
    replicas: usize,
    reconstruct: F,
    functional: G,
) -> BootstrapEstimate
where
    F: Fn(&TomographyData) -> DensityMatrix + Sync,
    G: Fn(&DensityMatrix) -> f64 + Sync,
{
    use qfc_mathkit::rng::{rng_from_seed, split_seed};

    assert!(replicas >= 2, "need at least two bootstrap replicas");
    qfc_obs::counter_add("bootstrap_replicas", cast::usize_to_u64(replicas));
    // One table build shared by every replica (construction is RNG-free,
    // so sharing cannot perturb any replica's stream).
    let tables = ResampleTables::new(data);
    let indices: Vec<u64> = (0..cast::usize_to_u64(replicas)).collect();
    let values = qfc_runtime::par_map(&indices, |&i| {
        let mut rng = rng_from_seed(split_seed(seed, i));
        let sample = tables.resample(&mut rng, data);
        functional(&reconstruct(&sample))
    });
    BootstrapEstimate {
        value: mean(&values),
        sigma: sample_std_dev(&values),
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::simulate_counts;
    use crate::reconstruct::linear_reconstruction;
    use crate::settings::all_settings;
    use qfc_mathkit::rng::rng_from_seed;
    use qfc_quantum::bell::{bell_phi_plus, werner_state};
    use qfc_quantum::fidelity::fidelity_with_pure;

    #[test]
    fn resample_preserves_totals() {
        let mut rng = rng_from_seed(301);
        let truth = werner_state(0.8, 0.0);
        let data = simulate_counts(&mut rng, &truth, &all_settings(2), 500);
        let re = resample(&mut rng, &data);
        for s in 0..data.settings.len() {
            assert_eq!(re.setting_total(s), data.setting_total(s));
        }
    }

    #[test]
    fn bootstrap_fidelity_has_sane_error_bar() {
        let mut rng = rng_from_seed(302);
        let truth = werner_state(0.83, 0.0);
        let data = simulate_counts(&mut rng, &truth, &all_settings(2), 400);
        let target = bell_phi_plus();
        let est = bootstrap_functional(
            302,
            &data,
            24,
            linear_reconstruction,
            |rho| fidelity_with_pure(rho, &target),
        );
        // Central value near the analytic Werner fidelity (3V+1)/4 = 0.8725.
        assert!((est.value - 0.8725).abs() < 0.05, "F = {}", est.value);
        // Error bar neither zero nor absurd at 400 shots/setting.
        assert!(est.sigma > 1e-4 && est.sigma < 0.05, "σ = {}", est.sigma);
        assert_eq!(est.replicas, 24);
    }

    #[test]
    fn more_counts_shrink_the_error_bar() {
        let mut rng = rng_from_seed(303);
        let truth = werner_state(0.8, 0.0);
        let target = bell_phi_plus();
        let small = simulate_counts(&mut rng, &truth, &all_settings(2), 60);
        let large = simulate_counts(&mut rng, &truth, &all_settings(2), 6000);
        let est_small = bootstrap_functional(31, &small, 16, linear_reconstruction, |r| {
            fidelity_with_pure(r, &target)
        });
        let est_large = bootstrap_functional(32, &large, 16, linear_reconstruction, |r| {
            fidelity_with_pure(r, &target)
        });
        assert!(
            est_large.sigma < est_small.sigma,
            "large {} vs small {}",
            est_large.sigma,
            est_small.sigma
        );
    }

    #[test]
    #[should_panic(expected = "at least two bootstrap replicas")]
    fn too_few_replicas_rejected() {
        let mut rng = rng_from_seed(304);
        let truth = werner_state(0.8, 0.0);
        let data = simulate_counts(&mut rng, &truth, &all_settings(2), 100);
        let _ = bootstrap_functional(304, &data, 1, linear_reconstruction, |_| 0.0);
    }

    #[test]
    fn table_resample_matches_direct_discrete() {
        use qfc_mathkit::rng::discrete;
        let mut rng = rng_from_seed(306);
        let truth = werner_state(0.7, 0.1);
        let mut data = simulate_counts(&mut rng, &truth, &all_settings(2), 150);
        // Append an empty setting to exercise the zero-total guard.
        data.settings.push(data.settings[0].clone());
        data.counts.push(vec![0u64; 4]);
        let tables = ResampleTables::new(&data);
        let mut rng_a = rng_from_seed(307);
        let mut rng_b = rng_from_seed(307);
        let via_tables = tables.resample(&mut rng_a, &data);
        // Reference: the direct discrete() formulation the tables replaced.
        let mut counts = Vec::new();
        for (s, setting_counts) in data.counts.iter().enumerate() {
            let total = data.setting_total(s);
            let weights: Vec<f64> = setting_counts
                .iter()
                .map(|&c| cast::to_f64(c))
                .collect();
            let mut new_counts = vec![0u64; setting_counts.len()];
            if total > 0 && weights.iter().sum::<f64>() > 0.0 {
                for _ in 0..total {
                    new_counts[discrete(&mut rng_b, &weights)] += 1;
                }
            }
            counts.push(new_counts);
        }
        assert_eq!(via_tables.counts, counts);
        assert_eq!(via_tables.counts.last().map(Vec::as_slice), Some(&[0u64; 4][..]));
    }

    #[test]
    fn bootstrap_identical_across_thread_counts() {
        let mut rng = rng_from_seed(305);
        let truth = werner_state(0.8, 0.0);
        let target = bell_phi_plus();
        let data = simulate_counts(&mut rng, &truth, &all_settings(2), 200);
        let run = || {
            bootstrap_functional(305, &data, 12, linear_reconstruction, |r| {
                fidelity_with_pure(r, &target)
            })
        };
        let serial = qfc_runtime::with_threads(1, run);
        let parallel = qfc_runtime::with_threads(4, run);
        assert_eq!(serial.value.to_bits(), parallel.value.to_bits());
        assert_eq!(serial.sigma.to_bits(), parallel.sigma.to_bits());
    }
}
