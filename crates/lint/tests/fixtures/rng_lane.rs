//@ crate: qfc-core
pub fn raw_seed_bypasses_lanes() {
    let _rng = StdRng::seed_from_u64(42); //~ ERROR rng-lane
}

pub fn raw_state_bypasses_lanes() {
    let _rng = StdRng::from_seed([0u8; 32]); //~ ERROR rng-lane
}

pub fn lanes_are_fine(seed: u64) {
    let _rng = rng_from_seed(split_seed(seed, 3));
}
