//! The two workspace-level rules (`forbid-unsafe`, `ci-roster`) need a
//! filesystem to fire against; these tests synthesize a miniature
//! workspace under `CARGO_TARGET_TMPDIR`, prove both rules fire, then
//! repair it and prove the run goes clean.

use std::fs;
use std::path::{Path, PathBuf};

fn mini_workspace(tag: &str) -> PathBuf {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("qfc_lint_mini_{tag}"));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(base.join("crates/alpha/src")).expect("mkdir");
    fs::write(
        base.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/alpha\"]\n",
    )
    .expect("root manifest");
    fs::write(
        base.join("crates/alpha/Cargo.toml"),
        "[package]\nname = \"qfc-alpha\"\nversion = \"0.1.0\"\n",
    )
    .expect("crate manifest");
    base
}

fn rules_fired(root: &Path) -> Vec<String> {
    let report = qfc_lint::run(root).expect("lint run");
    let mut rules: Vec<String> = report.findings.iter().map(|f| f.rule.to_string()).collect();
    rules.dedup();
    rules
}

#[test]
fn forbid_unsafe_and_ci_roster_fire_then_clear() {
    let root = mini_workspace("fire");
    // No #![forbid(unsafe_code)], no scripts/ci.sh: both rules must fire.
    fs::write(root.join("crates/alpha/src/lib.rs"), "pub fn f() {}\n").expect("lib.rs");
    let fired = rules_fired(&root);
    assert!(
        fired.contains(&"forbid-unsafe".to_string()),
        "forbid-unsafe did not fire: {fired:?}"
    );
    assert!(
        fired.contains(&"ci-roster".to_string()),
        "ci-roster did not fire: {fired:?}"
    );

    // Repair both: the run must go fully clean.
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .expect("lib.rs");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\nfor d in crates/*/; do :; done\ncmp target/CALLGRAPH.json target/CALLGRAPH.2.json\n",
    )
    .expect("ci.sh");
    let report = qfc_lint::run(&root).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "repaired mini workspace still has findings: {:?}",
        report.findings
    );
}

#[test]
fn baseline_must_carry_every_gated_workload() {
    let root = mini_workspace("baseline");
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .expect("lib.rs");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\n\
         for d in crates/*/; do :; done\n\
         qfc-bench --smoke --check-baseline BENCH_baseline.json --out t.json\n\
         cmp target/CALLGRAPH.json target/CALLGRAPH.2.json\n",
    )
    .expect("ci.sh");

    // Baseline file missing entirely: ci-roster must fire.
    let fired = rules_fired(&root);
    assert!(
        fired.contains(&"ci-roster".to_string()),
        "ci-roster did not flag the missing bench baseline: {fired:?}"
    );

    // Baseline present but dropping gated workloads: still a failure,
    // and both the sweep and the campaign workload must be named.
    fs::write(
        root.join("BENCH_baseline.json"),
        "{\"workloads\": [{\"name\": \"ring-dispersion-sweep\"}]}\n",
    )
    .expect("baseline");
    let report = qfc_lint::run(&root).expect("lint run");
    let msgs: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "ci-roster")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        msgs.iter().any(|m| m.contains("opo-threshold-sweep")),
        "ci-roster did not flag the dropped sweep workload: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("campaign-checkpoint")),
        "ci-roster did not flag the dropped campaign workload: {msgs:?}"
    );

    // Baseline carrying every gated workload: fully clean.
    fs::write(
        root.join("BENCH_baseline.json"),
        "{\"workloads\": [{\"name\": \"ring-dispersion-sweep\"},\
          {\"name\": \"opo-threshold-sweep\"},\
          {\"name\": \"campaign-checkpoint\"},\
          {\"name\": \"streaming-tomography\"}]}\n",
    )
    .expect("baseline");
    let report = qfc_lint::run(&root).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "complete baseline still has findings: {:?}",
        report.findings
    );
}

#[test]
fn campaign_crate_cannot_be_carved_out_of_the_clippy_roster() {
    let root = mini_workspace("campaign");
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .expect("lib.rs");
    // Add a campaign crate to the mini workspace so the pinned-roster
    // requirement applies.
    fs::create_dir_all(root.join("crates/campaign/src")).expect("mkdir");
    fs::write(
        root.join("crates/campaign/Cargo.toml"),
        "[package]\nname = \"qfc-campaign\"\nversion = \"0.1.0\"\n",
    )
    .expect("crate manifest");
    fs::write(
        root.join("crates/campaign/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn g() {}\n",
    )
    .expect("lib.rs");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");

    // The roster derives dynamically but carves qfc-campaign out with the
    // same exclusion idiom ci.sh uses for qfc-bench: ci-roster must fire.
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\n\
         for d in crates/*/; do\n\
           if [ \"$name\" != \"qfc-campaign\" ]; then :; fi\n\
         done\n",
    )
    .expect("ci.sh");
    let report = qfc_lint::run(&root).expect("lint run");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "ci-roster" && f.message.contains("qfc-campaign")),
        "ci-roster did not flag the excluded campaign crate: {:?}",
        report.findings
    );

    // Without the exclusion the dynamic roster covers it: fully clean.
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\nfor d in crates/*/; do :; done\ncmp target/CALLGRAPH.json target/CALLGRAPH.2.json\n",
    )
    .expect("ci.sh");
    let report = qfc_lint::run(&root).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "dynamic roster with campaign crate still has findings: {:?}",
        report.findings
    );
}

#[test]
fn hand_listed_roster_must_name_every_crate() {
    let root = mini_workspace("roster");
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .expect("lib.rs");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");
    // Invokes qfc-lint, hand-lists a roster, but omits qfc-alpha.
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\ncargo clippy -p qfc-other\n",
    )
    .expect("ci.sh");
    let fired = rules_fired(&root);
    assert!(
        fired.contains(&"ci-roster".to_string()),
        "ci-roster did not flag the incomplete hand-listed roster: {fired:?}"
    );
}

#[test]
fn drift_check_must_be_wired() {
    let root = mini_workspace("drift");
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .expect("lib.rs");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");
    // Invokes qfc-lint and derives the roster, but never compares a
    // regenerated CALLGRAPH.json: the determinism contract is unenforced.
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\nfor d in crates/*/; do :; done\n\
         # cmp CALLGRAPH.json mentioned in a comment does not count\n",
    )
    .expect("ci.sh");
    let report = qfc_lint::run(&root).expect("lint run");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "ci-roster" && f.message.contains("CALLGRAPH")),
        "ci-roster did not flag the missing drift check: {:?}",
        report.findings
    );
}

#[test]
fn cross_crate_panic_chain_is_traced_and_excusable_at_the_entry() {
    let root = mini_workspace("chain");
    fs::create_dir_all(root.join("crates/beta/src")).expect("mkdir");
    fs::write(
        root.join("crates/beta/Cargo.toml"),
        "[package]\nname = \"qfc-beta\"\nversion = \"0.1.0\"\n",
    )
    .expect("crate manifest");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\nfor d in crates/*/; do :; done\ncmp target/CALLGRAPH.json target/CALLGRAPH.2.json\n",
    )
    .expect("ci.sh");
    // The only public entry lives in alpha; the panic sits three private
    // hops deep in beta. Only the workspace call graph can connect them.
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn entry() { qfc_beta::stage_one() }\n",
    )
    .expect("alpha lib.rs");
    fs::write(
        root.join("crates/beta/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub(crate) fn stage_one() { stage_two() }\nfn stage_two() { stage_three() }\nfn stage_three() { panic!(\"deep\") }\n",
    )
    .expect("beta lib.rs");
    let report = qfc_lint::run(&root).expect("lint run");
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "panic-reachability")
        .expect("cross-crate panic chain was not flagged");
    assert_eq!(hit.file, "crates/beta/src/lib.rs");
    assert_eq!(hit.line, 4);
    assert!(
        hit.message.contains("entry") && hit.message.contains("stage_two"),
        "path missing from message: {}",
        hit.message
    );

    // A fn-level allow at the public entry excuses the whole chain and
    // registers as used under the exact remove-one re-audit.
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\n// qfc-lint: allow(panic-reachability) — mini-workspace fixture: the chain panics by contract\npub fn entry() { qfc_beta::stage_one() }\n",
    )
    .expect("alpha lib.rs");
    let report = qfc_lint::run(&root).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "fn-level allow did not excuse the chain: {:?}",
        report.findings
    );
    assert_eq!((report.allows_total, report.allows_used), (1, 1));
}
