//! `qfc-bench` — serial-vs-parallel wall-time and allocation harness for
//! the shot-based Monte-Carlo workloads.
//!
//! ```text
//! qfc-bench [--threads N] [--smoke] [--out PATH]
//!           [--check-baseline PATH] [--max-slowdown F]
//!           [--scaling N1,N2,...]
//! ```
//!
//! Every workload runs twice through the same code path: once pinned to a
//! single worker (`with_threads(1)`) and once on the parallel thread
//! count — `--threads` when given, otherwise 4 clamped to the host's
//! `available_parallelism` (timing more workers than cores only measures
//! oversubscription noise). The serialized results must match byte for
//! byte — the deterministic sharding makes thread count an implementation
//! detail — and the harness aborts if they don't. Timings land in
//! `BENCH_parallel.json`; the observability trace of the whole run lands
//! next to it as `<out stem>.trace.json`.
//!
//! The binary installs a counting `#[global_allocator]` and records, for
//! the *serial* leg of each workload, the allocation count, total bytes
//! allocated, and peak live bytes. The serial leg is single-threaded and
//! deterministic, so these figures are stable across runs on a given
//! target and make allocation regressions in the hot kernels diffable.
//!
//! `--check-baseline PATH` diffs the fresh run against a committed
//! baseline report (same JSON schema) and fails when any workload lost
//! its serial/parallel byte-identity, allocates more than 10 % (+64
//! calls of slack) beyond the baseline's serial-leg count, or runs
//! slower than `--max-slowdown` (default 4.0, generous because absolute
//! wall time is machine-dependent while allocation counts are not)
//! times the baseline's serial wall time.
//!
//! `--smoke` shrinks every workload to seconds-scale for CI; speedups are
//! not meaningful there (the parallel grain is too small), only the
//! determinism cross-check and the allocation columns are.
//!
//! On a single-CPU host (or `--threads 1`) the parallel leg cannot
//! demonstrate scaling at all: the report carries
//! `"parallel_unvalidated": true`, the per-workload speedup print is
//! suppressed (the JSON keeps the raw numbers), and a warning is emitted
//! — ci.sh surfaces it.
//!
//! The two spectral-sweep workloads (`ring-dispersion-sweep`,
//! `opo-threshold-sweep`) additionally time the SoA batch kernels of
//! `qfc_photonics::sweep` against their point-by-point scalar oracles —
//! interleaved best-of-3, both legs pinned to one worker so the ratio
//! isolates the kernel — and record the pair in the
//! `scalar_best_ms`/`batch_best_ms`/`batch_speedup` columns (null for
//! the Monte-Carlo workloads, which have no scalar/batch split). The
//! two qudit MLE workloads (`qudit-mle-16`, `qudit-mle-64`) reuse the
//! same columns for their dense-representation classic leg vs the
//! rank-1 + packed-GEMM fast path of the same reconstruction driver.
//!
//! `--scaling N1,N2,...` re-times every workload's parallel leg at each
//! listed thread count and records the curve in the per-workload
//! `scaling` column (ROADMAP "real thread-scaling validation"). On an
//! unvalidated host (single CPU or `--threads 1`) the profile is
//! skipped with a warning — the curve would be scheduling noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use qfc::campaign::{run_campaign, CampaignOptions, TimeBinCampaign};
use qfc::core::heralded::{run_heralded_experiment, HeraldedConfig};
use qfc::core::multiphoton::{run_four_photon_tomography, MultiPhotonConfig};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_event_mc, TimeBinConfig};
use qfc::faults::FaultSchedule;
use qfc::mathkit::rng::rng_from_seed;
use qfc::photonics::opo;
use qfc::photonics::ring::Microring;
use qfc::photonics::sweep::{self, BatchBuffers, SweepGrid};
use qfc::photonics::units::{Frequency, Power};
use qfc::photonics::waveguide::Polarization;
use qfc::quantum::bell::{bell_phi_plus, werner_state};
use qfc::quantum::fidelity::fidelity_with_pure;
use qfc::quantum::multiphoton::noisy_four_photon;
use qfc::timetag::coincidence::cross_correlation_histogram;
use qfc::timetag::hbt::poissonian_stream;
use qfc::tomography::bootstrap::bootstrap_functional;
use qfc::tomography::counts::simulate_counts_seeded;
use qfc::tomography::rank1::{
    deterministic_bases, exact_counts_repr, synthetic_low_rank_state, try_mle_repr,
    ProjectorReprSet,
};
use qfc::tomography::reconstruct::{
    mle_reconstruction, try_mle_reconstruction, MleAcceleration, MleOptions,
};
use qfc::tomography::settings::all_settings;
use qfc::tomography::stream::try_stream_counts_seeded;

/// Global-allocator shim that counts every allocation. Kept deliberately
/// branch-light: four relaxed atomics per alloc, one per dealloc.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn record_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_alloc(new_size);
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation counters at one instant; differences between two snapshots
/// give the traffic of the code in between.
#[derive(Clone, Copy)]
struct AllocSnapshot {
    calls: u64,
    bytes: u64,
    live: u64,
}

fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live: LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Re-arms the peak tracker so the next reading reflects only the region
/// after this call.
fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[derive(Debug, Serialize, Deserialize)]
struct WorkloadRow {
    name: String,
    /// Workload-specific event count (frames, shots×settings, replicas×
    /// counts, or tags) — the numerator of `shots_per_sec`.
    shots: u64,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    /// `shots / serial_ms`, in events per second of single-thread time.
    shots_per_sec: f64,
    /// Allocator calls during the serial leg (deterministic per target).
    allocs_serial: u64,
    /// Total bytes requested during the serial leg.
    alloc_bytes_serial: u64,
    /// Peak live bytes above the pre-leg baseline during the serial leg.
    peak_bytes_serial: u64,
    identical: bool,
    /// Best-of-3 wall time of the point-by-point scalar oracle (sweep
    /// workloads only; null for the Monte-Carlo workloads).
    scalar_best_ms: Option<f64>,
    /// Best-of-3 wall time of the SoA batch kernel, interleaved with the
    /// scalar reps (sweep workloads only).
    batch_best_ms: Option<f64>,
    /// `scalar_best_ms / batch_best_ms` — the single-thread speedup of
    /// the batch layer over the scalar loop.
    batch_speedup: Option<f64>,
    /// Thread-scaling curve from `--scaling N1,N2,...` (null when the
    /// profile was not requested or the host cannot validate scaling).
    scaling: Option<Vec<ScalingPoint>>,
}

/// One point of a `--scaling` thread-scaling curve.
#[derive(Debug, Serialize, Deserialize)]
struct ScalingPoint {
    /// Worker count this point ran with.
    threads: usize,
    /// Wall time of the workload at that worker count.
    wall_ms: f64,
    /// `serial_ms / wall_ms` against the same run's serial leg.
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    /// Thread count asked for on the command line (or the default 4).
    requested_threads: usize,
    /// Thread count the parallel leg actually ran with. Equals
    /// `requested_threads` unless the default was clamped to the host.
    effective_threads: usize,
    /// Hardware parallelism of the machine the bench ran on. Speedups
    /// are bounded by `min(effective_threads, host_cpus)`; on a
    /// single-core host the interesting column is `identical`, and
    /// near-1.0 "speedups" show the sharding overhead is negligible.
    host_cpus: usize,
    /// `true` when the parallel leg ran more workers than the host has
    /// CPUs — wall-clock "speedups" in that regime are scheduling noise,
    /// only the determinism cross-check is meaningful.
    oversubscribed: bool,
    /// `true` when the parallel leg could not demonstrate scaling at all
    /// (single-CPU host or `--threads 1`): its speedup columns are
    /// meaningless and the per-workload speedup print is suppressed.
    parallel_unvalidated: bool,
    smoke: bool,
    workloads: Vec<WorkloadRow>,
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64() * 1e3, out)
}

/// Runs `f` serially and on `threads` workers, checks the serialized
/// outputs are byte-identical, and reports wall times plus the serial
/// leg's allocation traffic.
///
/// Workload closures deliberately `expect`/`assert!` rather than return
/// [`qfc::faults::QfcResult`]: they run with no faults injected, so any
/// failure is a harness invariant violation (plain-old-data report
/// structs whose serde serialization cannot fail, or a fault-free
/// campaign erroring), and a loud panic that fails the bench run is the
/// correct behavior. Fallible I/O outside the timed legs goes through
/// explicit error paths instead.
fn bench_workload(
    name: &str,
    threads: usize,
    shots: u64,
    unvalidated: bool,
    scaling: &[usize],
    f: impl Fn() -> String + Sync,
) -> WorkloadRow {
    reset_peak();
    let before = alloc_snapshot();
    let (serial_ms, serial_out) = time_ms(|| qfc::runtime::with_threads(1, &f));
    let after = alloc_snapshot();
    let peak = PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(before.live);
    let (parallel_ms, parallel_out) = time_ms(|| qfc::runtime::with_threads(threads, &f));
    let mut identical = serial_out == parallel_out;
    // Thread-scaling curve: one extra timed leg per requested worker
    // count, each cross-checked against the serial bytes (determinism
    // must hold at *every* point on the curve, not just the two legs).
    let scaling_points = if scaling.is_empty() {
        None
    } else {
        let points = scaling
            .iter()
            .map(|&n| {
                let (wall_ms, out) = time_ms(|| qfc::runtime::with_threads(n, &f));
                identical &= out == serial_out;
                ScalingPoint {
                    threads: n,
                    wall_ms,
                    speedup: serial_ms / wall_ms,
                }
            })
            .collect::<Vec<_>>();
        Some(points)
    };
    let row = WorkloadRow {
        name: name.to_owned(),
        shots,
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        shots_per_sec: shots as f64 / (serial_ms * 1e-3),
        allocs_serial: after.calls - before.calls,
        alloc_bytes_serial: after.bytes - before.bytes,
        peak_bytes_serial: peak,
        identical,
        scalar_best_ms: None,
        batch_best_ms: None,
        batch_speedup: None,
        scaling: scaling_points,
    };
    // A single-CPU host (or --threads 1) cannot validate scaling; quoting
    // a speedup factor there is noise dressed up as signal.
    let speedup_col = if unvalidated {
        "speedup   n/a ".to_owned()
    } else {
        format!("speedup {:.2}x", row.speedup)
    };
    eprintln!(
        "{:<24} serial {:>9.1} ms | {} threads {:>9.1} ms | {} | \
         {:>10.0} shots/s | {:>9} allocs | identical: {}",
        row.name,
        row.serial_ms,
        threads,
        row.parallel_ms,
        speedup_col,
        row.shots_per_sec,
        row.allocs_serial,
        row.identical
    );
    if let Some(points) = &row.scaling {
        let mut curve = String::new();
        for p in points {
            curve.push_str(&format!(" {}t {:.1} ms ({:.2}x)", p.threads, p.wall_ms, p.speedup));
        }
        eprintln!("{:<24} scaling:{curve}", "");
    }
    row
}

/// Interleaved best-of-3 timing of the scalar oracle against the batch
/// kernel: alternating scalar/batch pairs so machine drift hits both
/// legs equally, keeping the minimum of each. Both legs are pinned to a
/// single worker so the ratio isolates the SoA kernel itself, not the
/// thread pool.
fn interleaved_best3(scalar: impl Fn() -> f64, batch: impl Fn() -> f64) -> (f64, f64) {
    let mut best_scalar = f64::INFINITY;
    let mut best_batch = f64::INFINITY;
    for _ in 0..3 {
        let (ms, x) = time_ms(|| qfc::runtime::with_threads(1, &scalar));
        std::hint::black_box(x);
        best_scalar = best_scalar.min(ms);
        let (mb, y) = time_ms(|| qfc::runtime::with_threads(1, &batch));
        std::hint::black_box(y);
        best_batch = best_batch.min(mb);
    }
    (best_scalar, best_batch)
}

fn run(
    requested: usize,
    threads: usize,
    host_cpus: usize,
    smoke: bool,
    scaling: &[usize],
) -> BenchReport {
    let mut workloads = Vec::new();
    let unvalidated = host_cpus == 1 || threads == 1;
    // A host that cannot validate scaling cannot produce a meaningful
    // scaling *curve* either — skip the profile rather than record
    // scheduling noise as data.
    let scaling: &[usize] = if unvalidated && !scaling.is_empty() {
        eprintln!(
            "warning: --scaling skipped — parallel leg unvalidated \
             (host_cpus = {host_cpus}, threads = {threads}), the curve would be \
             scheduling noise"
        );
        &[]
    } else {
        scaling
    };

    // §II heralded-photon experiment: per-channel tag generation +
    // detection, F1 coincidence matrix, F2 linewidth histogram.
    {
        let source = QfcSource::paper_device();
        let mut cfg = HeraldedConfig::fast_demo();
        if smoke {
            cfg.duration_s = 1.0;
            cfg.linewidth_pairs = 500;
        } else {
            cfg.duration_s = 40.0;
            cfg.linewidth_pairs = 40_000;
        }
        let shots = cfg.linewidth_pairs as u64;
        workloads.push(bench_workload("heralded", threads, shots, unvalidated, scaling, || {
            let report = run_heralded_experiment(&source, &cfg, 7);
            serde_json::to_string(&report).expect("report serializes")
        }));
    }

    // §IV event-based time-bin Monte Carlo: full slot-resolved Franson
    // propagation of every emitted pair, one split-seed stream per
    // phase point.
    {
        let source = QfcSource::paper_device_timebin();
        let mut cfg = TimeBinConfig::fast_demo();
        cfg.frames_per_point = if smoke { 200_000 } else { 40_000_000 };
        let steps = if smoke { 8 } else { 32 };
        let phases: Vec<f64> = (0..steps)
            .map(|k| k as f64 * std::f64::consts::TAU / steps as f64)
            .collect();
        let shots = cfg.frames_per_point * phases.len() as u64;
        workloads.push(bench_workload("timebin-event-mc", threads, shots, unvalidated, scaling, || {
            let scan = run_timebin_event_mc(&source, &cfg, 1, &phases, 11);
            serde_json::to_string(&scan).expect("scan serializes")
        }));
    }

    // §V four-photon tomography: 81 four-qubit settings sampled in
    // parallel, then a serial MLE reconstruction.
    {
        let source = QfcSource::paper_device_timebin();
        let mut cfg = MultiPhotonConfig::fast_demo();
        cfg.four_shots_per_setting = if smoke { 40 } else { 20_000 };
        let shots = cfg.four_shots_per_setting * 81;
        workloads.push(bench_workload("four-photon-tomography", threads, shots, unvalidated, scaling, || {
            let tomo = run_four_photon_tomography(&source, &cfg, 13);
            serde_json::to_string(&tomo).expect("tomography serializes")
        }));
    }

    // Streaming tomography: the 81 four-qubit settings' histograms are
    // simulated on their split-seed streams and folded through the
    // streaming count accumulator (never materializing per-shot
    // tables), then reconstructed once with the accelerated
    // (over-relaxed RρR) MLE schedule.
    {
        let rho4 = noisy_four_photon(0.0, 0.92, 0.05);
        let settings = all_settings(4);
        let shots_per_setting = if smoke { 40u64 } else { 20_000 };
        let opts = MleOptions {
            acceleration: MleAcceleration::accelerated(),
            ..MleOptions::default()
        };
        let shots = shots_per_setting * settings.len() as u64;
        workloads.push(bench_workload("streaming-tomography", threads, shots, unvalidated, scaling, || {
            let data = try_stream_counts_seeded(&rho4, &settings, shots_per_setting, 29)
                .expect("four-photon settings are valid");
            let mle = try_mle_reconstruction(&data, &opts).expect("streamed data reconstructs");
            serde_json::to_string(&mle).expect("result serializes")
        }));
    }

    // Parametric bootstrap: every replica resamples and re-runs the MLE
    // reconstructor on its own split-seed stream.
    {
        let truth = werner_state(0.83, 0.0);
        let settings = all_settings(2);
        let shots_per_setting = if smoke { 200u64 } else { 2_000 };
        let replicas = if smoke { 8 } else { 48 };
        let data = simulate_counts_seeded(&truth, &settings, shots_per_setting, 17);
        let target = bell_phi_plus();
        let shots = replicas as u64 * data.settings.len() as u64 * shots_per_setting;
        workloads.push(bench_workload("bootstrap-mle", threads, shots, unvalidated, scaling, || {
            let est = bootstrap_functional(
                17,
                &data,
                replicas,
                |d| mle_reconstruction(d, &MleOptions::default()).rho,
                |rho| fidelity_with_pure(rho, &target),
            );
            serde_json::to_string(&est).expect("estimate serializes")
        }));
    }

    // Campaign engine overhead: a sharded §IV run driven end-to-end
    // through checkpoint/resume. Each iteration starts from a clean
    // directory, runs the campaign cold (planning + execution +
    // integrity-hashed checkpoint per shard), then immediately re-runs
    // it so every shard comes back from its checkpoint — the closure's
    // wall time is therefore checkpoint overhead plus resume latency on
    // top of the bare driver, and the returned JSON (resume count +
    // merged report) must be byte-identical across legs.
    {
        let source = QfcSource::paper_device_timebin();
        let mut cfg = TimeBinConfig::fast_demo();
        cfg.channels = if smoke { 2 } else { 4 };
        cfg.frames_per_point = if smoke { 20_000 } else { 500_000 };
        cfg.phase_steps = if smoke { 8 } else { 12 };
        let schedule = FaultSchedule::empty();
        let dir = std::path::PathBuf::from("target/tmp/qfc-bench-campaign");
        let shots =
            cfg.frames_per_point * (cfg.phase_steps as u64 + 16) * u64::from(cfg.channels);
        workloads.push(bench_workload("campaign-checkpoint", threads, shots, unvalidated, scaling, || {
            let _ = std::fs::remove_dir_all(&dir);
            let workload = TimeBinCampaign {
                source: &source,
                config: &cfg,
                seed: 23,
                schedule: &schedule,
            };
            let opts = CampaignOptions::new(&dir);
            let cold = run_campaign(&workload, &opts).expect("cold campaign runs");
            let warm = run_campaign(&workload, &opts).expect("campaign resumes");
            assert_eq!(cold.report_json, warm.report_json, "resume changed bytes");
            format!(
                "{{\"resumed\":{},\"report\":{}}}",
                warm.stats.shards_resumed, warm.report_json
            )
        }));
    }

    // §II time-resolved cross-correlation: two-pointer sweep over
    // sharded start tags.
    {
        let mut rng = rng_from_seed(19);
        let duration_s = if smoke { 2.0 } else { 40.0 };
        let a = poissonian_stream(&mut rng, 200_000.0, duration_s);
        let b = poissonian_stream(&mut rng, 200_000.0, duration_s);
        let shots = (a.len() + b.len()) as u64;
        workloads.push(bench_workload("coincidence-histogram", threads, shots, unvalidated, scaling, || {
            let hist = cross_correlation_histogram(&a, &b, 100_000, 50);
            serde_json::to_string(&hist).expect("histogram serializes")
        }));
    }

    // Dispersion scan through the SoA sweep layer: ring transmission of
    // every 200-GHz channel of the ±40-channel comb, ±5 linewidths per
    // channel. The grids are built outside the timed closure; the timed
    // region is pure kernel. The extra interleaved pass times the batch
    // kernel against its point-by-point scalar oracle.
    {
        let ring = Microring::paper_device();
        let lw = ring.linewidth().hz();
        let per_channel = if smoke { 256usize } else { 8192 };
        let channels: Vec<i32> = (-40..=40).collect();
        let grids: Vec<SweepGrid> = channels
            .iter()
            .map(|&m| {
                let f0 = ring.resonance(Polarization::Te, m).hz();
                SweepGrid::linspace(f0 - 5.0 * lw, f0 + 5.0 * lw, per_channel)
            })
            .collect();
        let shots = (channels.len() * per_channel) as u64;
        let mut row = bench_workload("ring-dispersion-sweep", threads, shots, unvalidated, scaling, || {
            let mut buf = BatchBuffers::new();
            let sums: Vec<f64> = channels
                .iter()
                .zip(&grids)
                .map(|(&m, grid)| {
                    sweep::ring_power_response_batch(&ring, Polarization::Te, m, grid, &mut buf);
                    buf.values().iter().sum::<f64>()
                })
                .collect();
            serde_json::to_string(&sums).expect("channel sums serialize")
        });
        let (scalar_best, batch_best) = interleaved_best3(
            // The historical point-by-point path: the public scalar API
            // called once per grid point from outside the crate (exactly
            // what examples/design_sweep.rs did before the batch layer).
            || {
                let mut acc = 0.0f64;
                for (&m, grid) in channels.iter().zip(&grids) {
                    for &f in grid.points() {
                        acc += ring.power_response(Polarization::Te, m, Frequency::from_hz(f));
                    }
                }
                acc
            },
            || {
                let mut buf = BatchBuffers::new();
                let mut acc = 0.0f64;
                for (&m, grid) in channels.iter().zip(&grids) {
                    sweep::ring_power_response_batch(&ring, Polarization::Te, m, grid, &mut buf);
                    acc += buf.values().iter().sum::<f64>();
                }
                acc
            },
        );
        row.scalar_best_ms = Some(scalar_best);
        row.batch_best_ms = Some(batch_best);
        row.batch_speedup = Some(scalar_best / batch_best);
        eprintln!(
            "{:<24} batch vs scalar (interleaved best-of-3, 1 thread): \
             {batch_best:.1} ms vs {scalar_best:.1} ms = {:.1}x",
            "", scalar_best / batch_best
        );
        workloads.push(row);
    }

    // OPO threshold scan: the full transfer curve (quadratic floor,
    // kink, linear branch) on a dense pump-power grid.
    {
        let ring = Microring::paper_device();
        let p_th = opo::threshold(&ring).w();
        let n = if smoke { 8192usize } else { 400_000 };
        let grid = SweepGrid::linspace(0.05 * p_th, 3.0 * p_th, n);
        let shots = n as u64;
        let mut row = bench_workload("opo-threshold-sweep", threads, shots, unvalidated, scaling, || {
            let mut buf = BatchBuffers::new();
            sweep::opo_transfer_batch(&ring, &grid, &mut buf);
            let v = buf.values();
            let summary = [v.iter().sum::<f64>(), v[0], v[v.len() / 2], v[v.len() - 1]];
            serde_json::to_string(&summary).expect("sweep summary serializes")
        });
        let (scalar_best, batch_best) = interleaved_best3(
            // Point-by-point public API, one opaque call per pump power.
            || {
                let mut acc = 0.0f64;
                for &p in grid.points() {
                    acc += opo::output_power(&ring, Power::from_w(p)).w();
                }
                acc
            },
            || {
                let mut buf = BatchBuffers::new();
                sweep::opo_transfer_batch(&ring, &grid, &mut buf);
                buf.values().iter().sum::<f64>()
            },
        );
        row.scalar_best_ms = Some(scalar_best);
        row.batch_best_ms = Some(batch_best);
        row.batch_speedup = Some(scalar_best / batch_best);
        eprintln!(
            "{:<24} batch vs scalar (interleaved best-of-3, 1 thread): \
             {batch_best:.1} ms vs {scalar_best:.1} ms = {:.1}x",
            "", scalar_best / batch_best
        );
        workloads.push(row);
    }

    // Large-d qudit MLE tomography (the frequency-bin qudit direction):
    // a synthetic low-rank d-level state measured in deterministic
    // orthonormal bases with exact ("infinite statistics") counts, then
    // reconstructed end to end with the rank-1 + packed-GEMM fast path.
    // The main legs time the parallel expectation sweep; the extra
    // interleaved pass pits the dense-representation classic leg
    // (materialized d×d projectors, trace_of_product expectations,
    // add_scaled_assign R-build — the classic path's kernels) against
    // the rank-1 representation of the *same* driver, both pinned to
    // one worker, reusing the scalar/batch columns.
    for &(name, dim, rank) in &[("qudit-mle-16", 16usize, 3usize), ("qudit-mle-64", 64, 4)] {
        let n_bases = match (smoke, dim) {
            (true, 16) => 5,
            (true, _) => 4,
            (false, 16) => 17,
            (false, _) => 16,
        };
        let max_iterations = match (smoke, dim) {
            (true, 16) => 40,
            (true, _) => 12,
            (false, 16) => 200,
            (false, _) => 120,
        };
        let rho = synthetic_low_rank_state(dim, rank, 41).expect("qudit dims are supported");
        let bases = deterministic_bases(dim, n_bases, 77).expect("bases orthonormalize");
        let set = ProjectorReprSet::try_rank1_from_bases(&bases).expect("bases are unitary");
        let dense_set = set.to_dense();
        let counts = exact_counts_repr(&rho, &set, 1_000_000).expect("state matches set");
        let opts = MleOptions {
            max_iterations,
            tolerance: 1e-10,
            acceleration: MleAcceleration::accelerated(),
        };
        let shots: u64 = counts.iter().map(|row| row.iter().sum::<u64>()).sum();
        let mut row = bench_workload(name, threads, shots, unvalidated, scaling, || {
            let mle = try_mle_repr(&set, &counts, &opts).expect("qudit data reconstructs");
            serde_json::to_string(&mle).expect("result serializes")
        });
        let (dense_best, rank1_best) = interleaved_best3(
            || {
                let mle =
                    try_mle_repr(&dense_set, &counts, &opts).expect("dense leg reconstructs");
                mle.final_update
            },
            || {
                let mle = try_mle_repr(&set, &counts, &opts).expect("rank-1 leg reconstructs");
                mle.final_update
            },
        );
        row.scalar_best_ms = Some(dense_best);
        row.batch_best_ms = Some(rank1_best);
        row.batch_speedup = Some(dense_best / rank1_best);
        eprintln!(
            "{:<24} rank-1 vs dense (interleaved best-of-3, 1 thread): \
             {rank1_best:.1} ms vs {dense_best:.1} ms = {:.1}x",
            "",
            dense_best / rank1_best
        );
        workloads.push(row);
    }

    if host_cpus < threads {
        eprintln!(
            "note: host has {host_cpus} CPU(s) < {threads} requested threads; \
             wall-clock speedup is capped at {host_cpus}x"
        );
    }
    if unvalidated {
        eprintln!(
            "warning: parallel leg unvalidated — the run cannot demonstrate scaling \
             (host_cpus = {host_cpus}, threads = {threads}); speedup factors were \
             suppressed, only byte-identity and allocation columns are meaningful"
        );
    }
    BenchReport {
        requested_threads: requested,
        effective_threads: threads,
        host_cpus,
        oversubscribed: threads > host_cpus,
        parallel_unvalidated: unvalidated,
        smoke,
        workloads,
    }
}

/// Allocation slack over the baseline: 10 % relative plus 64 calls
/// absolute, so tiny workloads aren't gated on a handful of calls while
/// a reintroduced per-shot allocation (thousands of calls) still trips.
fn alloc_budget(baseline: u64) -> u64 {
    baseline + baseline / 10 + 64
}

/// Diffs `report` against the committed baseline; returns the list of
/// human-readable regressions (empty = gate passed).
///
/// When either side carries `parallel_unvalidated` (single-CPU host or
/// `--threads 1`), the parallel-leg columns are meaningless numbers, so
/// the gate still compares them — the byte-identity check costs nothing
/// and must hold even at one worker — but emits a warning instead of
/// judging speedups, and never fails on parallel wall time. The serial
/// columns (allocations, wall time) gate in every mode.
fn check_against_baseline(
    report: &BenchReport,
    baseline: &BenchReport,
    max_slowdown: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if report.smoke != baseline.smoke {
        failures.push(format!(
            "mode mismatch: run has smoke={} but baseline has smoke={} — \
             regenerate the baseline in the same mode",
            report.smoke, baseline.smoke
        ));
        return failures;
    }
    if report.parallel_unvalidated || baseline.parallel_unvalidated {
        eprintln!(
            "warning: parallel leg unvalidated on {} — speedup columns skipped \
             by the baseline gate; serial wall time and allocations still gate",
            if report.parallel_unvalidated {
                "this run"
            } else {
                "the baseline"
            }
        );
    }
    for row in &report.workloads {
        let Some(base) = baseline.workloads.iter().find(|b| b.name == row.name) else {
            failures.push(format!(
                "{}: missing from baseline — regenerate it with --out",
                row.name
            ));
            continue;
        };
        if !row.identical {
            failures.push(format!("{}: serial and parallel outputs differ", row.name));
        }
        let budget = alloc_budget(base.allocs_serial);
        if row.allocs_serial > budget {
            failures.push(format!(
                "{}: serial-leg allocations regressed: {} > budget {} \
                 (baseline {} + 10% + 64)",
                row.name, row.allocs_serial, budget, base.allocs_serial
            ));
        }
        // Wall-time gates carry an absolute slack on top of the relative
        // factor (mirroring the +64-call allocation slack): millisecond-
        // scale workloads — notably the filesystem-bound campaign
        // checkpoint smoke — sit below the machine's scheduling/page-
        // cache noise floor, where a pure ratio gate is a coin flip.
        const WALL_SLACK_MS: f64 = 50.0;
        let limit_ms = base.serial_ms * max_slowdown + WALL_SLACK_MS;
        if row.serial_ms > limit_ms {
            failures.push(format!(
                "{}: serial wall time regressed: {:.1} ms > {:.1} ms \
                 (baseline {:.1} ms × {max_slowdown} + {WALL_SLACK_MS} ms)",
                row.name, row.serial_ms, limit_ms, base.serial_ms
            ));
        }
        // The parallel wall-time gate only makes sense when both runs
        // actually exercised parallelism; on a single-CPU host (or
        // --threads 1) those columns are scheduling noise and were
        // warned about above, not gated on.
        if !report.parallel_unvalidated && !baseline.parallel_unvalidated {
            let plimit_ms = base.parallel_ms * max_slowdown + WALL_SLACK_MS;
            if row.parallel_ms > plimit_ms {
                failures.push(format!(
                    "{}: parallel wall time regressed: {:.1} ms > {:.1} ms \
                     (baseline {:.1} ms × {max_slowdown} + {WALL_SLACK_MS} ms)",
                    row.name, row.parallel_ms, plimit_ms, base.parallel_ms
                ));
            }
            // Four-photon tomography once shipped a parallel leg *slower*
            // than serial (0.92x — shard dispatch swamping a too-small
            // grain). The grain fallback fixed it; this gate keeps it
            // fixed: on a validated host the parallel leg must not lose
            // to serial by more than the wall-noise slack (speedup ≥ 1.0
            // up to timer noise).
            if row.name == "four-photon-tomography"
                && row.parallel_ms > row.serial_ms + WALL_SLACK_MS
            {
                failures.push(format!(
                    "{}: parallel leg slower than serial ({:.1} ms vs {:.1} ms, \
                     speedup {:.2}x < 1.0) — the per-setting grain fallback regressed",
                    row.name, row.parallel_ms, row.serial_ms, row.speedup
                ));
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let mut requested: Option<usize> = None;
    let mut smoke = false;
    let mut out = String::from("BENCH_parallel.json");
    let mut baseline_path: Option<String> = None;
    let mut max_slowdown = 4.0f64;
    let mut scaling: Vec<usize> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => requested = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("--out needs a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--check-baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => {
                    eprintln!("--check-baseline needs a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--max-slowdown" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(f) if f.is_finite() && f >= 1.0 => max_slowdown = f,
                _ => {
                    eprintln!("--max-slowdown needs a finite factor ≥ 1.0");
                    return ExitCode::FAILURE;
                }
            },
            "--scaling" => {
                let parsed: Option<Vec<usize>> = it.next().and_then(|s| {
                    s.split(',')
                        .map(|t| t.trim().parse::<usize>().ok().filter(|&n| n >= 1))
                        .collect()
                });
                match parsed {
                    Some(list) if !list.is_empty() => scaling = list,
                    _ => {
                        eprintln!(
                            "--scaling needs a comma-separated list of positive \
                             thread counts, e.g. --scaling 1,2,4,8"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: qfc-bench [--threads N] [--smoke] [--out PATH] \
                     [--check-baseline PATH] [--max-slowdown F] [--scaling N1,N2,...]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    // Load the baseline before spending minutes on the run, so a missing
    // or malformed file fails fast.
    let baseline: Option<BenchReport> = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("cannot parse baseline {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // An explicit --threads is honored (and flagged as oversubscribed when
    // it exceeds the host); only the default is clamped to the hardware.
    let (requested, threads) = match requested {
        Some(n) => (n, n),
        None => (4, 4usize.min(host_cpus)),
    };

    let collector = qfc::obs::Collector::new();
    let report = collector.install(|| run(requested, threads, host_cpus, smoke, &scaling));
    if report.workloads.iter().any(|w| !w.identical) {
        eprintln!("FAIL: serial and parallel outputs differ");
        return ExitCode::FAILURE;
    }
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize bench report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    let trace_out = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.trace.json"),
        None => format!("{out}.trace.json"),
    };
    if let Err(e) = std::fs::write(&trace_out, collector.snapshot().to_json() + "\n") {
        eprintln!("cannot write {trace_out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {trace_out}");

    if let Some(base) = baseline {
        let failures = check_against_baseline(&report, &base, max_slowdown);
        if failures.is_empty() {
            eprintln!(
                "baseline gate passed ({} workloads vs {})",
                report.workloads.len(),
                baseline_path.as_deref().unwrap_or("?")
            );
        } else {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
