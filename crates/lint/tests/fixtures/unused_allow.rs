//@ crate: qfc-core
// qfc-lint: allow(determinism) — fixture: there is nothing to suppress below
//~^ ERROR unused-allow
pub fn clean() {}
