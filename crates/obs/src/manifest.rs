//! Run manifests: the machine-readable record tying a report to the
//! exact inputs that produced it.

/// Recovery bookkeeping of a sharded campaign run, attached to the
/// [`RunManifest`] when a report was produced by the campaign engine
/// rather than a single-process driver. The merged report bytes are
/// identical either way; this block records *how* the campaign got
/// there (resumes, retries, quarantines, rejected checkpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// 16-hex-digit campaign fingerprint (workload + seed + config +
    /// shard table).
    pub campaign_id: String,
    /// Shards in the campaign manifest.
    pub shards_total: usize,
    /// Shards restored from valid checkpoints instead of re-executed.
    pub shards_resumed: usize,
    /// Shard attempt retries across the run.
    pub retries: u64,
    /// Shards that exhausted their retry budget.
    pub quarantined: usize,
    /// Checkpoints rejected at load (torn write, hash mismatch, stale
    /// fingerprint).
    pub checkpoints_rejected: usize,
}

/// Everything needed to attribute (and in principle replay) a run:
/// seed, config digest, effective thread count, environment override,
/// fault-schedule summary, and the workspace version.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Root RNG seed of the run.
    pub seed: u64,
    /// FNV-1a 64 digest (16 hex digits) of the driver config's JSON
    /// serialization.
    pub config_digest: String,
    /// Effective worker-pool size the run resolved to.
    pub threads: usize,
    /// Raw `QFC_THREADS` environment override, when set.
    pub qfc_threads_env: Option<String>,
    /// Number of events in the fault schedule (0 for a clean run).
    pub fault_events: usize,
    /// Sorted, deduplicated labels of the scheduled fault kinds.
    pub fault_kinds: Vec<String>,
    /// `CARGO_PKG_VERSION` of the crate that recorded the manifest.
    pub crate_version: String,
    /// Campaign recovery bookkeeping, when the run was sharded.
    pub campaign: Option<CampaignSummary>,
}

impl RunManifest {
    /// Builds a manifest for a clean (no faults) run, capturing the
    /// `QFC_THREADS` override from the environment.
    pub fn clean(seed: u64, config_digest: String, threads: usize, crate_version: &str) -> Self {
        Self {
            seed,
            config_digest,
            threads,
            qfc_threads_env: std::env::var("QFC_THREADS").ok(),
            fault_events: 0,
            fault_kinds: Vec::new(),
            crate_version: crate_version.to_owned(),
            campaign: None,
        }
    }

    /// Formats a byte digest as the canonical 16-hex-digit string.
    pub fn digest_hex(bytes: &[u8]) -> String {
        format!("{:016x}", fnv1a64(bytes))
    }
}

/// FNV-1a 64-bit hash — the workspace's standard config digest.
/// Deterministic, dependency-free, and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes.iter().fold(OFFSET, |hash, &b| {
        (hash ^ u64::from(b)).wrapping_mul(PRIME)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_is_16_hex_digits() {
        let d = RunManifest::digest_hex(b"{\"duration_s\":10.0}");
        assert_eq!(d.len(), 16);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
