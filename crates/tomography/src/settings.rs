//! Tomographic measurement settings.
//!
//! Qubit tomography measures each photon in the Pauli X, Y, Z bases; for
//! time-bin qubits Z is the arrival time (no analyzer) and X/Y are the
//! analyzer's middle slot at phases 0 and π/2. A complete setting set for
//! `n` photons is the 3ⁿ basis combinations, each with 2ⁿ outcomes.

use serde::{Deserialize, Serialize};

use qfc_mathkit::cast;
use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::{Complex64, C_ONE};
use qfc_mathkit::cvector::CVector;

/// A single-qubit measurement basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PauliBasis {
    /// σ_x — analyzer phase 0.
    X,
    /// σ_y — analyzer phase π/2.
    Y,
    /// σ_z — arrival time (early/late).
    Z,
}

impl PauliBasis {
    /// All three bases.
    pub const ALL: [PauliBasis; 3] = [PauliBasis::X, PauliBasis::Y, PauliBasis::Z];

    /// Eigenstate of this basis for `outcome` (`0` → +1 eigenvalue,
    /// `1` → −1 eigenvalue), as a 2-vector.
    pub fn eigenstate(self, outcome: u8) -> CVector {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        match (self, outcome) {
            (PauliBasis::Z, 0) => CVector::from_real(&[1.0, 0.0]),
            (PauliBasis::Z, _) => CVector::from_real(&[0.0, 1.0]),
            (PauliBasis::X, 0) => CVector::from_real(&[s, s]),
            (PauliBasis::X, _) => CVector::from_real(&[s, -s]),
            (PauliBasis::Y, 0) => {
                CVector::from_vec(vec![Complex64::real(s), Complex64::new(0.0, s)])
            }
            (PauliBasis::Y, _) => {
                CVector::from_vec(vec![Complex64::real(s), Complex64::new(0.0, -s)])
            }
        }
    }

    /// Rank-1 projector onto the eigenstate for `outcome`.
    pub fn projector(self, outcome: u8) -> CMatrix {
        let v = self.eigenstate(outcome);
        CMatrix::outer(&v, &v)
    }

    /// The 2×2 Pauli matrix of this basis.
    pub fn matrix(self) -> CMatrix {
        match self {
            PauliBasis::X => qfc_quantum::ops::pauli_x(),
            PauliBasis::Y => qfc_quantum::ops::pauli_y(),
            PauliBasis::Z => qfc_quantum::ops::pauli_z(),
        }
    }
}

/// A measurement setting: one basis per qubit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Setting(pub Vec<PauliBasis>);

impl Setting {
    /// Builds a setting from a basis slice (or fixed array) without
    /// requiring the caller to allocate a `Vec` literal at every call
    /// site: `Setting::from_bases(&[PauliBasis::Z])`.
    pub fn from_bases(bases: &[PauliBasis]) -> Self {
        Self(bases.to_vec())
    }

    /// Number of qubits measured.
    pub fn qubits(&self) -> usize {
        self.0.len()
    }

    /// Number of outcomes `2ⁿ`.
    pub fn outcomes(&self) -> usize {
        1 << self.0.len()
    }

    /// Projector of outcome `o` (bit `q` of `o`, counted from the most
    /// significant qubit, selects that qubit's eigenstate).
    pub fn outcome_projector(&self, o: usize) -> CMatrix {
        let n = self.0.len();
        assert!(o < self.outcomes(), "outcome index out of range");
        let mut acc: Option<CMatrix> = None;
        for (q, basis) in self.0.iter().enumerate() {
            let bit = u8::from((o >> (n - 1 - q)) & 1 == 1);
            let p = basis.projector(bit);
            acc = Some(match acc {
                None => p,
                Some(m) => m.kron(&p),
            });
        }
        acc.unwrap_or_else(|| unreachable!("setting has at least one qubit")) // qfc-lint: allow(panic-reachability) — invariant: Setting construction requires at least one qubit
    }

    /// Outcome eigenvector `|ψ_o⟩ = ⊗_q |b_q, bit_q(o)⟩` — the rank-1
    /// factor of [`Self::outcome_projector`], which equals
    /// `|ψ_o⟩⟨ψ_o|` (to rounding; the projector path associates its
    /// products differently). The rank-1 tomography path stores these
    /// `d`-vectors instead of the `d × d` outer products.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn outcome_vector(&self, o: usize) -> CVector {
        let n = self.0.len();
        assert!(o < self.outcomes(), "outcome index out of range");
        let mut acc = CVector::from_vec(vec![C_ONE]);
        for (q, basis) in self.0.iter().enumerate() {
            let bit = u8::from((o >> (n - 1 - q)) & 1 == 1);
            acc = acc.kron(&basis.eigenstate(bit));
        }
        acc
    }

    /// Eigenvalue product `Πq (±1)` of outcome `o` over the qubits in
    /// `mask` (bit set = qubit participates).
    pub fn outcome_sign(&self, o: usize, mask: usize) -> f64 {
        let n = self.0.len();
        let mut sign = 1.0;
        for q in 0..n {
            if (mask >> (n - 1 - q)) & 1 == 1 && (o >> (n - 1 - q)) & 1 == 1 {
                sign = -sign;
            }
        }
        sign
    }
}

/// All `3ⁿ` tomography settings for `n` qubits, in lexicographic X<Y<Z
/// order.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 8`.
pub fn all_settings(n: usize) -> Vec<Setting> {
    assert!(n > 0 && n <= 8, "settings for 1..=8 qubits");
    let mut out = Vec::with_capacity(3usize.pow(cast::usize_to_u32(n)));
    let mut idx = vec![0usize; n];
    loop {
        out.push(Setting(idx.iter().map(|&i| PauliBasis::ALL[i]).collect()));
        // Increment base-3 counter.
        let mut q = n;
        loop {
            if q == 0 {
                return out;
            }
            q -= 1;
            idx[q] += 1;
            if idx[q] < 3 {
                break;
            }
            idx[q] = 0;
        }
    }
}

/// Cached outcome projectors for a list of settings.
///
/// [`Setting::outcome_projector`] rebuilds its Kronecker chain on every
/// call; the MLE RρR loop evaluates each projector hundreds of times per
/// reconstruction, and a bootstrap evaluates each reconstruction dozens
/// of times. This cache builds every projector exactly once — via the
/// same `outcome_projector` code path, so the cached matrices are
/// bit-identical to freshly built ones — and hands out references.
#[derive(Debug, Clone)]
pub struct ProjectorSet {
    /// `projectors[s][o]` for setting `s`, outcome `o`.
    projectors: Vec<Vec<CMatrix>>,
    /// Hilbert-space dimension `2ⁿ`.
    dim: usize,
}

impl ProjectorSet {
    /// Precomputes all `Σ_s 2ⁿ` outcome projectors.
    ///
    /// # Panics
    ///
    /// Panics if `settings` is empty or the settings measure different
    /// qubit counts.
    pub fn new(settings: &[Setting]) -> Self {
        assert!(!settings.is_empty(), "projector set needs at least one setting");
        let n = settings[0].qubits();
        let projectors: Vec<Vec<CMatrix>> = settings
            .iter()
            .map(|setting| {
                assert_eq!(setting.qubits(), n, "settings measure different qubit counts");
                (0..setting.outcomes()).map(|o| setting.outcome_projector(o)).collect()
            })
            .collect();
        Self {
            projectors,
            dim: 1 << n,
        }
    }

    /// Hilbert-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of settings covered.
    #[inline]
    pub fn settings(&self) -> usize {
        self.projectors.len()
    }

    /// Outcomes of setting `s`.
    #[inline]
    pub fn outcomes(&self, s: usize) -> usize {
        self.projectors[s].len()
    }

    /// The cached projector of outcome `o` in setting `s`.
    #[inline]
    pub fn projector(&self, s: usize, o: usize) -> &CMatrix {
        &self.projectors[s][o]
    }
}

/// The Pauli string `σ_{s₁} ⊗ … ⊗ σ_{sₙ}` as a matrix, where `None`
/// denotes identity on that qubit.
pub fn pauli_string_matrix(string: &[Option<PauliBasis>]) -> CMatrix {
    let mut acc: Option<CMatrix> = None;
    for s in string {
        let m = match s {
            None => CMatrix::identity(2),
            Some(b) => b.matrix(),
        };
        acc = Some(match acc {
            None => m,
            Some(a) => a.kron(&m),
        });
    }
    acc.unwrap_or_else(|| CMatrix::identity(1).scale_c(C_ONE))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigenstates_are_eigenvectors() {
        for basis in PauliBasis::ALL {
            let m = basis.matrix();
            for (outcome, val) in [(0u8, 1.0), (1u8, -1.0)] {
                let v = basis.eigenstate(outcome);
                let mv = m.matvec(&v);
                let expect = v.scale(val);
                assert!(mv.approx_eq(&expect, 1e-12), "{basis:?} outcome {outcome}");
            }
        }
    }

    #[test]
    fn projectors_complete() {
        for basis in PauliBasis::ALL {
            let sum = &basis.projector(0) + &basis.projector(1);
            assert!(sum.approx_eq(&CMatrix::identity(2), 1e-13));
        }
    }

    #[test]
    fn all_settings_count() {
        assert_eq!(all_settings(1).len(), 3);
        assert_eq!(all_settings(2).len(), 9);
        assert_eq!(all_settings(4).len(), 81);
    }

    #[test]
    fn setting_projectors_resolve_identity() {
        let s = Setting(vec![PauliBasis::X, PauliBasis::Y]);
        let mut sum = CMatrix::zeros(4, 4);
        for o in 0..s.outcomes() {
            sum = &sum + &s.outcome_projector(o);
        }
        assert!(sum.approx_eq(&CMatrix::identity(4), 1e-12));
    }

    #[test]
    fn outcome_vectors_factor_projectors() {
        let s = Setting(vec![PauliBasis::X, PauliBasis::Y]);
        for o in 0..s.outcomes() {
            let v = s.outcome_vector(o);
            assert!((v.norm() - 1.0).abs() < 1e-14, "outcome {o} not normalized");
            let outer = CMatrix::outer(&v, &v);
            assert!(
                outer.approx_eq(&s.outcome_projector(o), 1e-13),
                "outcome {o}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outcome index")]
    fn outcome_vector_out_of_range() {
        let s = Setting(vec![PauliBasis::Z]);
        let _ = s.outcome_vector(2);
    }

    #[test]
    fn outcome_sign_parity() {
        let s = Setting(vec![PauliBasis::Z, PauliBasis::Z]);
        // Full mask: sign = (−1)^{popcount(o)}.
        assert_eq!(s.outcome_sign(0b00, 0b11), 1.0);
        assert_eq!(s.outcome_sign(0b01, 0b11), -1.0);
        assert_eq!(s.outcome_sign(0b11, 0b11), 1.0);
        // Mask only qubit 0 (MSB).
        assert_eq!(s.outcome_sign(0b01, 0b10), 1.0);
        assert_eq!(s.outcome_sign(0b10, 0b10), -1.0);
    }

    #[test]
    fn pauli_string_matrix_dimensions() {
        let m = pauli_string_matrix(&[Some(PauliBasis::X), None, Some(PauliBasis::Z)]);
        assert_eq!(m.rows(), 8);
        assert!(m.is_hermitian(1e-14));
        // Traceless (contains a non-identity factor).
        assert!(m.trace().approx_zero(1e-12));
    }

    #[test]
    #[should_panic(expected = "outcome index")]
    fn outcome_out_of_range() {
        let s = Setting(vec![PauliBasis::Z]);
        let _ = s.outcome_projector(2);
    }

    #[test]
    fn from_bases_equals_vec_construction() {
        assert_eq!(
            Setting::from_bases(&[PauliBasis::X, PauliBasis::Z]),
            Setting(vec![PauliBasis::X, PauliBasis::Z])
        );
    }

    #[test]
    fn projector_set_caches_bit_identical_projectors() {
        let settings = all_settings(2);
        let cache = ProjectorSet::new(&settings);
        assert_eq!(cache.dim(), 4);
        assert_eq!(cache.settings(), 9);
        for (s, setting) in settings.iter().enumerate() {
            assert_eq!(cache.outcomes(s), setting.outcomes());
            for o in 0..setting.outcomes() {
                let fresh = setting.outcome_projector(o);
                let cached = cache.projector(s, o);
                assert!(
                    fresh
                        .as_slice()
                        .iter()
                        .zip(cached.as_slice())
                        .all(|(a, b)| a.re.to_bits() == b.re.to_bits()
                            && a.im.to_bits() == b.im.to_bits()),
                    "setting {s} outcome {o}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one setting")]
    fn projector_set_rejects_empty() {
        let _ = ProjectorSet::new(&[]);
    }
}
