//! §II — Generation of pure single-mode heralded photons.
//!
//! Reproduces, as a Monte-Carlo virtual experiment on time-tagged clicks:
//!
//! * **F1** — the signal/idler coincidence matrix: peaks on all symmetric
//!   channel pairs, nothing off-diagonal;
//! * **T1** — per-channel CAR (paper: 12.8–32.4) and inferred pair rates
//!   (paper: 14–29 Hz) at 15 mW;
//! * **F2** — the time-resolved coincidence decay and the extracted
//!   Δν = 110 MHz linewidth;
//! * **F3** — the weeks-long stability of the self-locked scheme
//!   (< 5 % fluctuation) against free-running operation.

use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_faults::{Arm, FaultSchedule, HealthReport, QfcError, QfcResult};
use qfc_mathkit::rng::{bernoulli, exponential, poisson, rng_from_seed, split_seed};
use qfc_mathkit::stats::relative_fluctuation;
use qfc_photonics::pump::{residual_detuning, DriftModel};
use qfc_timetag::coincidence::{
    cross_correlation_histogram, measure_car, try_extract_linewidth, LinewidthResult,
};
use qfc_timetag::detector::SinglePhotonDetector;
use qfc_timetag::events::TagStream;

use crate::report::{Comparison, Expectation, ExperimentReport};
use crate::source::QfcSource;
use crate::supervisor::{self, SupervisorPolicy};

/// Configuration of the §II heralded-photon run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeraldedConfig {
    /// Number of symmetric channel pairs measured (paper: 5).
    pub channels: u32,
    /// Integration time, s.
    pub duration_s: f64,
    /// Coincidence window, ps.
    pub coincidence_window_ps: i64,
    /// Detector model per arm.
    pub detector: SinglePhotonDetector,
    /// Passive collection efficiency per arm (filters, fibers).
    pub collection_efficiency: f64,
    /// Detected pairs to accumulate for the time-resolved (F2) histogram.
    pub linewidth_pairs: usize,
    /// F2 histogram half-range, ps.
    pub histogram_range_ps: i64,
    /// F2 histogram bin, ps.
    pub histogram_bin_ps: i64,
}

impl HeraldedConfig {
    /// The paper's configuration: 5 channels, InGaAs-class detectors with
    /// the dark-count level that reproduces the published CAR window.
    pub fn paper() -> Self {
        Self {
            channels: 5,
            duration_s: 300.0,
            // The photons are 110-MHz narrowband (τ ≈ 1.45 ns): the
            // window must span the full correlation envelope.
            coincidence_window_ps: 8000,
            detector: SinglePhotonDetector {
                efficiency: 0.15,
                dark_count_rate_hz: 1200.0,
                jitter_sigma_ps: 100.0,
                dead_time_ps: 10_000_000,
            },
            collection_efficiency: 0.7,
            linewidth_pairs: 40_000,
            histogram_range_ps: 15_000,
            histogram_bin_ps: 250,
        }
    }

    /// A fast, high-efficiency configuration for demos and tests
    /// (SNSPD-class detectors, short run).
    pub fn fast_demo() -> Self {
        Self {
            channels: 3,
            duration_s: 5.0,
            coincidence_window_ps: 8000,
            detector: SinglePhotonDetector {
                efficiency: 0.8,
                dark_count_rate_hz: 2000.0,
                jitter_sigma_ps: 50.0,
                dead_time_ps: 50_000,
            },
            collection_efficiency: 0.7,
            linewidth_pairs: 8_000,
            histogram_range_ps: 15_000,
            histogram_bin_ps: 250,
        }
    }
}

/// Per-channel results of the coincidence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelResult {
    /// Channel-pair index `m`.
    pub m: u32,
    /// Signal-arm singles rate, Hz.
    pub signal_singles_hz: f64,
    /// Idler-arm singles rate, Hz.
    pub idler_singles_hz: f64,
    /// Detected coincidence rate, Hz.
    pub coincidence_rate_hz: f64,
    /// Inferred pair generation rate `S_s·S_i/C` (dark-corrected), Hz.
    pub inferred_pair_rate_hz: f64,
    /// Coincidence-to-accidental ratio (lower-bounded by the coincidence
    /// count when no accidentals were recorded).
    pub car: f64,
}

/// Full report of the §II run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeraldedReport {
    /// Per-channel figures.
    pub channels: Vec<ChannelResult>,
    /// F1 coincidence matrix: `matrix[i][j]` = zero-delay coincidences
    /// between signal of channel `i+1` and idler of channel `j+1`.
    pub coincidence_matrix: Vec<Vec<u64>>,
    /// F2 linewidth extraction.
    pub linewidth: LinewidthResult,
    /// Integration time used, s.
    pub duration_s: f64,
}

impl HeraldedReport {
    /// Mean CAR across channels.
    pub fn mean_car(&self) -> f64 {
        self.channels.iter().map(|c| c.car).sum::<f64>() / cast::to_f64(self.channels.len().max(1))
    }

    /// (min, max) CAR across channels.
    pub fn car_range(&self) -> (f64, f64) {
        let min = self.channels.iter().map(|c| c.car).fold(f64::INFINITY, f64::min);
        let max = self
            .channels
            .iter()
            .map(|c| c.car)
            .fold(f64::NEG_INFINITY, f64::max);
        (min, max)
    }

    /// (min, max) inferred pair rate across channels, Hz.
    pub fn rate_range(&self) -> (f64, f64) {
        let min = self
            .channels
            .iter()
            .map(|c| c.inferred_pair_rate_hz)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .channels
            .iter()
            .map(|c| c.inferred_pair_rate_hz)
            .fold(f64::NEG_INFINITY, f64::max);
        (min, max)
    }

    /// Contrast of the F1 matrix: smallest diagonal count divided by the
    /// largest off-diagonal count (`∞` when the off-diagonal is empty).
    pub fn matrix_contrast(&self) -> f64 {
        let n = self.coincidence_matrix.len();
        let mut min_diag = u64::MAX;
        let mut max_off = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    min_diag = min_diag.min(self.coincidence_matrix[i][j]);
                } else {
                    max_off = max_off.max(self.coincidence_matrix[i][j]);
                }
            }
        }
        if max_off == 0 {
            f64::INFINITY
        } else {
            cast::to_f64(min_diag) / cast::to_f64(max_off)
        }
    }

    /// Paper-vs-measured comparison rows for this experiment.
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§II heralded single photons (F1/T1/F2)");
        let (car_lo, car_hi) = self.car_range();
        r.push(Comparison::new(
            "T1",
            "min channel CAR (paper window 12.8..32.4)",
            12.8,
            car_lo,
            "",
            Expectation::InRange { lo: 5.0, hi: 40.0 },
        ));
        r.push(Comparison::new(
            "T1",
            "max channel CAR (paper window 12.8..32.4)",
            32.4,
            car_hi,
            "",
            Expectation::InRange { lo: 5.0, hi: 60.0 },
        ));
        let (rate_lo, rate_hi) = self.rate_range();
        r.push(Comparison::new(
            "T1",
            "min pair generation rate (paper 14 Hz)",
            14.0,
            rate_lo,
            "Hz",
            Expectation::InRange { lo: 7.0, hi: 30.0 },
        ));
        r.push(Comparison::new(
            "T1",
            "max pair generation rate (paper 29 Hz)",
            29.0,
            rate_hi,
            "Hz",
            Expectation::InRange { lo: 14.0, hi: 60.0 },
        ));
        r.push(Comparison::new(
            "F1",
            "diagonal/off-diagonal matrix contrast",
            5.0,
            self.matrix_contrast().min(1e6),
            "x",
            Expectation::AtLeast,
        ));
        r.push(Comparison::new(
            "F2",
            "signal/idler linewidth",
            110e6,
            self.linewidth.linewidth_hz,
            "Hz",
            Expectation::Within { rel_tol: 0.15 },
        ));
        r
    }
}

/// Generates the true (pre-detector) arrival streams of one channel:
/// pairs at rate `rate_hz` with two-sided-exponential signal–idler delay
/// of time constant `tau_s`.
fn generate_pair_arrivals<R: Rng + ?Sized>(
    rng: &mut R,
    rate_hz: f64,
    tau_s: f64,
    duration_s: f64,
) -> (Vec<i64>, Vec<i64>) {
    let n = poisson(rng, rate_hz * duration_s);
    qfc_obs::counter_add("shots_simulated", n);
    let mut signal = Vec::with_capacity(cast::u64_to_usize(n));
    let mut idler = Vec::with_capacity(cast::u64_to_usize(n));
    for _ in 0..n {
        let t = rng.gen::<f64>() * duration_s;
        let dt = exponential(rng, 1.0 / tau_s);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        signal.push(cast::f64_to_i64(t * 1e12));
        idler.push(cast::f64_to_i64((t + sign * dt) * 1e12));
    }
    signal.sort_unstable();
    idler.sort_unstable();
    (signal, idler)
}

/// A completed §II run: the physics report plus its health record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeraldedRun {
    /// The physics results.
    pub report: HeraldedReport,
    /// Faults injected and recovery actions taken.
    pub health: HealthReport,
}

impl HeraldedRun {
    /// Comparison rows with the health section attached.
    pub fn to_report(&self) -> ExperimentReport {
        self.report.to_report().with_health(self.health.clone())
    }
}

/// Runs the §II virtual experiment.
///
/// # Panics
///
/// Panics if the source is not in a CW regime or the configuration is
/// out of range.
pub fn run_heralded_experiment(
    source: &QfcSource,
    config: &HeraldedConfig,
    seed: u64,
) -> HeraldedReport {
    match try_run_heralded_experiment(source, config, seed, &FaultSchedule::empty()) {
        Ok(run) => run.report,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible, fault-aware form of [`run_heralded_experiment`].
///
/// With [`FaultSchedule::empty`] the result is bit-identical to the
/// panicking API (every physics RNG stream is untouched). With a
/// non-empty schedule, pump faults thin the pair rate, detector dropouts
/// kill arrivals inside their windows, dark bursts raise the dark rate,
/// TDC saturation caps the click rate, and the supervisor re-locks the
/// pump and quarantines channels whose detectors are dead for most of
/// the run.
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] for a bad configuration,
/// [`QfcError::RegimeMismatch`] when the source is not CW-pumped,
/// [`QfcError::ChannelsExhausted`] when every channel is quarantined,
/// and [`QfcError::LockReacquisitionFailed`] when the pump cannot be
/// re-locked.
pub fn try_run_heralded_experiment(
    source: &QfcSource,
    config: &HeraldedConfig,
    seed: u64,
    schedule: &FaultSchedule,
) -> QfcResult<HeraldedRun> {
    let _driver_span = qfc_obs::span("driver.heralded");
    crate::report::record_manifest(seed, config, schedule);

    let source_span = qfc_obs::span("driver.heralded.source");
    let plan = plan_heralded_experiment(source, config, seed, schedule)?;
    drop(source_span);

    // Generate and detect all channels in parallel, one split-seed RNG
    // per channel: the streams depend only on (seed, m) — fault effects
    // are pure functions of the schedule, so thread count cannot change
    // the result.
    let indexed: Vec<(usize, u32)> = plan.survivors.iter().copied().enumerate().collect();
    let timetag_span = qfc_obs::span("driver.heralded.timetag");
    let streams: Vec<(TagStream, TagStream)> = qfc_runtime::par_map(&indexed, |&(idx, m)| {
        heralded_channel_task(config, schedule, &plan, idx, m)
    });
    let (signal_streams, idler_streams): (Vec<TagStream>, Vec<TagStream>) =
        streams.into_iter().unzip();
    drop(timetag_span);
    let analysis_span = qfc_obs::span("driver.heralded.analysis");

    // F2 linewidth: dedicated high-statistics coincident-pair run (loss
    // thins a histogram uniformly, so shape is measured on detected
    // pairs directly), with a 5 % accidental floor. Every pair's start
    // time is uniform over the full span, so shards are independent and
    // concatenating their tag lists in shard order reproduces one serial
    // stream's statistics exactly.
    qfc_obs::counter_add("shots_simulated", cast::usize_to_u64(config.linewidth_pairs));
    let (a, b) = qfc_runtime::par_shots(
        cast::usize_to_u64(config.linewidth_pairs),
        plan.linewidth_root,
        |shard| heralded_linewidth_shard(config, plan.tau, shard),
        merge_linewidth_shards(config),
    );
    let run = assemble_heralded_run(config, plan, signal_streams, idler_streams, a, b)?;
    drop(analysis_span);

    let _report_span = qfc_obs::span("driver.heralded.report");
    Ok(run)
}

/// The RNG-free planning stage of the §II run: validation, supervisor
/// outcomes, per-channel fault-derated pair rates, seed domains, and the
/// effective per-arm detector. Everything a shard executor needs to
/// generate one channel's streams (or one F2 linewidth shard)
/// independently — the campaign layer decomposes the run into shards
/// from this plan, and [`try_run_heralded_experiment`] drives exactly
/// the same plan in one process.
#[derive(Debug, Clone)]
pub struct HeraldedPlan {
    /// Coincidence decay time of the ring, s.
    pub tau: f64,
    /// Integration time, ps.
    pub duration_ps: i64,
    /// Surviving channel indices, in channel order.
    pub survivors: Vec<u32>,
    /// Fault-derated pair generation rate per survivor, Hz.
    pub rates: Vec<f64>,
    /// Seed domain of the per-channel streams (`split_seed(seed, 1)`).
    pub channel_root: u64,
    /// Seed domain of the F2 linewidth run (`split_seed(seed, 2)`).
    pub linewidth_root: u64,
    /// Effective per-arm detector (collection efficiency folded in).
    pub arm: SinglePhotonDetector,
    /// Supervisor health accumulated during planning.
    pub health: HealthReport,
}

/// Builds the [`HeraldedPlan`]: validation, supervisor planning, and the
/// per-channel operating points. RNG-free apart from the deterministic
/// supervisor `fault_stream` lanes.
///
/// # Errors
///
/// As [`try_run_heralded_experiment`].
pub fn plan_heralded_experiment(
    source: &QfcSource,
    config: &HeraldedConfig,
    seed: u64,
    schedule: &FaultSchedule,
) -> QfcResult<HeraldedPlan> {
    if config.channels < 1 {
        return Err(QfcError::invalid("need at least one channel"));
    }
    if config.duration_s.is_nan() || config.duration_s <= 0.0 {
        return Err(QfcError::invalid("duration must be positive"));
    }
    if !(0.0..=1.0).contains(&config.collection_efficiency) {
        return Err(QfcError::invalid(format!(
            "collection efficiency must be in [0, 1], got {}",
            config.collection_efficiency
        )));
    }
    config.detector.try_validate()?;
    let tau = source.ring().coincidence_decay_time();
    let linewidth_hz = source.ring().linewidth().hz();
    let duration_ps = cast::f64_to_i64(config.duration_s * 1e12);

    // Supervision: log the schedule, recover pump lock losses, and
    // quarantine channels with mostly-dead detectors.
    let mut health = HealthReport::pristine();
    let policy = SupervisorPolicy::default();
    supervisor::record_schedule_faults(schedule, config.duration_s, &mut health);
    let relocks =
        supervisor::plan_pump_relocks(schedule, config.duration_s, &policy, seed, &mut health)?;
    let live = supervisor::live_fraction(&relocks, config.duration_s);
    let survivors = supervisor::partition_channels(
        schedule,
        config.channels,
        config.duration_s,
        &policy,
        "heralded experiment",
        &mut health,
    )?;

    // Per-channel generation rates, with pump faults and lock-loss
    // outages folded in. Multiplication by the exact 1.0 an empty
    // schedule produces leaves the rate bit-identical.
    let rates: Vec<f64> = survivors
        .iter()
        .map(|&m| {
            source.try_pair_rate_cw(m).map(|r| {
                r * schedule.mean_pump_rate_factor(0.0, config.duration_s, linewidth_hz) * live
            })
        })
        .collect::<QfcResult<_>>()?;

    // Independent seed domains for the experiment's two stochastic
    // stages, so channel streams and the F2 pair run never alias.
    let channel_root = split_seed(seed, 1);
    let linewidth_root = split_seed(seed, 2);

    // Effective per-arm detector: fold passive collection into the
    // efficiency.
    let mut arm = config.detector;
    arm.efficiency *= config.collection_efficiency;

    Ok(HeraldedPlan {
        tau,
        duration_ps,
        survivors,
        rates,
        channel_root,
        linewidth_root,
        arm,
        health,
    })
}

/// Generates and detects one channel's signal/idler streams — the
/// per-channel shard body of the campaign decomposition. The streams
/// depend only on `(plan.channel_root, m)` and pure schedule queries, so
/// the bytes are identical in-process, on a pool worker, or in a
/// separate resumed process. `idx` is the channel's position among the
/// plan's survivors.
pub fn heralded_channel_task(
    config: &HeraldedConfig,
    schedule: &FaultSchedule,
    plan: &HeraldedPlan,
    idx: usize,
    m: u32,
) -> (TagStream, TagStream) {
    let mut rng = rng_from_seed(split_seed(plan.channel_root, u64::from(m)));
    let (mut s_true, mut i_true) =
        generate_pair_arrivals(&mut rng, plan.rates[idx], plan.tau, config.duration_s);
    // Sub-quarantine detector dropouts kill arrivals in their
    // windows (no RNG draws — a pure filter).
    s_true.retain(|&t| !schedule.detector_dead_at(m, Arm::Signal, cast::to_f64(t) * 1e-12));
    i_true.retain(|&t| !schedule.detector_dead_at(m, Arm::Idler, cast::to_f64(t) * 1e-12));
    let mut arm_m = plan.arm;
    arm_m.dark_count_rate_hz *= schedule.mean_dark_multiplier(m, 0.0, config.duration_s);
    (
        supervisor::apply_tdc_saturation(
            arm_m.detect(&mut rng, &s_true, plan.duration_ps),
            schedule,
        ),
        supervisor::apply_tdc_saturation(
            arm_m.detect(&mut rng, &i_true, plan.duration_ps),
            schedule,
        ),
    )
}

/// Draws one [`qfc_runtime::Shard`] of the F2 linewidth pair run — the
/// shot-range shard body of the campaign decomposition (the shard layout
/// is `qfc_runtime::shard_layout(linewidth_pairs, plan.linewidth_root)`,
/// i.e. the fixed `SHOT_SHARDS` decomposition). Returns the shard's
/// (signal, idler) tag lists; concatenating shard results in shard-index
/// order reproduces the single-process streams byte for byte.
pub fn heralded_linewidth_shard(
    config: &HeraldedConfig,
    tau: f64,
    shard: &qfc_runtime::Shard,
) -> LinewidthShard {
    let span_s = 10.0 * cast::to_f64(config.linewidth_pairs) * 1e-6; // sparse
    let mut rng = rng_from_seed(shard.seed);
    let mut a = Vec::with_capacity(cast::u64_to_usize(shard.len));
    let mut b = Vec::with_capacity(cast::u64_to_usize(shard.len));
    // qfc-lint: hot
    for _ in 0..shard.len {
        let t = rng.gen::<f64>() * span_s;
        let t_ps = cast::f64_to_i64(t * 1e12);
        if bernoulli(&mut rng, 0.05) {
            // Accidental: uncorrelated partner.
            a.push(t_ps);
            b.push(cast::f64_to_i64(rng.gen::<f64>() * span_s * 1e12));
        } else {
            let dt = exponential(&mut rng, 1.0 / tau);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let jitter_a =
                qfc_mathkit::rng::normal(&mut rng, 0.0, config.detector.jitter_sigma_ps);
            let jitter_b =
                qfc_mathkit::rng::normal(&mut rng, 0.0, config.detector.jitter_sigma_ps);
            a.push(t_ps + cast::f64_to_i64(jitter_a));
            b.push(t_ps + cast::f64_to_i64(sign * dt * 1e12) + cast::f64_to_i64(jitter_b));
        }
    }
    (a, b)
}

/// One F2 linewidth shot shard: the (signal, idler) tag lists in ps.
pub type LinewidthShard = (Vec<i64>, Vec<i64>);

/// The shard-order merge of [`heralded_linewidth_shard`] results:
/// concatenates per-shard tag lists into the full (signal, idler) pair.
pub fn merge_linewidth_shards(
    config: &HeraldedConfig,
) -> impl FnOnce(Vec<LinewidthShard>) -> LinewidthShard + '_ {
    |shards| {
        let mut a = Vec::with_capacity(config.linewidth_pairs);
        let mut b = Vec::with_capacity(config.linewidth_pairs);
        for (sa, sb) in shards {
            a.extend_from_slice(&sa);
            b.extend_from_slice(&sb);
        }
        (a, b)
    }
}

/// The pure analysis stage of the §II run: folds the per-channel streams
/// and the merged F2 tag lists into the final [`HeraldedRun`]. Consumes
/// no RNG — given identical inputs it produces identical bytes, so the
/// campaign merge step and the single-process driver share it.
///
/// # Errors
///
/// [`QfcError::InsufficientData`]/[`QfcError::FitDivergence`] when the
/// F2 histogram cannot yield a linewidth.
pub fn assemble_heralded_run(
    config: &HeraldedConfig,
    plan: HeraldedPlan,
    signal_streams: Vec<TagStream>,
    idler_streams: Vec<TagStream>,
    linewidth_a: Vec<i64>,
    linewidth_b: Vec<i64>,
) -> QfcResult<HeraldedRun> {
    let indexed: Vec<(usize, u32)> = plan.survivors.iter().copied().enumerate().collect();

    // F1 coincidence matrix: every signal×idler cell is an independent
    // pure count over already-fixed streams (surviving channels only).
    let n = plan.survivors.len();
    let cells: Vec<usize> = (0..n * n).collect();
    let flat = qfc_runtime::par_map(&cells, |&cell| {
        qfc_timetag::coincidence::count_coincidences(
            &signal_streams[cell / n],
            &idler_streams[cell % n],
            config.coincidence_window_ps,
            0,
        )
    });
    let matrix: Vec<Vec<u64>> = flat.chunks(n).map(<[u64]>::to_vec).collect();

    // T1 per-channel figures (pure analysis of the fixed streams).
    let tau = plan.tau;
    let channels: Vec<ChannelResult> = qfc_runtime::par_map(&indexed, |&(idx, m)| {
        let s = &signal_streams[idx];
        let i = &idler_streams[idx];
        let offset_step = (3 * config.coincidence_window_ps).max(20_000);
        let car_result = measure_car(s, i, config.coincidence_window_ps, offset_step, 10);
        let car = if car_result.car.is_finite() {
            car_result.car
        } else {
            cast::to_f64(car_result.coincidences)
        };
        let s_rate = s.rate_hz(config.duration_s);
        let i_rate = i.rate_hz(config.duration_s);
        let c_rate = cast::to_f64(car_result.coincidences) / config.duration_s;
        // Inferred generation rate via the calibrated arm efficiencies:
        // R = (C − A)/(η_s·η_i·capture), where `capture` is the fraction
        // of the two-sided-exponential correlation inside the window.
        // (The textbook S_s·S_i/C estimator needs signal-dominated
        // singles; with dark-dominated InGaAs singles it is unusable.)
        let eta = config.detector.efficiency * config.collection_efficiency;
        let capture = 1.0 - (-(cast::to_f64(config.coincidence_window_ps) * 0.5e-12) / tau).exp();
        let net_rate =
            (cast::to_f64(car_result.coincidences) - car_result.accidentals) / config.duration_s;
        let inferred = (net_rate / (eta * eta * capture)).max(0.0);
        ChannelResult {
            m,
            signal_singles_hz: s_rate,
            idler_singles_hz: i_rate,
            coincidence_rate_hz: c_rate,
            inferred_pair_rate_hz: inferred,
            car,
        }
    });

    let hist = cross_correlation_histogram(
        &TagStream::from_unsorted(linewidth_a),
        &TagStream::from_unsorted(linewidth_b),
        config.histogram_range_ps,
        config.histogram_bin_ps,
    );
    let linewidth = try_extract_linewidth(&hist)?;

    Ok(HeraldedRun {
        report: HeraldedReport {
            channels,
            coincidence_matrix: matrix,
            linewidth,
            duration_s: config.duration_s,
        },
        health: plan.health,
    })
}

/// Configuration of the F3 stability run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityConfig {
    /// Length of the run, days (paper: several weeks → 21).
    pub days: u32,
    /// One rate sample is integrated over this many seconds.
    pub sample_integration_s: f64,
    /// Samples per day.
    pub samples_per_day: u32,
    /// Environmental drift model.
    pub drift: DriftModel,
}

impl StabilityConfig {
    /// Three weeks, one daily sample integrated for 12 h — the cadence
    /// of a long-term source characterization.
    pub fn paper() -> Self {
        Self {
            days: 21,
            sample_integration_s: 12.0 * 3600.0,
            samples_per_day: 1,
            drift: DriftModel::laboratory(),
        }
    }
}

/// Result of the F3 stability run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityReport {
    /// (time in days, measured coincidence rate in Hz) samples.
    pub series: Vec<(f64, f64)>,
    /// Peak-to-peak fluctuation relative to the mean.
    pub relative_fluctuation: f64,
    /// Whether the pump scheme was passively stable.
    pub self_locked: bool,
}

impl StabilityReport {
    /// Comparison rows (paper: < 5 % fluctuation for self-locked).
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§II long-term stability (F3)");
        if self.self_locked {
            r.push(Comparison::new(
                "F3",
                "self-locked relative fluctuation (weeks)",
                0.05,
                self.relative_fluctuation,
                "",
                Expectation::AtMost,
            ));
        } else {
            r.push(Comparison::new(
                "F3",
                "free-running relative fluctuation (weeks)",
                0.05,
                self.relative_fluctuation,
                "",
                Expectation::AtLeast,
            ));
        }
        r
    }
}

/// Runs the F3 stability experiment for the source's pump scheme.
///
/// The channel-1 coincidence rate is sampled over the configured
/// schedule. Slow environmental drift detunes the pump from the
/// resonance; the self-locked scheme tracks it passively, an unlocked
/// external laser does not, and the pair rate falls as the fourth power
/// of the pump field response (both pump photons must enter the cavity).
pub fn run_stability_experiment(
    source: &QfcSource,
    config: &StabilityConfig,
    seed: u64,
) -> StabilityReport {
    let mut rng = rng_from_seed(seed);
    let base_rate = source.pair_rate_cw(1);
    // Detected coincidence rate at nominal detuning.
    let het = HeraldedConfig::paper();
    let eta = het.detector.efficiency * het.collection_efficiency;
    let detected = base_rate * eta * eta;
    let lw = source.ring().linewidth().hz();

    let mut series = Vec::new();
    let mut walk = 0.0f64;
    let total_samples = config.days * config.samples_per_day;
    for k in 0..total_samples {
        let t_days = cast::to_f64(k + 1) / cast::to_f64(config.samples_per_day);
        // Random-walk excursion in units of the per-√day sigma.
        walk += qfc_mathkit::rng::standard_normal(&mut rng)
            / (cast::to_f64(config.samples_per_day)).sqrt();
        let det = residual_detuning(source.pump(), &config.drift, walk / t_days.sqrt(), t_days);
        // Pump power response of the resonance (both pump photons).
        let response = qfc_mathkit::special::lorentzian(det.hz(), 0.0, lw);
        let rate = detected * response * response;
        // Shot noise of the sample.
        let counts = poisson(&mut rng, rate * config.sample_integration_s);
        series.push((t_days, cast::to_f64(counts) / config.sample_integration_s));
    }
    let rates: Vec<f64> = series.iter().map(|s| s.1).collect();
    StabilityReport {
        relative_fluctuation: relative_fluctuation(&rates),
        series,
        self_locked: source.pump().is_passively_stable(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_photonics::pump::PumpConfig;
    use qfc_photonics::units::Power;

    fn fast_source() -> QfcSource {
        QfcSource::paper_device()
    }

    #[test]
    fn fast_demo_run_produces_coincidences() {
        let report = run_heralded_experiment(&fast_source(), &HeraldedConfig::fast_demo(), 1);
        assert_eq!(report.channels.len(), 3);
        for c in &report.channels {
            assert!(c.coincidence_rate_hz > 0.5, "m={}: {c:?}", c.m);
            assert!(c.car > 3.0, "m={}: CAR {}", c.m, c.car);
        }
    }

    #[test]
    fn matrix_is_diagonal_dominated() {
        let report = run_heralded_experiment(&fast_source(), &HeraldedConfig::fast_demo(), 2);
        assert!(report.matrix_contrast() > 3.0, "contrast {}", report.matrix_contrast());
    }

    #[test]
    fn linewidth_recovered_near_110mhz() {
        let mut cfg = HeraldedConfig::fast_demo();
        cfg.duration_s = 1.0;
        cfg.channels = 1;
        cfg.linewidth_pairs = 30_000;
        let report = run_heralded_experiment(&fast_source(), &cfg, 3);
        let lw = report.linewidth.linewidth_hz;
        assert!((lw - 110e6).abs() / 110e6 < 0.15, "Δν = {} MHz", lw / 1e6);
    }

    #[test]
    fn inferred_rate_tracks_generated_rate() {
        let mut cfg = HeraldedConfig::fast_demo();
        cfg.duration_s = 30.0;
        cfg.channels = 1;
        cfg.detector.dark_count_rate_hz = 100.0;
        cfg.linewidth_pairs = 1000;
        let report = run_heralded_experiment(&fast_source(), &cfg, 4);
        let generated = fast_source().pair_rate_cw(1);
        let inferred = report.channels[0].inferred_pair_rate_hz;
        assert!(
            (inferred - generated).abs() / generated < 0.3,
            "inferred {inferred} vs generated {generated}"
        );
    }

    #[test]
    fn stability_self_locked_beats_free_running() {
        let cfg = StabilityConfig::paper();
        let locked = run_stability_experiment(&fast_source(), &cfg, 5);
        assert!(locked.self_locked);
        let free = run_stability_experiment(
            &fast_source().with_pump(PumpConfig::ExternalCw {
                power: Power::from_mw(15.0),
                actively_stabilized: false,
            }),
            &cfg,
            5,
        );
        assert!(!free.self_locked);
        assert!(
            locked.relative_fluctuation < free.relative_fluctuation,
            "locked {} vs free {}",
            locked.relative_fluctuation,
            free.relative_fluctuation
        );
        assert!(free.relative_fluctuation > 0.05);
    }

    #[test]
    fn report_rows_generated() {
        let report = run_heralded_experiment(&fast_source(), &HeraldedConfig::fast_demo(), 6);
        let rows = report.to_report();
        assert_eq!(rows.comparisons.len(), 6);
        assert!(rows.render().contains("F2"));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let mut cfg = HeraldedConfig::fast_demo();
        cfg.channels = 0;
        let _ = run_heralded_experiment(&fast_source(), &cfg, 1);
    }

    #[test]
    fn empty_schedule_matches_legacy_run() {
        let cfg = HeraldedConfig::fast_demo();
        let legacy = run_heralded_experiment(&fast_source(), &cfg, 7);
        let run =
            try_run_heralded_experiment(&fast_source(), &cfg, 7, &FaultSchedule::empty())
                .expect("clean run");
        assert!(run.health.is_pristine());
        assert_eq!(
            serde_json::to_string(&legacy).expect("json"),
            serde_json::to_string(&run.report).expect("json"),
        );
    }

    #[test]
    fn stress_schedule_completes_and_records_health() {
        let cfg = HeraldedConfig::fast_demo();
        let schedule = qfc_faults::FaultSchedule::stress(3, cfg.duration_s);
        let run = try_run_heralded_experiment(&fast_source(), &cfg, 7, &schedule)
            .expect("run survives the stress schedule");
        assert!(!run.health.is_pristine());
        assert_eq!(run.health.faults_injected.len(), schedule.events().len());
        // The lock loss was recovered and cost integration time.
        assert!(run.health.outage_s > 0.0);
        for c in &run.report.channels {
            assert!(c.car.is_finite(), "m={}: CAR {}", c.m, c.car);
            assert!(c.inferred_pair_rate_hz.is_finite());
        }
        assert!(run.to_report().render().contains("health:"));
    }

    #[test]
    fn zero_duration_is_invalid_parameter() {
        let mut cfg = HeraldedConfig::fast_demo();
        cfg.duration_s = 0.0;
        let err = try_run_heralded_experiment(
            &fast_source(),
            &cfg,
            1,
            &FaultSchedule::empty(),
        )
        .expect_err("rejected");
        assert!(matches!(err, QfcError::InvalidParameter { .. }));
    }
}
