//! The Clauser–Horne–Shimony–Holt (CHSH) inequality — the §IV
//! entanglement witness.
//!
//! For time-bin qubits the analyzers are unbalanced interferometers whose
//! phases select equatorial measurement axes; a Bell state of visibility
//! `V` yields `S = 2√2·V`, so any raw visibility above `1/√2 ≈ 70.7 %`
//! violates the local bound `S ≤ 2`. The paper measures `V = 83 %` ⇒
//! `S ≈ 2.35`.

use serde::{Deserialize, Serialize};

use crate::density::DensityMatrix;
use crate::ops::equatorial_observable;

/// The local-hidden-variable bound.
pub const CLASSICAL_BOUND: f64 = 2.0;

/// The quantum (Tsirelson) bound `2√2`.
pub const TSIRELSON_BOUND: f64 = 2.0 * std::f64::consts::SQRT_2;

/// Measurement phases of the four CHSH settings `(a, a′, b, b′)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChshSettings {
    /// Alice's first analyzer phase.
    pub a: f64,
    /// Alice's second analyzer phase.
    pub a_prime: f64,
    /// Bob's first analyzer phase.
    pub b: f64,
    /// Bob's second analyzer phase.
    pub b_prime: f64,
}

impl ChshSettings {
    /// Settings that are optimal for `|Φ⁺⟩` with equatorial analyzers:
    /// correlations go as `cos(a + b)`, so
    /// `a = 0, a′ = π/2, b = −π/4, b′ = π/4` give `S = 2√2`.
    pub fn optimal_for_phi_plus() -> Self {
        use std::f64::consts::FRAC_PI_2;
        use std::f64::consts::FRAC_PI_4;
        Self {
            a: 0.0,
            a_prime: FRAC_PI_2,
            b: -FRAC_PI_4,
            b_prime: FRAC_PI_4,
        }
    }
}

impl Default for ChshSettings {
    fn default() -> Self {
        Self::optimal_for_phi_plus()
    }
}

/// Correlation `E(α, β) = ⟨O(α) ⊗ O(β)⟩` for equatorial observables at
/// analyzer phases `α` and `β`.
///
/// # Panics
///
/// Panics unless `rho` is a two-qubit state.
pub fn correlation(rho: &DensityMatrix, alpha: f64, beta: f64) -> f64 {
    assert_eq!(rho.qubits(), 2, "CHSH needs a two-qubit state");
    let obs = equatorial_observable(alpha).kron(&equatorial_observable(beta));
    rho.expectation(&obs)
}

/// The CHSH combination
/// `S = |E(a,b) + E(a,b′) + E(a′,b) − E(a′,b′)|`.
pub fn s_value(rho: &DensityMatrix, settings: &ChshSettings) -> f64 {
    let e_ab = correlation(rho, settings.a, settings.b);
    let e_ab2 = correlation(rho, settings.a, settings.b_prime);
    let e_a2b = correlation(rho, settings.a_prime, settings.b);
    let e_a2b2 = correlation(rho, settings.a_prime, settings.b_prime);
    (e_ab + e_ab2 + e_a2b - e_a2b2).abs()
}

/// Predicted CHSH value for a fringe visibility `V`: `S = 2√2·V`.
pub fn s_from_visibility(visibility: f64) -> f64 {
    TSIRELSON_BOUND * visibility.clamp(0.0, 1.0)
}

/// Minimum raw visibility that still violates the classical bound:
/// `V > 1/√2`.
pub fn visibility_threshold() -> f64 {
    1.0 / std::f64::consts::SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::{bell_phi_plus, werner_state};
    use crate::state::PureState;

    #[test]
    fn bell_state_reaches_tsirelson() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let s = s_value(&rho, &ChshSettings::optimal_for_phi_plus());
        assert!((s - TSIRELSON_BOUND).abs() < 1e-9, "S = {s}");
    }

    #[test]
    fn correlation_follows_cosine_law() {
        // For |Φ⁺⟩ with equatorial analyzers, E(α, β) = cos(α + β).
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        for (a, b) in [(0.0, 0.0), (0.4, 0.3), (1.2, -0.5)] {
            let e = correlation(&rho, a, b);
            assert!((e - (a + b).cos()).abs() < 1e-9, "E({a},{b}) = {e}");
        }
    }

    #[test]
    fn werner_s_scales_with_visibility() {
        for v in [0.5, 0.71, 0.83, 1.0] {
            let rho = werner_state(v, 0.0);
            let s = s_value(&rho, &ChshSettings::optimal_for_phi_plus());
            assert!((s - s_from_visibility(v)).abs() < 1e-9, "V={v}: S={s}");
        }
    }

    #[test]
    fn paper_visibility_violates() {
        // The paper's 83 % raw visibility.
        let s = s_from_visibility(0.83);
        assert!(s > CLASSICAL_BOUND, "S = {s}");
        assert!((s - 2.347).abs() < 0.01);
    }

    #[test]
    fn sub_threshold_visibility_does_not_violate() {
        let s = s_from_visibility(0.70);
        assert!(s < CLASSICAL_BOUND);
        assert!(s_from_visibility(visibility_threshold()) <= CLASSICAL_BOUND + 1e-12);
    }

    #[test]
    fn product_state_respects_classical_bound() {
        let prod = PureState::plus().tensor(&PureState::plus());
        let rho = DensityMatrix::from_pure(&prod);
        // Scan a few settings; a separable state can reach at most 2.
        for off in [0.0, 0.3, 0.9] {
            let s = s_value(
                &rho,
                &ChshSettings {
                    a: off,
                    a_prime: off + std::f64::consts::FRAC_PI_2,
                    b: off - std::f64::consts::FRAC_PI_4,
                    b_prime: off + std::f64::consts::FRAC_PI_4,
                },
            );
            assert!(s <= CLASSICAL_BOUND + 1e-9, "S = {s}");
        }
    }

    #[test]
    fn maximally_mixed_gives_zero() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!(s_value(&rho, &ChshSettings::default()).abs() < 1e-12);
    }
}
