//! Typed physical quantities.
//!
//! Newtypes keep frequencies, wavelengths and powers statically distinct
//! (C-NEWTYPE): a detuning in Hz cannot be confused with a wavelength in
//! meters, and optical powers convert explicitly between watts and dBm.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::constants::SPEED_OF_LIGHT;

/// Optical frequency in hertz.
///
/// # Examples
///
/// ```
/// use qfc_photonics::units::Frequency;
/// let f = Frequency::from_thz(193.1);
/// assert!((f.ghz() - 193_100.0).abs() < 1e-6);
/// assert!((f.wavelength().nm() - 1552.52).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from hertz.
    pub const fn from_hz(hz: f64) -> Self {
        Self(hz)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Creates a frequency from terahertz.
    pub fn from_thz(thz: f64) -> Self {
        Self(thz * 1e12)
    }

    /// Value in hertz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Value in megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Value in gigahertz.
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Value in terahertz.
    pub fn thz(self) -> f64 {
        self.0 / 1e12
    }

    /// Angular frequency `ω = 2πf` in rad/s.
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }

    /// Corresponding vacuum wavelength.
    pub fn wavelength(self) -> Wavelength {
        Wavelength::from_m(SPEED_OF_LIGHT / self.0)
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }
}

impl Add for Frequency {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Frequency {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Neg for Frequency {
    type Output = Self;
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl Mul<f64> for Frequency {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Frequency {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div for Frequency {
    type Output = f64;
    fn div(self, rhs: Self) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e12 {
            write!(f, "{:.4} THz", self.thz())
        } else if self.0.abs() >= 1e9 {
            write!(f, "{:.3} GHz", self.ghz())
        } else {
            write!(f, "{:.3} MHz", self.mhz())
        }
    }
}

/// Vacuum wavelength in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Wavelength(f64);

impl Wavelength {
    /// Creates a wavelength from meters.
    pub const fn from_m(m: f64) -> Self {
        Self(m)
    }

    /// Creates a wavelength from nanometers.
    pub fn from_nm(nm: f64) -> Self {
        Self(nm * 1e-9)
    }

    /// Value in meters.
    pub fn m(self) -> f64 {
        self.0
    }

    /// Value in nanometers.
    pub fn nm(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in micrometers.
    pub fn um(self) -> f64 {
        self.0 * 1e6
    }

    /// Corresponding optical frequency.
    pub fn frequency(self) -> Frequency {
        Frequency::from_hz(SPEED_OF_LIGHT / self.0)
    }
}

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} nm", self.nm())
    }
}

/// Optical power in watts.
///
/// ```
/// use qfc_photonics::units::Power;
/// let p = Power::from_mw(1.0);
/// assert!((p.dbm() - 0.0).abs() < 1e-12);
/// assert!((Power::from_dbm(10.0).mw() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Creates a power from watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative.
    pub fn from_w(w: f64) -> Self {
        assert!(w >= 0.0, "power must be non-negative");
        Self(w)
    }

    /// Creates a power from milliwatts.
    pub fn from_mw(mw: f64) -> Self {
        Self::from_w(mw * 1e-3)
    }

    /// Creates a power from a dBm level.
    pub fn from_dbm(dbm: f64) -> Self {
        Self(1e-3 * 10f64.powf(dbm / 10.0))
    }

    /// Value in watts.
    pub fn w(self) -> f64 {
        self.0
    }

    /// Value in milliwatts.
    pub fn mw(self) -> f64 {
        self.0 * 1e3
    }

    /// Level in dBm (`-inf` for zero power).
    pub fn dbm(self) -> f64 {
        10.0 * (self.0 / 1e-3).log10()
    }
}

impl Add for Power {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        assert!(rhs >= 0.0, "power scale factor must be non-negative");
        Self(self.0 * rhs)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mW", self.mw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_ghz(200.0);
        assert_eq!(f.hz(), 2e11);
        assert_eq!(f.mhz(), 2e5);
        assert!((f.thz() - 0.2).abs() < 1e-12);
        assert!((f.angular() - 2.0 * std::f64::consts::PI * 2e11).abs() < 1.0);
    }

    #[test]
    fn frequency_wavelength_roundtrip() {
        let w = Wavelength::from_nm(1550.0);
        let back = w.frequency().wavelength();
        assert!((back.nm() - 1550.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_arithmetic() {
        let a = Frequency::from_ghz(100.0);
        let b = Frequency::from_ghz(40.0);
        assert_eq!((a + b).ghz(), 140.0);
        assert_eq!((a - b).ghz(), 60.0);
        assert_eq!((-b).ghz(), -40.0);
        assert_eq!((a * 2.0).ghz(), 200.0);
        assert_eq!((a / 2.0).ghz(), 50.0);
        assert_eq!(a / b, 2.5);
    }

    #[test]
    fn power_dbm_roundtrip() {
        for &mw in &[0.1, 1.0, 15.0, 100.0] {
            let p = Power::from_mw(mw);
            assert!((Power::from_dbm(p.dbm()).mw() - mw).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let _ = Power::from_w(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Frequency::from_thz(193.1)), "193.1000 THz");
        assert_eq!(format!("{}", Frequency::from_ghz(200.0)), "200.000 GHz");
        assert_eq!(format!("{}", Frequency::from_hz(110e6)), "110.000 MHz");
        assert_eq!(format!("{}", Wavelength::from_nm(1550.0)), "1550.00 nm");
        assert_eq!(format!("{}", Power::from_mw(15.0)), "15.000 mW");
    }
}
