//! Vectorized spectral sweeps: structure-of-arrays batch evaluation of
//! the ring/FWM/pump models over wide parameter grids.
//!
//! Every parameter-scan figure (dispersion scans, the OPO power-law
//! threshold, channel-resolved comb spectra) is a pure map of a scalar
//! model over a grid. The scalar entry points ([`Microring::power_response`],
//! [`fwm::parametric_gain`], [`opo::output_power`], …) recompute
//! expensive per-device invariants — the Sellmeier/Cauchy group index,
//! the finesse `exp`/`sqrt`, the mode-grid dispersion — on *every* call.
//! The batch kernels in this module hoist those invariants out of the
//! loop once (through the very same scalar API, so the hoisted values
//! are bit-identical to what every scalar call would have computed) and
//! then replicate the remaining per-point arithmetic in plain indexed
//! `f64` slices with **exactly the scalar implementation's IEEE-754
//! operation sequence** — including the `±0.0` cross terms of
//! [`Complex64`](qfc_mathkit::complex::Complex64) division. IEEE
//! arithmetic is deterministic, so the batch output is byte-identical
//! (f64 bit pattern) to a point-by-point reference loop; the `*_scalar`
//! twins in this module *are* that reference loop, and the contract is
//! enforced by unit tests here, property tests in `tests/determinism.rs`,
//! and the `ring-dispersion-sweep` / `opo-threshold-sweep` workloads of
//! `qfc-bench`.
//!
//! Grids are chunked across the worker pool via
//! [`qfc_runtime::par_chunks`] with a fixed [`SWEEP_CHUNK`] layout, so
//! the split is independent of the thread count; the kernels are pure
//! (no RNG), which makes the result thread-count-invariant by
//! construction. Inner loops are annotated `// qfc-lint: hot` and carry
//! no per-point allocations or `Complex64` temporaries.
//!
//! ## Example
//!
//! ```
//! use qfc_photonics::ring::Microring;
//! use qfc_photonics::sweep::{self, BatchBuffers, SweepGrid};
//! use qfc_photonics::waveguide::Polarization;
//!
//! let ring = Microring::paper_device();
//! let f0 = ring.resonance(Polarization::Te, 3).hz();
//! let lw = ring.linewidth().hz();
//! let grid = SweepGrid::linspace(f0 - 5.0 * lw, f0 + 5.0 * lw, 1001);
//! let mut buf = BatchBuffers::new();
//! sweep::ring_power_response_batch(&ring, Polarization::Te, 3, &grid, &mut buf);
//! // Unity on resonance (grid midpoint), bit-identical to the scalar API.
//! assert!((buf.values()[500] - 1.0).abs() < 1e-9);
//! ```

use qfc_faults::{QfcError, QfcResult};
use qfc_mathkit::cast;

use crate::filter::{ChannelFilter, PassbandShape};
use crate::fwm;
use crate::jsa::PumpEnvelope;
use crate::opo;
use crate::ring::Microring;
use crate::units::{Frequency, Power};
use crate::waveguide::Polarization;

/// Fixed chunk size for [`qfc_runtime::par_chunks`] sweeps.
///
/// The chunk layout — and therefore the work decomposition — depends
/// only on the grid length, never on the thread count, so parallel
/// sweeps merge into the same byte sequence on any pool size. 1024
/// points amortize the per-chunk scheduling cost while keeping ~10⁵-
/// point grids spread over every realistic pool.
pub const SWEEP_CHUNK: usize = 1024;

/// A one-dimensional sweep grid: the sample points of a parameter scan.
///
/// Construct uniform grids with [`SweepGrid::linspace`] /
/// [`SweepGrid::try_linspace`] (which replicate the historical
/// `opo::transfer_curve` grid formula bit for bit) or wrap explicit
/// sample points with [`SweepGrid::from_points`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    points: Vec<f64>,
}

impl SweepGrid {
    /// Wraps explicit sample points (any spacing, any order).
    pub fn from_points(points: Vec<f64>) -> Self {
        Self { points }
    }

    /// Uniform grid of `n` points over `[min, max]`.
    ///
    /// Point `i` is `min + (max - min) * i / (n - 1)` — the exact
    /// expression (and IEEE operation order) the scalar
    /// [`opo::transfer_curve`] has always used, so sweeps rebuilt on
    /// this grid stay byte-identical to their point-by-point history.
    pub fn try_linspace(min: f64, max: f64, n: usize) -> QfcResult<Self> {
        if !(min.is_finite() && max.is_finite()) {
            return Err(QfcError::invalid("sweep grid endpoints must be finite"));
        }
        if n < 2 {
            return Err(QfcError::invalid("sweep grid needs at least two points"));
        }
        if max <= min {
            return Err(QfcError::invalid("sweep grid range must be increasing"));
        }
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            points.push(min + (max - min) * cast::to_f64(i) / cast::to_f64(n - 1));
        }
        Ok(Self { points })
    }

    /// Uniform grid of `n` points over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are not finite and increasing or `n < 2`
    /// (see [`Self::try_linspace`]).
    pub fn linspace(min: f64, max: f64, n: usize) -> Self {
        match Self::try_linspace(min, max, n) {
            Ok(g) => g,
            Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
        }
    }

    /// The sample points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Reusable structure-of-arrays output arena for batch sweeps.
///
/// Holds one flat `f64` buffer that every kernel resizes and fills;
/// reusing the same `BatchBuffers` across calls amortizes the single
/// allocation over an entire scan campaign.
#[derive(Debug, Clone, Default)]
pub struct BatchBuffers {
    values: Vec<f64>,
}

impl BatchBuffers {
    /// An empty arena (first kernel call sizes it).
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-sized for `n`-value sweeps.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            values: Vec::with_capacity(n),
        }
    }

    /// The values written by the most recent kernel call.
    ///
    /// Layout: one value per grid point for the 1-D kernels; for
    /// [`pair_rate_channels_batch`] the buffer is channel-major
    /// (`values[(m - 1) * n_points + i]`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Resizes to `n` zeroed slots and hands out the write window.
    fn reset(&mut self, n: usize) -> &mut [f64] {
        self.values.clear();
        self.values.resize(n, 0.0);
        &mut self.values
    }
}

/// Runs `eval` over fixed-size chunks of `points` on the worker pool and
/// scatters the per-chunk rows into `out` in chunk order.
///
/// The chunk layout matches `points.chunks(SWEEP_CHUNK)` regardless of
/// the thread count, and `eval` must be pure, so the bytes written to
/// `out` are identical on any pool size. Per-chunk staging rows are
/// allocated *outside* the annotated hot loops.
fn eval_chunked<F>(points: &[f64], out: &mut [f64], eval: F)
where
    F: Fn(&[f64], &mut [f64]) + Sync,
{
    let rows = qfc_runtime::par_chunks(points, SWEEP_CHUNK, |_, chunk| {
        let mut row = vec![0.0f64; chunk.len()];
        eval(chunk, &mut row);
        row
    });
    let mut offset = 0usize;
    for row in rows {
        out[offset..offset + row.len()].copy_from_slice(&row);
        offset += row.len();
    }
}

/// Batch [`Microring::power_response`] of mode `m` over a frequency grid
/// (Hz): the normalized Lorentzian drop-port response at every point.
///
/// Byte-identical to [`ring_power_response_scalar`]. The linewidth and
/// resonance are hoisted through the scalar API; the inner loop
/// replicates `Complex64::real(½δν) / Complex64::new(½δν, Δ)` followed
/// by `norm_sqr` as plain `f64` ops, including the `±0.0` cross terms
/// of the complex multiply.
pub fn ring_power_response_batch(
    ring: &Microring,
    pol: Polarization,
    m: i32,
    freqs_hz: &SweepGrid,
    buf: &mut BatchBuffers,
) {
    let half = 0.5 * ring.linewidth().hz();
    let res = ring.resonance(pol, m).hz();
    let out = buf.reset(freqs_hz.len());
    eval_chunked(freqs_hz.points(), out, |chunk, row| {
        // qfc-lint: hot
        for (o, &f) in row.iter_mut().zip(chunk) {
            let det = f - res;
            let d = half * half + det * det;
            let ir = half / d;
            let ii = -det / d;
            let re = half * ir - 0.0 * ii;
            let im = half * ii + 0.0 * ir;
            *o = re * re + im * im;
        }
    });
}

/// Point-by-point reference for [`ring_power_response_batch`]: the
/// scalar oracle the batch kernel must match bit for bit.
pub fn ring_power_response_scalar(
    ring: &Microring,
    pol: Polarization,
    m: i32,
    freqs_hz: &SweepGrid,
    buf: &mut BatchBuffers,
) {
    let out = buf.reset(freqs_hz.len());
    for (o, &f) in out.iter_mut().zip(freqs_hz.points()) {
        *o = ring.power_response(pol, m, Frequency::from_hz(f));
    }
}

/// Batch [`fwm::parametric_gain`] over a pump-power grid (W):
/// `ξ = γ·P·FE²·L` at every point, with γ (Cauchy nonlinear parameter),
/// FE² and L hoisted out of the loop.
///
/// Byte-identical to [`fwm_gain_scalar`].
pub fn fwm_gain_batch(ring: &Microring, powers_w: &SweepGrid, buf: &mut BatchBuffers) {
    let gamma = ring
        .waveguide()
        .nonlinear_parameter(ring.resonance(Polarization::Te, 0).wavelength());
    let fe = ring.field_enhancement_power();
    let circ = ring.circumference();
    let out = buf.reset(powers_w.len());
    eval_chunked(powers_w.points(), out, |chunk, row| {
        // qfc-lint: hot
        for (o, &p) in row.iter_mut().zip(chunk) {
            *o = gamma * (p * fe) * circ;
        }
    });
}

/// Point-by-point reference for [`fwm_gain_batch`].
pub fn fwm_gain_scalar(ring: &Microring, powers_w: &SweepGrid, buf: &mut BatchBuffers) {
    let out = buf.reset(powers_w.len());
    for (o, &p) in out.iter_mut().zip(powers_w.points()) {
        *o = fwm::parametric_gain(ring, Power::from_w(p));
    }
}

/// Batch [`ChannelFilter::transmission`] over a frequency grid (Hz).
///
/// Byte-identical to [`filter_transmission_scalar`]; the passband shape
/// is matched once outside the loop, and each branch replicates the
/// scalar exponent expression (`ln2·x·x` resp. `ln2·x⁸`) verbatim.
pub fn filter_transmission_batch(
    filter: &ChannelFilter,
    freqs_hz: &SweepGrid,
    buf: &mut BatchBuffers,
) {
    let center = filter.center.hz();
    let half_bw = 0.5 * filter.bandwidth.hz();
    let peak = filter.peak_transmission;
    let out = buf.reset(freqs_hz.len());
    match filter.shape {
        PassbandShape::Gaussian => eval_chunked(freqs_hz.points(), out, |chunk, row| {
            // qfc-lint: hot
            for (o, &f) in row.iter_mut().zip(chunk) {
                let x = (f - center) / half_bw;
                let exponent = std::f64::consts::LN_2 * x * x;
                *o = peak * (-exponent).exp();
            }
        }),
        PassbandShape::FlatTop => eval_chunked(freqs_hz.points(), out, |chunk, row| {
            // qfc-lint: hot
            for (o, &f) in row.iter_mut().zip(chunk) {
                let x = (f - center) / half_bw;
                let exponent = std::f64::consts::LN_2 * x.powi(8);
                *o = peak * (-exponent).exp();
            }
        }),
    }
}

/// Point-by-point reference for [`filter_transmission_batch`].
pub fn filter_transmission_scalar(
    filter: &ChannelFilter,
    freqs_hz: &SweepGrid,
    buf: &mut BatchBuffers,
) {
    let out = buf.reset(freqs_hz.len());
    for (o, &f) in out.iter_mut().zip(freqs_hz.points()) {
        *o = filter.transmission(Frequency::from_hz(f));
    }
}

/// Batch [`crate::jsa::jsa_point_intensity`] along the signal-detuning
/// axis with the idler detuning pinned at `idler_detuning_hz` — a
/// horizontal slice through the (bare-envelope) joint spectral
/// intensity of channel pair `m`.
///
/// Byte-identical to [`jsa_slice_batch_scalar`]. The loaded linewidth,
/// the channel's grid mismatch, and the (constant) idler Lorentzian
/// field factor are hoisted; the loop replicates the pump envelope and
/// the two complex multiplies of the scalar oracle as `f64` pairs.
///
/// # Panics
///
/// Panics if `m == 0` (the pump mode itself cannot be a pair channel).
pub fn jsa_slice_batch(
    ring: &Microring,
    pol: Polarization,
    m: u32,
    pump: PumpEnvelope,
    idler_detuning_hz: f64,
    signal_detunings_hz: &SweepGrid,
    buf: &mut BatchBuffers,
) {
    assert!(m > 0, "pair channel must differ from the pump mode");
    let lw = ring.linewidth().hz();
    let f_s0 = ring.resonance(pol, cast::u32_to_i32(m)).hz();
    let f_i0 = ring.resonance(pol, -cast::u32_to_i32(m)).hz();
    let f_p0 = ring.resonance(pol, 0).hz();
    let grid_mismatch = f_s0 + f_i0 - 2.0 * f_p0;
    let di = idler_detuning_hz;
    // Hoisted idler Lorentzian field ℓ(dᵢ): the same f64 sequence as
    // `Complex64::real(h)/Complex64::new(h, dᵢ)` in the scalar path.
    let half_lw = 0.5 * lw;
    let (lir, lii) = {
        let d = half_lw * half_lw + di * di;
        let ir = half_lw / d;
        let ii = -di / d;
        (half_lw * ir - 0.0 * ii, half_lw * ii + 0.0 * ir)
    };
    let out = buf.reset(signal_detunings_hz.len());
    match pump {
        PumpEnvelope::Gaussian { fwhm } => {
            let sigma = fwhm / (8.0 * std::f64::consts::LN_2).sqrt();
            eval_chunked(signal_detunings_hz.points(), out, |chunk, row| {
                // qfc-lint: hot
                for (o, &ds) in row.iter_mut().zip(chunk) {
                    let sum_det = grid_mismatch + ds + di;
                    let ar = (-0.25 * (sum_det / sigma).powi(2)).exp();
                    let ai = 0.0;
                    let d = half_lw * half_lw + ds * ds;
                    let ir = half_lw / d;
                    let ii = -ds / d;
                    let lsr = half_lw * ir - 0.0 * ii;
                    let lsi = half_lw * ii + 0.0 * ir;
                    let pr = ar * lsr - ai * lsi;
                    let pi = ar * lsi + ai * lsr;
                    let qr = pr * lir - pi * lii;
                    let qi = pr * lii + pi * lir;
                    *o = qr * qr + qi * qi;
                }
            });
        }
        PumpEnvelope::Lorentzian { fwhm } => {
            let half_p = 0.5 * fwhm;
            eval_chunked(signal_detunings_hz.points(), out, |chunk, row| {
                // qfc-lint: hot
                for (o, &ds) in row.iter_mut().zip(chunk) {
                    let sum_det = grid_mismatch + ds + di;
                    let dp = half_p * half_p + sum_det * sum_det;
                    let ipr = half_p / dp;
                    let ipi = -sum_det / dp;
                    let ar = half_p * ipr - 0.0 * ipi;
                    let ai = half_p * ipi + 0.0 * ipr;
                    let d = half_lw * half_lw + ds * ds;
                    let ir = half_lw / d;
                    let ii = -ds / d;
                    let lsr = half_lw * ir - 0.0 * ii;
                    let lsi = half_lw * ii + 0.0 * ir;
                    let pr = ar * lsr - ai * lsi;
                    let pi = ar * lsi + ai * lsr;
                    let qr = pr * lir - pi * lii;
                    let qi = pr * lii + pi * lir;
                    *o = qr * qr + qi * qi;
                }
            });
        }
    }
}

/// Point-by-point reference for [`jsa_slice_batch`].
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn jsa_slice_batch_scalar(
    ring: &Microring,
    pol: Polarization,
    m: u32,
    pump: PumpEnvelope,
    idler_detuning_hz: f64,
    signal_detunings_hz: &SweepGrid,
    buf: &mut BatchBuffers,
) {
    let out = buf.reset(signal_detunings_hz.len());
    for (o, &ds) in out.iter_mut().zip(signal_detunings_hz.points()) {
        *o = crate::jsa::jsa_point_intensity(ring, pol, m, pump, ds, idler_detuning_hz);
    }
}

/// Batch [`opo::output_power`] over a pump-power grid (W): the full
/// OPO transfer curve (quadratic spontaneous floor below threshold,
/// linear depleted-pump branch above) at every point.
///
/// Byte-identical to [`opo_transfer_scalar`]. The threshold, slope
/// efficiency, drop transmission, linewidth, signal frequency and
/// nonlinear parameter are hoisted through the scalar API; the loop
/// replicates `below_threshold_output` and the branch arithmetic of
/// `opo::output_power` verbatim.
pub fn opo_transfer_batch(ring: &Microring, powers_w: &SweepGrid, buf: &mut BatchBuffers) {
    use crate::constants::PLANCK;
    let p_th = opo::threshold(ring).w();
    let gamma = ring
        .waveguide()
        .nonlinear_parameter(ring.resonance(Polarization::Te, 0).wavelength());
    let fe = ring.field_enhancement_power();
    let circ = ring.circumference();
    let lw = ring.linewidth().hz();
    let nu = ring.resonance(Polarization::Te, 1).hz();
    let drop = ring.drop_transmission_peak();
    let slope = opo::slope_efficiency(ring);
    let out = buf.reset(powers_w.len());
    eval_chunked(powers_w.points(), out, |chunk, row| {
        // qfc-lint: hot
        for (o, &p) in row.iter_mut().zip(chunk) {
            let pw = p.min(p_th);
            let xi = gamma * (pw * fe) * circ;
            let photon_rate = xi * xi * lw;
            let spont = photon_rate * PLANCK * nu * drop;
            *o = if p <= p_th {
                spont
            } else {
                spont + slope * (p - p_th)
            };
        }
    });
}

/// Point-by-point reference for [`opo_transfer_batch`].
pub fn opo_transfer_scalar(ring: &Microring, powers_w: &SweepGrid, buf: &mut BatchBuffers) {
    let out = buf.reset(powers_w.len());
    for (o, &p) in out.iter_mut().zip(powers_w.points()) {
        *o = opo::output_power(ring, Power::from_w(p)).w();
    }
}

/// SFWM spectral envelopes of channel pairs `1..=max_m` — the short
/// per-channel axis of a comb sweep.
///
/// The channel axis is at most a few dozen entries, so this calls the
/// scalar [`fwm::spectral_envelope`] directly (bit-identity is then a
/// tautology); the returned row is the hoisted per-channel invariant
/// that [`pair_rate_channels_batch`] reuses across every sweep point.
pub fn channel_envelopes(ring: &Microring, pol: Polarization, max_m: u32) -> Vec<f64> {
    (1..=max_m)
        .map(|m| fwm::spectral_envelope(ring, pol, m))
        .collect()
}

/// Batch [`fwm::pair_rate_cw`] for **all** channel pairs `1..=max_m` ×
/// **all** pump powers (W): the channel-resolved comb brightness on a
/// power grid.
///
/// The output is channel-major: `buf.values()[(m - 1) * n + i]` is the
/// pair rate of channel `m` at grid point `i` (`n = powers_w.len()`).
/// γ, FE², L, δν and each channel's spectral envelope are hoisted; the
/// loop replicates `ξ·ξ·δν·envelope` with the scalar operation order.
/// Byte-identical to [`pair_rate_channels_scalar`].
pub fn pair_rate_channels_batch(
    ring: &Microring,
    pol: Polarization,
    powers_w: &SweepGrid,
    max_m: u32,
    buf: &mut BatchBuffers,
) {
    let envelopes = channel_envelopes(ring, pol, max_m);
    let gamma = ring
        .waveguide()
        .nonlinear_parameter(ring.resonance(Polarization::Te, 0).wavelength());
    let fe = ring.field_enhancement_power();
    let circ = ring.circumference();
    let lw = ring.linewidth().hz();
    let n = powers_w.len();
    let out = buf.reset(envelopes.len() * n);
    for (k, &env) in envelopes.iter().enumerate() {
        let row_out = &mut out[k * n..(k + 1) * n];
        eval_chunked(powers_w.points(), row_out, |chunk, row| {
            // qfc-lint: hot
            for (o, &p) in row.iter_mut().zip(chunk) {
                let xi = gamma * (p * fe) * circ;
                *o = xi * xi * lw * env;
            }
        });
    }
}

/// Point-by-point reference for [`pair_rate_channels_batch`] (same
/// channel-major layout).
pub fn pair_rate_channels_scalar(
    ring: &Microring,
    pol: Polarization,
    powers_w: &SweepGrid,
    max_m: u32,
    buf: &mut BatchBuffers,
) {
    let n = powers_w.len();
    let out = buf.reset(cast::u32_to_usize(max_m) * n);
    for m in 1..=max_m {
        let k = cast::u32_to_usize(m - 1);
        for (o, &p) in out[k * n..(k + 1) * n].iter_mut().zip(powers_w.points()) {
            *o = fwm::pair_rate_cw(ring, pol, Power::from_w(p), m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_runtime::with_threads;

    fn ring() -> Microring {
        Microring::paper_device()
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn linspace_replicates_transfer_curve_grid() {
        let r = ring();
        let pts = opo::transfer_curve(&r, Power::from_mw(1.0), Power::from_mw(40.0), 17);
        let grid = SweepGrid::linspace(1.0e-3, 40.0e-3, 17);
        for (gp, tp) in grid.points().iter().zip(&pts) {
            assert_eq!(gp.to_bits(), tp.pump_w.to_bits());
        }
    }

    #[test]
    fn try_linspace_rejects_bad_grids() {
        assert!(SweepGrid::try_linspace(0.0, 1.0, 1).is_err());
        assert!(SweepGrid::try_linspace(1.0, 1.0, 8).is_err());
        assert!(SweepGrid::try_linspace(2.0, 1.0, 8).is_err());
        assert!(SweepGrid::try_linspace(f64::NAN, 1.0, 8).is_err());
        let g = SweepGrid::try_linspace(0.0, 1.0, 2).expect("valid grid");
        assert_eq!(g.points(), &[0.0, 1.0]);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_panics_on_single_point() {
        let _ = SweepGrid::linspace(0.0, 1.0, 1);
    }

    #[test]
    fn ring_response_batch_matches_scalar_bits() {
        let r = ring();
        let lw = r.linewidth().hz();
        for m in [-40, -7, 0, 3, 40] {
            let f0 = r.resonance(Polarization::Te, m).hz();
            let grid = SweepGrid::linspace(f0 - 8.0 * lw, f0 + 8.0 * lw, 1311);
            let mut batch = BatchBuffers::new();
            let mut scalar = BatchBuffers::new();
            ring_power_response_batch(&r, Polarization::Te, m, &grid, &mut batch);
            ring_power_response_scalar(&r, Polarization::Te, m, &grid, &mut scalar);
            assert_eq!(bits(batch.values()), bits(scalar.values()), "m = {m}");
        }
    }

    #[test]
    fn fwm_gain_batch_matches_scalar_bits() {
        let r = ring();
        let grid = SweepGrid::linspace(1e-4, 50e-3, 777);
        let mut batch = BatchBuffers::new();
        let mut scalar = BatchBuffers::new();
        fwm_gain_batch(&r, &grid, &mut batch);
        fwm_gain_scalar(&r, &grid, &mut scalar);
        assert_eq!(bits(batch.values()), bits(scalar.values()));
    }

    #[test]
    fn filter_batch_matches_scalar_bits_for_both_shapes() {
        let center = Frequency::from_thz(193.1);
        let grid = SweepGrid::linspace(center.hz() - 400e9, center.hz() + 400e9, 901);
        for shape in [PassbandShape::Gaussian, PassbandShape::FlatTop] {
            let filter = ChannelFilter {
                center,
                bandwidth: Frequency::from_ghz(150.0),
                peak_transmission: 0.8,
                shape,
            };
            let mut batch = BatchBuffers::new();
            let mut scalar = BatchBuffers::new();
            filter_transmission_batch(&filter, &grid, &mut batch);
            filter_transmission_scalar(&filter, &grid, &mut scalar);
            assert_eq!(bits(batch.values()), bits(scalar.values()), "{shape:?}");
        }
    }

    #[test]
    fn jsa_slice_batch_matches_scalar_bits_for_both_envelopes() {
        let r = ring();
        let lw = r.linewidth().hz();
        let grid = SweepGrid::linspace(-6.0 * lw, 6.0 * lw, 513);
        for pump in [
            PumpEnvelope::Gaussian { fwhm: 220e6 },
            PumpEnvelope::Lorentzian { fwhm: 110e6 },
        ] {
            for di in [0.0, 0.7 * lw, -2.3 * lw] {
                let mut batch = BatchBuffers::new();
                let mut scalar = BatchBuffers::new();
                jsa_slice_batch(&r, Polarization::Te, 2, pump, di, &grid, &mut batch);
                jsa_slice_batch_scalar(&r, Polarization::Te, 2, pump, di, &grid, &mut scalar);
                assert_eq!(bits(batch.values()), bits(scalar.values()), "{pump:?} di={di}");
            }
        }
    }

    #[test]
    fn opo_transfer_batch_matches_scalar_bits_across_threshold() {
        let r = ring();
        let p_th = opo::threshold(&r).w();
        // Straddles the kink: both branches and the p == p_th boundary.
        let grid = SweepGrid::linspace(0.05 * p_th, 3.0 * p_th, 2501);
        let mut batch = BatchBuffers::new();
        let mut scalar = BatchBuffers::new();
        opo_transfer_batch(&r, &grid, &mut batch);
        opo_transfer_scalar(&r, &grid, &mut scalar);
        assert_eq!(bits(batch.values()), bits(scalar.values()));
    }

    #[test]
    fn pair_rate_channels_batch_matches_scalar_bits() {
        let r = ring();
        let grid = SweepGrid::linspace(1e-3, 20e-3, 97);
        let mut batch = BatchBuffers::new();
        let mut scalar = BatchBuffers::new();
        pair_rate_channels_batch(&r, Polarization::Te, &grid, 11, &mut batch);
        pair_rate_channels_scalar(&r, Polarization::Te, &grid, 11, &mut scalar);
        assert_eq!(batch.values().len(), 11 * 97);
        assert_eq!(bits(batch.values()), bits(scalar.values()));
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let r = ring();
        let f0 = r.resonance(Polarization::Te, 1).hz();
        let lw = r.linewidth().hz();
        // > 4 × SWEEP_CHUNK so the parallel path genuinely splits.
        let grid = SweepGrid::linspace(f0 - 5.0 * lw, f0 + 5.0 * lw, 4 * SWEEP_CHUNK + 37);
        let run = || {
            let mut buf = BatchBuffers::new();
            ring_power_response_batch(&r, Polarization::Te, 1, &grid, &mut buf);
            bits(buf.values())
        };
        let one = with_threads(1, run);
        assert_eq!(one, with_threads(4, run));
        assert_eq!(one, with_threads(8, run));
    }

    #[test]
    fn empty_grid_yields_empty_buffer() {
        let r = ring();
        let grid = SweepGrid::from_points(Vec::new());
        let mut buf = BatchBuffers::with_capacity(16);
        fwm_gain_batch(&r, &grid, &mut buf);
        assert!(buf.values().is_empty());
    }
}
