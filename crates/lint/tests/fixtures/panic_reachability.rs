//@ crate: qfc-quantum
// Panic sites are findings only when reachable from a public fn; the
// finding lands at the site, with the entry path in the message.
pub fn boom() {
    panic!("bad"); //~ ERROR panic-reachability
}

pub fn not_yet() {
    todo!() //~ ERROR panic-reachability
}

pub fn never(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!("exhaustive"), //~ ERROR panic-reachability
    }
}

pub fn unwraps(x: Option<u8>) -> u8 {
    x.unwrap() //~ ERROR panic-reachability
}

// A panic in a private helper is a finding when a pub fn reaches it…
pub fn entry() {
    helper_reached()
}

fn helper_reached() {
    panic!("reachable through entry"); //~ ERROR panic-reachability
}

// …and clean when nothing public does.
fn helper_orphan() {
    panic!("unreachable from public API");
}

// A site-level allow excuses exactly its line.
pub fn wrapped() {
    panic!("documented"); // qfc-lint: allow(panic-reachability) — fixture: documented panicking wrapper
}

// A fn-level allow on the entry point excuses every panic in its subtree.
// qfc-lint: allow(panic-reachability) — fixture: validated legacy wrapper, panics on contract violation
pub fn legacy_entry() {
    helper_excused()
}

fn helper_excused() {
    panic!("excused by the fn-level allow on legacy_entry");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_panics_are_free() {
        panic!("tests may panic");
    }
}
