//! Dense complex matrices (row-major).

use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::{Complex64, C_ONE, C_ZERO};
use crate::cvector::CVector;

/// A dense complex matrix with row-major storage.
///
/// All quantum operators (density matrices, unitaries, projectors) and
/// discretized joint spectral amplitudes in the workspace use this type.
///
/// # Examples
///
/// ```
/// use qfc_mathkit::cmatrix::CMatrix;
///
/// let id = CMatrix::identity(2);
/// let m = &id * &id;
/// assert!(m.approx_eq(&id, 1e-15));
/// assert!((id.trace().re - 2.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C_ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C_ONE;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices of real values.
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&x| Complex64::real(x)));
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Builds a matrix element-wise from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Outer product `|a⟩⟨b|` (i.e. `a · b†`).
    pub fn outer(a: &CVector, b: &CVector) -> Self {
        Self::from_fn(a.dim(), b.dim(), |i, j| a[i] * b[j].conj())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Extracts row `i` as a vector.
    pub fn row(&self, i: usize) -> CVector {
        assert!(i < self.rows);
        CVector::from_vec(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> CVector {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√Σ|aᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every entry by a real factor.
    pub fn scale(&self, s: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(s)).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale_c(&self, s: Complex64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * s).collect(),
        }
    }

    /// Matrix-vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()`.
    pub fn matvec(&self, v: &CVector) -> CVector {
        assert_eq!(v.dim(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)] * v[j])
                    .sum::<Complex64>()
            })
            .collect()
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.approx_zero(0.0) {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix product `A·B` written into an existing buffer — the
    /// scratch-space form of [`Self::matmul`] for iteration hot loops.
    /// Bit-identical to `matmul`: the output is zeroed, then accumulated
    /// with the same skip-zero `i, k, j` loop in the same order.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        out.data.fill(C_ZERO);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.approx_zero(0.0) {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
    }

    /// Trace of a product, `tr(A·B)`, without materializing the product
    /// matrix. Bit-identical to `self.matmul(other).trace()`: each
    /// diagonal entry accumulates over `k` in `matmul`'s order (with its
    /// skip-zero test), and the diagonal sums in `trace`'s order — but
    /// only the diagonal is computed, an O(n) memory / n-fold flop saving.
    ///
    /// # Panics
    ///
    /// Panics if the product is undefined or not square.
    pub fn trace_of_product(&self, other: &Self) -> Complex64 {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(self.rows == other.cols, "trace of non-square matrix");
        let mut tr = C_ZERO;
        for i in 0..self.rows {
            let mut d = C_ZERO;
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.approx_zero(0.0) {
                    continue;
                }
                d += aik * other[(k, i)];
            }
            tr += d;
        }
        tr
    }

    /// In-place `self += other.scale(s)` — bit-identical to
    /// `&self + &other.scale(s)` (the same element-wise scale-then-add
    /// in data order) without allocating either temporary.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add_scaled_assign(&mut self, other: &Self, s: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b.scale(s);
        }
    }

    /// In-place form of [`Self::scale`].
    pub fn scale_in_place(&mut self, s: f64) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(C_ZERO);
    }

    /// Overwrites `self` with `other`'s entries, keeping the allocation
    /// (no temporary, unlike `clone`) — the rollback-buffer kernel of
    /// the accelerated MLE iteration.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.copy_from_slice(&other.data);
    }

    /// In-place over-relaxation toward the identity:
    /// `self ← (1 − γ)·I + γ·self`.
    ///
    /// For a Hermitian `self` the result is Hermitian for every real
    /// `γ`, which is what lets the accelerated RρR update
    /// `ρ ← N[AρA]` with `A = (1 − γ)I + γR` stay inside the PSD cone
    /// at any step size: `AρA = (Aρ^{1/2})(Aρ^{1/2})† ⪰ 0`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn lerp_identity_in_place(&mut self, gamma: f64) {
        assert!(self.is_square(), "identity mix needs a square matrix");
        let c = 1.0 - gamma;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let mut z = self.data[i * self.cols + j].scale(gamma);
                if i == j {
                    z.re += c;
                }
                self.data[i * self.cols + j] = z;
            }
        }
    }

    /// Frobenius norm of the difference, `‖A − B‖_F` — bit-identical to
    /// `(&self - &other).frobenius_norm()` (element-wise differences in
    /// data order, then the same sum-of-squares fold) with no temporary.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn frobenius_distance(&self, other: &Self) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Kronecker (tensor) product `A ⊗ B`.
    pub fn kron(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Quadratic form `⟨x|A|y⟩ = x† A y`.
    pub fn sandwich(&self, x: &CVector, y: &CVector) -> Complex64 {
        x.dot(&self.matvec(y))
    }

    /// `true` if `‖A − A†‖∞ ≤ tol` element-wise.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if `A†A ≈ I` within `tol` element-wise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let p = self.adjoint().matmul(self);
        p.approx_eq(&Self::identity(self.rows), tol)
    }

    /// `true` if every element is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Largest element-wise modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: Self) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: Self) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: Self) -> CMatrix {
        self.matmul(rhs)
    }
}

impl Mul<&CVector> for &CMatrix {
    type Output = CVector;
    fn mul(self, rhs: &CVector) -> CVector {
        self.matvec(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_I;

    #[test]
    fn identity_and_trace() {
        let id = CMatrix::identity(3);
        assert_eq!(id.trace().re, 3.0);
        assert!(id.is_hermitian(0.0));
        assert!(id.is_unitary(1e-15));
    }

    #[test]
    fn indexing_row_major() {
        let m = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)].re, 2.0);
        assert_eq!(m[(1, 0)].re, 3.0);
        assert_eq!(m.row(1), CVector::from_real(&[3.0, 4.0]));
        assert_eq!(m.col(0), CVector::from_real(&[1.0, 3.0]));
    }

    #[test]
    fn matmul_known_product() {
        let a = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = CMatrix::from_real_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        let expect = CMatrix::from_real_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!(c.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex64::new(i as f64, j as f64));
        assert!(a.matmul(&CMatrix::identity(3)).approx_eq(&a, 0.0));
        assert!(CMatrix::identity(3).matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let m = CMatrix::from_vec(1, 2, vec![C_I, Complex64::new(1.0, 2.0)]);
        let a = m.adjoint();
        assert_eq!(a.rows(), 2);
        assert_eq!(a[(0, 0)], -C_I);
        assert_eq!(a[(1, 0)], Complex64::new(1.0, -2.0));
    }

    #[test]
    fn pauli_y_is_hermitian_and_unitary() {
        let y = CMatrix::from_vec(2, 2, vec![C_ZERO, -C_I, C_I, C_ZERO]);
        assert!(y.is_hermitian(0.0));
        assert!(y.is_unitary(1e-15));
        // Y² = I
        assert!(y.matmul(&y).approx_eq(&CMatrix::identity(2), 1e-15));
    }

    #[test]
    fn kron_of_identities() {
        let k = CMatrix::identity(2).kron(&CMatrix::identity(3));
        assert!(k.approx_eq(&CMatrix::identity(6), 0.0));
    }

    #[test]
    fn kron_trace_is_product_of_traces() {
        let a = CMatrix::from_real_rows(&[&[1.0, 5.0], &[0.0, 2.0]]);
        let b = CMatrix::from_real_rows(&[&[3.0, 1.0], &[1.0, 4.0]]);
        let k = a.kron(&b);
        assert!((k.trace() - a.trace() * b.trace()).approx_zero(1e-12));
    }

    #[test]
    fn outer_product_is_rank_one_projector() {
        let v = CVector::from_real(&[1.0, 0.0]).normalized();
        let p = CMatrix::outer(&v, &v);
        assert!(p.matmul(&p).approx_eq(&p, 1e-14));
        assert!((p.trace().re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = CVector::from_real(&[1.0, -1.0]);
        let r = m.matvec(&v);
        assert_eq!(r, CVector::from_real(&[-1.0, -1.0]));
    }

    #[test]
    fn sandwich_expectation() {
        let z = CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let plus = CVector::from_real(&[1.0, 1.0]).normalized();
        assert!(z.sandwich(&plus, &plus).approx_zero(1e-14));
        let zero = CVector::basis(2, 0);
        assert!((z.sandwich(&zero, &zero).re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn diag_and_from_fn() {
        let d = CMatrix::diag(&[C_ONE, C_I]);
        assert_eq!(d[(1, 1)], C_I);
        assert_eq!(d[(0, 1)], C_ZERO);
        let f = CMatrix::from_fn(2, 2, |i, j| Complex64::real((i + j) as f64));
        assert_eq!(f[(1, 1)].re, 2.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = CMatrix::from_real_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Deterministic pseudo-random test matrix (no RNG dependency).
    fn scrambled(n: usize, salt: u64) -> CMatrix {
        CMatrix::from_fn(n, n, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add(salt);
            let x = (h ^ (h >> 31)) as f64 / u64::MAX as f64;
            let y = (h.wrapping_mul(0xBF58_476D_1CE4_E5B9) >> 11) as f64 / (1u64 << 53) as f64;
            Complex64::new(x - 0.5, y - 0.5)
        })
    }

    fn bits_eq(a: &CMatrix, b: &CMatrix) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
    }

    #[test]
    fn matmul_into_bit_identical_to_matmul() {
        for n in [1, 2, 4, 7] {
            let a = scrambled(n, 1);
            let b = scrambled(n, 2);
            let mut out = CMatrix::from_fn(n, n, |_, _| C_I); // pre-dirtied
            a.matmul_into(&b, &mut out);
            assert!(bits_eq(&out, &a.matmul(&b)), "n = {n}");
        }
        // Sparse LHS exercises the skip-zero path.
        let mut a = scrambled(5, 3);
        for k in 0..5 {
            a[(2, k)] = C_ZERO;
            a[(k, 4)] = C_ZERO;
        }
        let b = scrambled(5, 4);
        let mut out = CMatrix::zeros(5, 5);
        a.matmul_into(&b, &mut out);
        assert!(bits_eq(&out, &a.matmul(&b)));
    }

    #[test]
    fn trace_of_product_bit_identical() {
        for n in [1, 2, 4, 16] {
            let a = scrambled(n, 5);
            let b = scrambled(n, 6);
            let full = a.matmul(&b).trace();
            let fast = a.trace_of_product(&b);
            assert_eq!(full.re.to_bits(), fast.re.to_bits(), "n = {n}");
            assert_eq!(full.im.to_bits(), fast.im.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn add_scaled_assign_bit_identical() {
        let a = scrambled(6, 7);
        let b = scrambled(6, 8);
        let s = 0.731;
        let mut fast = a.clone();
        fast.add_scaled_assign(&b, s);
        assert!(bits_eq(&fast, &(&a + &b.scale(s))));
    }

    #[test]
    fn scale_in_place_and_fill_zero() {
        let a = scrambled(4, 9);
        let mut fast = a.clone();
        fast.scale_in_place(-1.75);
        assert!(bits_eq(&fast, &a.scale(-1.75)));
        fast.fill_zero();
        assert!(bits_eq(&fast, &CMatrix::zeros(4, 4)));
    }

    #[test]
    fn frobenius_distance_bit_identical() {
        let a = scrambled(6, 10);
        let b = scrambled(6, 11);
        assert_eq!(
            a.frobenius_distance(&b).to_bits(),
            (&a - &b).frobenius_norm().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_rejects_bad_shape() {
        let a = CMatrix::identity(2);
        let mut out = CMatrix::zeros(3, 3);
        a.matmul_into(&a.clone(), &mut out);
    }

    #[test]
    fn copy_from_is_bitwise() {
        let src = scrambled(5, 3);
        let mut dst = CMatrix::zeros(5, 5);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        // Overwrites, not accumulates.
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn copy_from_rejects_shape_mismatch() {
        let src = CMatrix::identity(3);
        let mut dst = CMatrix::zeros(2, 2);
        dst.copy_from(&src);
    }

    #[test]
    fn lerp_identity_endpoints_and_midpoint() {
        let a = scrambled(4, 7);

        // γ = 1 is the identity map on the matrix.
        let mut g1 = a.clone();
        g1.lerp_identity_in_place(1.0);
        assert_eq!(g1, a);

        // γ = 0 collapses to the identity matrix.
        let mut g0 = a.clone();
        g0.lerp_identity_in_place(0.0);
        assert!(g0.approx_eq(&CMatrix::identity(4), 0.0));

        // Generic γ matches the two-temporary formula elementwise.
        let gamma = 2.5;
        let mut gm = a.clone();
        gm.lerp_identity_in_place(gamma);
        let expect = &CMatrix::identity(4).scale(1.0 - gamma) + &a.scale(gamma);
        assert!(gm.approx_eq(&expect, 0.0));
    }

    #[test]
    fn lerp_identity_preserves_hermiticity() {
        let s = scrambled(4, 13);
        let herm = &s + &s.adjoint();
        let mut mixed = herm.clone();
        mixed.lerp_identity_in_place(3.0);
        assert!(mixed.is_hermitian(0.0));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn lerp_identity_rejects_rectangular() {
        let mut m = CMatrix::zeros(2, 3);
        m.lerp_identity_in_place(1.5);
    }

    #[test]
    fn arithmetic_ops() {
        let a = CMatrix::identity(2);
        let b = a.scale(2.0);
        assert_eq!((&a + &a), b);
        assert!((&b - &a).approx_eq(&a, 0.0));
        assert!((-&a).approx_eq(&a.scale(-1.0), 0.0));
        let c = b.scale_c(C_I);
        assert_eq!(c[(0, 0)], Complex64::new(0.0, 2.0));
    }
}
