//! Determinism: every experiment is bit-for-bit reproducible from its
//! seed, different seeds vary only statistically, and — because all
//! shot-based loops run on the fixed-shard worker pool — the thread
//! count is an implementation detail: one thread, four threads, and the
//! ambient default all produce byte-identical serialized reports.

use qfc::core::crosspol::{run_crosspol_experiment, CrossPolConfig};
use qfc::core::heralded::{run_heralded_experiment, HeraldedConfig};
use qfc::core::multiphoton::run_bell_tomography;
use qfc::core::multiphoton::MultiPhotonConfig;
use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_experiment, TimeBinConfig};
use qfc::runtime::with_threads;

#[test]
fn heralded_experiment_is_deterministic() {
    let source = QfcSource::paper_device();
    let cfg = {
        let mut c = HeraldedConfig::fast_demo();
        c.duration_s = 2.0;
        c.linewidth_pairs = 2000;
        c
    };
    let a = run_heralded_experiment(&source, &cfg, 777);
    let b = run_heralded_experiment(&source, &cfg, 777);
    assert_eq!(a.coincidence_matrix, b.coincidence_matrix);
    for (ca, cb) in a.channels.iter().zip(&b.channels) {
        assert_eq!(ca.car.to_bits(), cb.car.to_bits());
        assert_eq!(
            ca.inferred_pair_rate_hz.to_bits(),
            cb.inferred_pair_rate_hz.to_bits()
        );
    }
    assert_eq!(
        a.linewidth.linewidth_hz.to_bits(),
        b.linewidth.linewidth_hz.to_bits()
    );
}

#[test]
fn different_seeds_differ() {
    let source = QfcSource::paper_device();
    let mut cfg = HeraldedConfig::fast_demo();
    cfg.duration_s = 2.0;
    cfg.linewidth_pairs = 2000;
    let a = run_heralded_experiment(&source, &cfg, 1);
    let b = run_heralded_experiment(&source, &cfg, 2);
    assert_ne!(a.coincidence_matrix, b.coincidence_matrix);
}

#[test]
fn crosspol_experiment_is_deterministic() {
    let source = QfcSource::paper_device_type2();
    let mut cfg = CrossPolConfig::fast_demo();
    cfg.duration_s = 10.0;
    let a = run_crosspol_experiment(&source, &cfg, 99);
    let b = run_crosspol_experiment(&source, &cfg, 99);
    assert_eq!(a.car.to_bits(), b.car.to_bits());
    assert_eq!(a.te_singles_hz.to_bits(), b.te_singles_hz.to_bits());
}

/// Runs `f` at one worker, four workers, and the ambient thread count,
/// and asserts the three serialized outputs are byte-identical.
fn assert_thread_invariant<T: serde::Serialize>(f: impl Fn() -> T + Sync) {
    let serial = serde_json::to_string(&with_threads(1, &f)).unwrap();
    let four = serde_json::to_string(&with_threads(4, &f)).unwrap();
    let ambient = serde_json::to_string(&f()).unwrap();
    assert_eq!(serial, four, "1 vs 4 threads");
    assert_eq!(serial, ambient, "1 thread vs ambient");
}

#[test]
fn heralded_report_identical_across_thread_counts() {
    let source = QfcSource::paper_device();
    let mut cfg = HeraldedConfig::fast_demo();
    cfg.duration_s = 2.0;
    cfg.linewidth_pairs = 2000;
    assert_thread_invariant(|| run_heralded_experiment(&source, &cfg, 4242));
}

#[test]
fn timebin_report_identical_across_thread_counts() {
    let source = QfcSource::paper_device_timebin();
    let mut cfg = TimeBinConfig::fast_demo();
    cfg.frames_per_point = 500_000;
    assert_thread_invariant(|| run_timebin_experiment(&source, &cfg, 4243));
}

#[test]
fn bell_tomography_identical_across_thread_counts() {
    let source = QfcSource::paper_device_timebin();
    let mut cfg = MultiPhotonConfig::fast_demo();
    cfg.bell_shots_per_setting = 200;
    assert_thread_invariant(|| run_bell_tomography(&source, &cfg, 4244));
}

#[test]
fn timebin_experiment_is_deterministic() {
    let source = QfcSource::paper_device_timebin();
    let mut cfg = TimeBinConfig::fast_demo();
    cfg.channels = 1;
    cfg.frames_per_point = 1_000_000;
    let a = run_timebin_experiment(&source, &cfg, 5);
    let b = run_timebin_experiment(&source, &cfg, 5);
    assert_eq!(a.fringes[0].points, b.fringes[0].points);
    assert_eq!(a.chsh[0].s_value.to_bits(), b.chsh[0].s_value.to_bits());
}

/// The §IV event Monte Carlo through the precomputed sampling table:
/// byte-identical at one, four, and eight workers (eight oversubscribes
/// most CI hosts, which is exactly the point — scheduling must not leak
/// into results).
#[test]
fn timebin_event_mc_identical_at_1_4_8_threads() {
    use qfc::core::timebin::run_timebin_event_mc;
    let source = QfcSource::paper_device_timebin();
    let mut cfg = TimeBinConfig::fast_demo();
    cfg.frames_per_point = 300_000;
    let phases: Vec<f64> = (0..5).map(|k| 0.4 * f64::from(k)).collect();
    let run = || run_timebin_event_mc(&source, &cfg, 1, &phases, 4245);
    let one = serde_json::to_string(&with_threads(1, run)).unwrap();
    let four = serde_json::to_string(&with_threads(4, run)).unwrap();
    let eight = serde_json::to_string(&with_threads(8, run)).unwrap();
    assert_eq!(one, four, "1 vs 4 threads");
    assert_eq!(one, eight, "1 vs 8 threads");
}

/// The SoA spectral-sweep layer: batch kernels must be byte-identical
/// (f64 bit pattern) to the point-by-point scalar oracle on *arbitrary*
/// grids, and the chunked parallel path must not leak the thread count
/// into the bytes.
mod spectral_sweeps {
    use proptest::prelude::*;
    use qfc::photonics::opo;
    use qfc::photonics::ring::Microring;
    use qfc::photonics::sweep::{self, BatchBuffers, SweepGrid, SWEEP_CHUNK};
    use qfc::photonics::waveguide::Polarization;
    use qfc::runtime::with_threads;

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    proptest! {
        /// Ring transmission: batch vs scalar loop, bit for bit, on
        /// random channels, spans, offsets, and point counts.
        #[test]
        fn ring_batch_matches_scalar_on_random_grids(
            m in -40i32..41,
            span_lw in 0.25f64..12.0,
            offset_lw in -4.0f64..4.0,
            n in 2usize..300,
        ) {
            let ring = Microring::paper_device();
            let lw = ring.linewidth().hz();
            let center = ring.resonance(Polarization::Te, m).hz() + offset_lw * lw;
            let grid = SweepGrid::linspace(center - span_lw * lw, center + span_lw * lw, n);
            let mut batch = BatchBuffers::new();
            let mut scalar = BatchBuffers::new();
            sweep::ring_power_response_batch(&ring, Polarization::Te, m, &grid, &mut batch);
            sweep::ring_power_response_scalar(&ring, Polarization::Te, m, &grid, &mut scalar);
            prop_assert_eq!(bits(batch.values()), bits(scalar.values()));
        }

        /// OPO transfer curve: batch vs scalar loop across the threshold
        /// kink on random power ranges.
        #[test]
        fn opo_batch_matches_scalar_on_random_power_grids(
            lo in 0.01f64..0.95,
            hi in 1.05f64..4.0,
            n in 2usize..300,
        ) {
            let ring = Microring::paper_device();
            let p_th = opo::threshold(&ring).w();
            let grid = SweepGrid::linspace(lo * p_th, hi * p_th, n);
            let mut batch = BatchBuffers::new();
            let mut scalar = BatchBuffers::new();
            sweep::opo_transfer_batch(&ring, &grid, &mut batch);
            sweep::opo_transfer_scalar(&ring, &grid, &mut scalar);
            prop_assert_eq!(bits(batch.values()), bits(scalar.values()));
        }

        /// Channel-resolved pair rates: the channel-major SoA layout
        /// matches the nested scalar loop on random channel counts.
        #[test]
        fn pair_rate_channels_batch_matches_scalar(
            max_m in 1u32..24,
            p_min_mw in 0.1f64..5.0,
            span_mw in 0.5f64..30.0,
            n in 2usize..80,
        ) {
            let ring = Microring::paper_device();
            let grid = SweepGrid::linspace(
                p_min_mw * 1e-3,
                (p_min_mw + span_mw) * 1e-3,
                n,
            );
            let mut batch = BatchBuffers::new();
            let mut scalar = BatchBuffers::new();
            sweep::pair_rate_channels_batch(&ring, Polarization::Te, &grid, max_m, &mut batch);
            sweep::pair_rate_channels_scalar(&ring, Polarization::Te, &grid, max_m, &mut scalar);
            prop_assert_eq!(bits(batch.values()), bits(scalar.values()));
        }
    }

    /// The chunked parallel sweep path at one, four, and eight workers
    /// (eight oversubscribes most CI hosts — scheduling must not leak
    /// into the bytes). The grid spans several `SWEEP_CHUNK`s so the
    /// pool genuinely splits the work.
    #[test]
    fn sweep_batch_identical_at_1_4_8_threads() {
        let ring = Microring::paper_device();
        let lw = ring.linewidth().hz();
        let f0 = ring.resonance(Polarization::Te, 2).hz();
        let freq_grid =
            SweepGrid::linspace(f0 - 6.0 * lw, f0 + 6.0 * lw, 6 * SWEEP_CHUNK + 111);
        let p_th = opo::threshold(&ring).w();
        let power_grid = SweepGrid::linspace(0.05 * p_th, 3.0 * p_th, 4 * SWEEP_CHUNK + 7);
        let run = || {
            let mut buf = BatchBuffers::new();
            sweep::ring_power_response_batch(&ring, Polarization::Te, 2, &freq_grid, &mut buf);
            let mut out = bits(buf.values());
            sweep::opo_transfer_batch(&ring, &power_grid, &mut buf);
            out.extend(bits(buf.values()));
            out
        };
        let one = with_threads(1, run);
        let four = with_threads(4, run);
        let eight = with_threads(8, run);
        assert_eq!(one, four, "1 vs 4 threads");
        assert_eq!(one, eight, "1 vs 8 threads");
    }
}

/// Integration-scale checks of the sampling tables behind every
/// converted kernel, via the vendored property-test harness: the
/// threshold ladder tracks `discrete` draw for draw, and the alias
/// table (no bitwise contract) is statistically faithful.
mod sampling_tables {
    use proptest::prelude::*;
    use qfc::mathkit::rng::{discrete, rng_from_seed};
    use qfc::mathkit::sampling::{AliasTable, DiscreteSampler};

    proptest! {
        /// A `DiscreteSampler` fed the same stream as the original
        /// `discrete` subtraction loop returns the same index, draw for
        /// draw, on arbitrary weight vectors.
        #[test]
        fn sampling_table_tracks_discrete_on_random_weights(
            weights in prop::collection::vec(0.0f64..10.0, 1..12),
            seed in 0u64..1000,
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let table = DiscreteSampler::new(&weights);
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            for _ in 0..200 {
                prop_assert_eq!(table.sample(&mut a), discrete(&mut b, &weights));
            }
        }

        /// Statistical correctness of the O(1) alias table: empirical
        /// frequencies converge to the normalized weights.
        #[test]
        fn alias_table_frequencies_match_weights(
            weights in prop::collection::vec(0.05f64..10.0, 2..8),
            seed in 0u64..100,
        ) {
            let table = AliasTable::new(&weights);
            let total: f64 = weights.iter().sum();
            let mut rng = rng_from_seed(seed);
            let shots = 60_000usize;
            let mut counts = vec![0u64; weights.len()];
            for _ in 0..shots {
                counts[table.sample(&mut rng)] += 1;
            }
            for (k, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
                let p = w / total;
                let got = c as f64 / shots as f64;
                // 5σ binomial tolerance: ~1e-6 false-failure rate per bin.
                let tol = 5.0 * (p * (1.0 - p) / shots as f64).sqrt();
                prop_assert!(
                    (got - p).abs() <= tol,
                    "bin {k}: empirical {got:.4} vs expected {p:.4} (tol {tol:.4})"
                );
            }
        }
    }
}
