//! The two workspace-level rules (`forbid-unsafe`, `ci-roster`) need a
//! filesystem to fire against; these tests synthesize a miniature
//! workspace under `CARGO_TARGET_TMPDIR`, prove both rules fire, then
//! repair it and prove the run goes clean.

use std::fs;
use std::path::{Path, PathBuf};

fn mini_workspace(tag: &str) -> PathBuf {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("qfc_lint_mini_{tag}"));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(base.join("crates/alpha/src")).expect("mkdir");
    fs::write(
        base.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/alpha\"]\n",
    )
    .expect("root manifest");
    fs::write(
        base.join("crates/alpha/Cargo.toml"),
        "[package]\nname = \"qfc-alpha\"\nversion = \"0.1.0\"\n",
    )
    .expect("crate manifest");
    base
}

fn rules_fired(root: &Path) -> Vec<String> {
    let report = qfc_lint::run(root).expect("lint run");
    let mut rules: Vec<String> = report.findings.iter().map(|f| f.rule.to_string()).collect();
    rules.dedup();
    rules
}

#[test]
fn forbid_unsafe_and_ci_roster_fire_then_clear() {
    let root = mini_workspace("fire");
    // No #![forbid(unsafe_code)], no scripts/ci.sh: both rules must fire.
    fs::write(root.join("crates/alpha/src/lib.rs"), "pub fn f() {}\n").expect("lib.rs");
    let fired = rules_fired(&root);
    assert!(
        fired.contains(&"forbid-unsafe".to_string()),
        "forbid-unsafe did not fire: {fired:?}"
    );
    assert!(
        fired.contains(&"ci-roster".to_string()),
        "ci-roster did not fire: {fired:?}"
    );

    // Repair both: the run must go fully clean.
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .expect("lib.rs");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\nfor d in crates/*/; do :; done\n",
    )
    .expect("ci.sh");
    let report = qfc_lint::run(&root).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "repaired mini workspace still has findings: {:?}",
        report.findings
    );
}

#[test]
fn hand_listed_roster_must_name_every_crate() {
    let root = mini_workspace("roster");
    fs::write(
        root.join("crates/alpha/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .expect("lib.rs");
    fs::create_dir_all(root.join("scripts")).expect("scripts dir");
    // Invokes qfc-lint, hand-lists a roster, but omits qfc-alpha.
    fs::write(
        root.join("scripts/ci.sh"),
        "#!/usr/bin/env bash\ncargo run -p qfc-lint -- --deny\ncargo clippy -p qfc-other\n",
    )
    .expect("ci.sh");
    let fired = rules_fired(&root);
    assert!(
        fired.contains(&"ci-roster".to_string()),
        "ci-roster did not flag the incomplete hand-listed roster: {fired:?}"
    );
}
