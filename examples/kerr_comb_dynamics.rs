//! Dynamical Kerr-comb formation via the Lugiato–Lefever equation: the
//! classical field dynamics behind the OPO threshold of §III — below
//! threshold the intracavity field stays single-mode; above it,
//! modulation instability spawns the comb.
//!
//! ```sh
//! cargo run --release --example kerr_comb_dynamics
//! ```

use qfc::photonics::lle::{LleParameters, LleSimulator};

fn print_spectrum(label: &str, sim: &LleSimulator) {
    let spec = sim.state().spectrum();
    let n = spec.len();
    let peak = spec.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
    println!("\n{label}");
    println!(
        "mean intensity {:.3}, sideband fraction {:.4}",
        sim.state().mean_intensity(),
        sim.state().sideband_fraction()
    );
    // Show modes −10..=10 in dB relative to the strongest line.
    for m in -10i64..=10 {
        let idx = m.rem_euclid(n as i64) as usize;
        let db = 10.0 * (spec[idx] / peak).log10();
        let bar = "#".repeat(((db + 80.0).max(0.0) / 2.0) as usize);
        println!("  mode {m:>4}: {db:>7.1} dBc  {bar}");
    }
}

fn main() {
    println!("Lugiato–Lefever comb dynamics (normalized units)");

    let mut below = LleSimulator::new(LleParameters::below_threshold());
    below.run(30_000);
    print_spectrum(
        &format!(
            "== Below threshold (F = {:.2}): homogeneous field ==",
            below.params().pump
        ),
        &below,
    );

    let mut above = LleSimulator::new(LleParameters::above_threshold());
    // Watch the comb grow.
    println!(
        "\n== Above threshold (F = {:.2}): modulation instability ==",
        above.params().pump
    );
    println!("{:>10} {:>16} {:>20}", "time", "mean |ψ|²", "sideband fraction");
    for _ in 0..6 {
        above.run(10_000);
        println!(
            "{:>10.1} {:>16.4} {:>20.6}",
            above.state().time(),
            above.state().mean_intensity(),
            above.state().sideband_fraction()
        );
    }
    print_spectrum("== Final comb spectrum ==", &above);

    println!(
        "\nThe static threshold of §III (14 mW, quadratic → linear) is the\n\
         time-averaged face of exactly this instability."
    );
}
