//! Optical material models.
//!
//! The paper's device is fabricated in **Hydex**, a CMOS-compatible
//! high-index doped-silica glass (Moss *et al.*, Nature Photonics 7, 597
//! (2013)): n ≈ 1.66 at 1550 nm, Kerr coefficient n₂ ≈ 1.15 × 10⁻¹⁹ m²/W,
//! negligible two-photon absorption in the telecom band — the property that
//! lets the quantum comb run without nonlinear loss.

use serde::{Deserialize, Serialize};

use crate::units::Wavelength;

/// Identifies the material platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MaterialKind {
    /// High-index doped-silica glass (Little Optics / Hydex).
    Hydex,
    /// Stoichiometric silicon nitride.
    SiliconNitride,
}

impl std::fmt::Display for MaterialKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Hydex => write!(f, "Hydex"),
            Self::SiliconNitride => write!(f, "Si3N4"),
        }
    }
}

/// A dispersive Kerr material described by a three-term Cauchy equation
/// `n(λ) = A + B/λ² + C/λ⁴` (λ in µm) plus a Kerr index `n₂`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Material platform.
    pub kind: MaterialKind,
    cauchy_a: f64,
    cauchy_b: f64,
    cauchy_c: f64,
    /// Kerr (intensity-dependent) refractive index, m²/W.
    pub n2: f64,
    /// Linear propagation loss, dB/cm.
    pub loss_db_per_cm: f64,
}

impl Material {
    /// Hydex glass as used for the paper's microring.
    ///
    /// ```
    /// use qfc_photonics::material::Material;
    /// use qfc_photonics::units::Wavelength;
    /// let h = Material::hydex();
    /// let n = h.refractive_index(Wavelength::from_nm(1550.0));
    /// assert!(n > 1.6 && n < 1.7);
    /// ```
    pub fn hydex() -> Self {
        Self {
            kind: MaterialKind::Hydex,
            cauchy_a: 1.6465,
            cauchy_b: 0.0130,  // µm²
            cauchy_c: 0.0002,  // µm⁴
            n2: 1.15e-19,      // m²/W  (Moss et al. 2013)
            loss_db_per_cm: 0.0006, // Hydex's hallmark ultra-low loss: 0.06 dB/m
        }
    }

    /// Stoichiometric silicon nitride, for comparison studies.
    pub fn silicon_nitride() -> Self {
        Self {
            kind: MaterialKind::SiliconNitride,
            cauchy_a: 1.9805,
            cauchy_b: 0.0129,
            cauchy_c: 0.0003,
            n2: 2.5e-19,
            loss_db_per_cm: 0.1,
        }
    }

    /// Refractive index at the given vacuum wavelength.
    pub fn refractive_index(&self, lambda: Wavelength) -> f64 {
        let um = lambda.um();
        self.cauchy_a + self.cauchy_b / (um * um) + self.cauchy_c / um.powi(4)
    }

    /// Group index `n_g = n − λ·dn/dλ` at the given wavelength.
    pub fn group_index(&self, lambda: Wavelength) -> f64 {
        let um = lambda.um();
        // dn/dλ = −2B/λ³ − 4C/λ⁵  ⇒  n_g = n + 2B/λ² + 4C/λ⁴.
        self.refractive_index(lambda) + 2.0 * self.cauchy_b / (um * um)
            + 4.0 * self.cauchy_c / um.powi(4)
    }

    /// Material group-velocity dispersion `β₂ = λ³/(2πc²)·d²n/dλ²` in s²/m.
    pub fn material_gvd(&self, lambda: Wavelength) -> f64 {
        use crate::constants::SPEED_OF_LIGHT as C;
        let um = lambda.um();
        // d²n/dλ² = 6B/λ⁴ + 20C/λ⁶ in µm⁻² → ×1e12 for m⁻².
        let d2n = (6.0 * self.cauchy_b / um.powi(4) + 20.0 * self.cauchy_c / um.powi(6)) * 1e12;
        lambda.m().powi(3) / (2.0 * std::f64::consts::PI * C * C) * d2n
    }

    /// Linear power attenuation coefficient α in 1/m
    /// (from the dB/cm figure).
    pub fn alpha_per_m(&self) -> f64 {
        // α[1/m] = loss[dB/m] · ln(10)/10.
        self.loss_db_per_cm * 100.0 * std::f64::consts::LN_10 / 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydex_index_at_telecom() {
        let h = Material::hydex();
        let n = h.refractive_index(Wavelength::from_nm(1550.0));
        assert!((n - 1.652).abs() < 0.01, "n = {n}");
    }

    #[test]
    fn group_index_exceeds_phase_index() {
        let h = Material::hydex();
        let lam = Wavelength::from_nm(1550.0);
        assert!(h.group_index(lam) > h.refractive_index(lam));
    }

    #[test]
    fn index_decreases_with_wavelength() {
        let h = Material::hydex();
        let n1 = h.refractive_index(Wavelength::from_nm(1460.0));
        let n2 = h.refractive_index(Wavelength::from_nm(1625.0));
        assert!(n1 > n2, "normal dispersion expected in Cauchy model");
    }

    #[test]
    fn material_gvd_is_normal_and_small() {
        let h = Material::hydex();
        let b2 = h.material_gvd(Wavelength::from_nm(1550.0));
        // Normal (positive) material dispersion, order tens of ps²/km.
        assert!(b2 > 0.0);
        assert!(b2 < 200e-27, "β₂ = {b2}");
    }

    #[test]
    fn alpha_from_db() {
        let h = Material::hydex();
        // 0.06 dB/m → α = 0.06·ln10/10 ≈ 0.0138 /m.
        assert!((h.alpha_per_m() - 0.013816).abs() < 1e-5);
    }

    #[test]
    fn nitride_has_higher_index() {
        let lam = Wavelength::from_nm(1550.0);
        assert!(
            Material::silicon_nitride().refractive_index(lam)
                > Material::hydex().refractive_index(lam)
        );
    }
}
