//! QKD feasibility over the multiplexed comb — the quantum-communication
//! application the paper's introduction motivates: every time-bin
//! entangled channel pair becomes one BBM92 key channel.
//!
//! ```sh
//! cargo run --release --example qkd_multiplexed
//! ```

use qfc::core::multiplex::plan_star_network;
use qfc::core::qkd::{qkd_from_timebin, QBER_THRESHOLD};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{
    channel_state_model, coincidence_probability, run_timebin_experiment, TimeBinConfig,
};

fn main() {
    let source = QfcSource::paper_device_timebin();
    let config = TimeBinConfig::paper();
    println!("Measuring the §IV entangled channels…");
    let timebin = run_timebin_experiment(&source, &config, 37);

    // Phase-averaged coincidence probability per frame for each channel.
    let probs: Vec<f64> = (1..=config.channels)
        .map(|m| {
            let model = channel_state_model(&source, &config, m);
            (0..32)
                .map(|k| {
                    let phi = 2.0 * std::f64::consts::PI * k as f64 / 32.0;
                    coincidence_probability(&model, &config, phi, 0.0)
                })
                .sum::<f64>()
                / 32.0
        })
        .collect();

    let qkd = qkd_from_timebin(&timebin, 10.0e6, &probs);

    println!("\n== BBM92 over the multiplexed quantum frequency comb ==");
    println!("  m   visibility    QBER     sifted (bit/s)   secret key (bit/s)");
    for c in &qkd.channels {
        println!(
            " {:>2}    {:>6.3}    {:>6.3} %    {:>8.1}        {:>8.1}",
            c.m,
            c.visibility,
            c.qber * 100.0,
            c.sifted_rate_hz,
            c.secret_key_rate_hz
        );
    }
    println!(
        "\naggregate secret-key rate: {:.1} bit/s over {} channels",
        qkd.total_secret_key_rate_hz,
        qkd.channels.len()
    );
    println!("one-way QBER threshold: {:.1} %", QBER_THRESHOLD * 100.0);

    println!("\n== Star network: one user pair per channel pair ==");
    let net = plan_star_network(&source, &config, 8, 10.0e6);
    println!(
        "  pair    Alice λ            Bob λ              bands    pairs/s   key bit/s"
    );
    for u in &net.users {
        println!(
            "  {:>3}    {}   {}   {}/{}     {:>6.1}    {:>6.1}",
            u.user_pair,
            u.alice_frequency,
            u.bob_frequency,
            u.bands.0,
            u.bands.1,
            u.pair_rate_hz,
            u.key_rate_hz
        );
    }
    println!(
        "network total: {:.1} bit/s over {} simultaneous user pairs (disjoint λ: {})",
        net.total_key_rate_hz(),
        net.user_pairs(),
        net.wavelengths_disjoint()
    );
    println!("\n{}", qkd.to_report().render());
}
