//! High-dimensional (qudit) entangled states — the paper's stated
//! "frequency multiplexing to enable high dimensional … operation"
//! extension.
//!
//! The comb's many symmetric channel pairs can encode a *frequency-bin*
//! qudit pair `|Ψ_d⟩ = Σ_k |k⟩|k⟩/√d` (one term per channel pair). This
//! module provides general-dimension pure/mixed states, the maximally
//! entangled qudit pair, its entanglement entropy, and the CGLMP
//! inequality that generalizes CHSH to d levels — everything needed for
//! the forward-looking high-dimensional benches.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::{Complex64, C_ZERO};
use qfc_mathkit::cvector::CVector;
use qfc_mathkit::hermitian::eigh;

/// A pure state of a `d_a × d_b` bipartite qudit system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BipartiteQudit {
    amps: CVector,
    d_a: usize,
    d_b: usize,
}

impl BipartiteQudit {
    /// The maximally entangled pair `Σ_k |kk⟩/√d` in dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2` or `d > 64`.
    pub fn maximally_entangled(d: usize) -> Self {
        assert!((2..=64).contains(&d), "dimension out of supported range");
        let mut v = CVector::zeros(d * d);
        let a = 1.0 / (cast::to_f64(d)).sqrt();
        for k in 0..d {
            v[k * d + k] = Complex64::real(a);
        }
        Self {
            amps: v,
            d_a: d,
            d_b: d,
        }
    }

    /// Builds a bipartite state from a (normalized) amplitude matrix
    /// `c[j][k] = ⟨jk|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics on a zero matrix.
    pub fn from_amplitude_matrix(c: &CMatrix) -> Self {
        let mut v = CVector::zeros(c.rows() * c.cols());
        for j in 0..c.rows() {
            for k in 0..c.cols() {
                v[j * c.cols() + k] = c[(j, k)];
            }
        }
        assert!(v.norm() > 0.0, "zero amplitude matrix");
        Self {
            amps: v.normalized(),
            d_a: c.rows(),
            d_b: c.cols(),
        }
    }

    /// A frequency-bin entangled state weighted by the comb's per-channel
    /// pair amplitudes (e.g. the square roots of the SFWM rates):
    /// `Σ_k w_k |kk⟩`, normalized.
    pub fn from_channel_weights(weights: &[f64]) -> Self {
        let d = weights.len();
        assert!(d >= 2, "need at least two channels");
        let mut c = CMatrix::zeros(d, d);
        for (k, &w) in weights.iter().enumerate() {
            assert!(w >= 0.0, "negative channel weight");
            c[(k, k)] = Complex64::real(w.sqrt());
        }
        Self::from_amplitude_matrix(&c)
    }

    /// Dimension of subsystem A.
    pub fn dim_a(&self) -> usize {
        self.d_a
    }

    /// Dimension of subsystem B.
    pub fn dim_b(&self) -> usize {
        self.d_b
    }

    /// Amplitude `⟨jk|ψ⟩`.
    pub fn amplitude(&self, j: usize, k: usize) -> Complex64 {
        self.amps[j * self.d_b + k]
    }

    /// The reduced density matrix of subsystem A.
    pub fn reduced_a(&self) -> CMatrix {
        let mut rho = CMatrix::zeros(self.d_a, self.d_a);
        for i in 0..self.d_a {
            for j in 0..self.d_a {
                let mut acc = C_ZERO;
                for k in 0..self.d_b {
                    acc += self.amplitude(i, k) * self.amplitude(j, k).conj();
                }
                rho[(i, j)] = acc;
            }
        }
        rho
    }

    /// Schmidt coefficients (descending, summing to 1).
    pub fn schmidt_coefficients(&self) -> Vec<f64> {
        let mut lam = eigh(&self.reduced_a()).eigenvalues;
        lam.reverse();
        lam.into_iter().map(|x| x.max(0.0)).collect()
    }

    /// Schmidt rank (coefficients above `tol`).
    pub fn schmidt_rank(&self, tol: f64) -> usize {
        self.schmidt_coefficients()
            .iter()
            .filter(|&&l| l > tol)
            .count()
    }

    /// Entanglement entropy in **bits** (`log2 d` for the maximally
    /// entangled state).
    pub fn entanglement_entropy_bits(&self) -> f64 {
        self.schmidt_coefficients()
            .iter()
            .filter(|&&l| l > 1e-15)
            .map(|&l| -l * l.log2())
            .sum()
    }
}

/// Quantum prediction of the CGLMP `I_d` value for the maximally
/// entangled qudit pair with optimal settings and a state visibility `v`
/// (white-noise model). The local-realistic bound is `I_d ≤ 2` for all
/// `d`; the maximally entangled quantum value exceeds it and *grows*
/// with `d` (2.8284 for d = 2 = CHSH, 2.8729 for d = 3, …).
///
/// Uses the closed form of Collins–Gisin–Linden–Massar–Popescu:
/// `I_d = 4d·Σ_{k=0}^{⌊d/2⌋−1} (1 − 2k/(d−1))·(q_k − q_{−(k+1)})` with
/// `q_k = 1/(2d³ sin²(π(k + ¼)/d))`.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn cglmp_value(d: usize, visibility: f64) -> f64 {
    assert!(d >= 2, "CGLMP needs d ≥ 2");
    let df = cast::to_f64(d);
    let q = |k: f64| 1.0 / (2.0 * df.powi(3) * (std::f64::consts::PI * (k + 0.25) / df).sin().powi(2));
    let mut i_d = 0.0;
    for k in 0..(d / 2) {
        let kf = cast::to_f64(k);
        let coeff = 1.0 - 2.0 * kf / (df - 1.0);
        i_d += coeff * (q(kf) - q(-(kf + 1.0)));
    }
    i_d *= 4.0 * df;
    // White noise scales the correlations linearly.
    visibility.clamp(0.0, 1.0) * i_d
}

/// The local-realistic bound of the CGLMP inequality.
pub const CGLMP_CLASSICAL_BOUND: f64 = 2.0;

/// Critical visibility above which the maximally entangled d-level state
/// violates CGLMP — *decreases* with d, one key advantage of
/// high-dimensional entanglement.
pub fn cglmp_critical_visibility(d: usize) -> f64 {
    CGLMP_CLASSICAL_BOUND / cglmp_value(d, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximally_entangled_entropy() {
        for d in [2usize, 3, 4, 8] {
            let s = BipartiteQudit::maximally_entangled(d);
            assert!((s.entanglement_entropy_bits() - (d as f64).log2()).abs() < 1e-9);
            assert_eq!(s.schmidt_rank(1e-9), d);
        }
    }

    #[test]
    fn reduced_state_is_maximally_mixed() {
        let s = BipartiteQudit::maximally_entangled(3);
        let rho = s.reduced_a();
        assert!(rho.approx_eq(&CMatrix::identity(3).scale(1.0 / 3.0), 1e-12));
    }

    #[test]
    fn product_state_has_zero_entropy() {
        let mut c = CMatrix::zeros(3, 3);
        c[(1, 2)] = Complex64::real(1.0);
        let s = BipartiteQudit::from_amplitude_matrix(&c);
        assert!(s.entanglement_entropy_bits() < 1e-9);
        assert_eq!(s.schmidt_rank(1e-9), 1);
    }

    #[test]
    fn channel_weights_give_partial_entanglement() {
        // Unequal SFWM rates across channels: entropy below log2 d.
        let s = BipartiteQudit::from_channel_weights(&[1.0, 0.7, 0.4]);
        let e = s.entanglement_entropy_bits();
        assert!(e > 1.0 && e < (3.0f64).log2(), "E = {e}");
    }

    #[test]
    fn cglmp_d2_matches_tsirelson() {
        // d = 2 CGLMP with optimal settings equals CHSH: 2√2.
        let v = cglmp_value(2, 1.0);
        assert!((v - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-9, "I_2 = {v}");
    }

    #[test]
    fn cglmp_d3_reference_value() {
        // Known value: I_3 = 2.87293.
        let v = cglmp_value(3, 1.0);
        assert!((v - 2.87293).abs() < 1e-4, "I_3 = {v}");
    }

    #[test]
    fn cglmp_grows_with_dimension() {
        let mut last = 0.0;
        for d in 2..=8 {
            let v = cglmp_value(d, 1.0);
            assert!(v > last, "d={d}: {v}");
            last = v;
        }
    }

    #[test]
    fn critical_visibility_decreases_with_dimension() {
        let v2 = cglmp_critical_visibility(2);
        let v4 = cglmp_critical_visibility(4);
        let v8 = cglmp_critical_visibility(8);
        assert!((v2 - 1.0 / std::f64::consts::SQRT_2).abs() < 1e-9);
        assert!(v4 < v2 && v8 < v4);
    }

    #[test]
    fn noisy_state_below_threshold_no_violation() {
        for d in [2usize, 3, 5] {
            let vc = cglmp_critical_visibility(d);
            assert!(cglmp_value(d, vc * 0.99) < CGLMP_CLASSICAL_BOUND);
            assert!(cglmp_value(d, vc * 1.01) > CGLMP_CLASSICAL_BOUND);
        }
    }

    #[test]
    #[should_panic(expected = "dimension out of supported range")]
    fn dimension_one_rejected() {
        let _ = BipartiteQudit::maximally_entangled(1);
    }
}
