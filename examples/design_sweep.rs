//! Device-design exploration: how the coupling choice trades linewidth
//! (quantum-memory compatibility), OPO threshold, pair rate, and field
//! enhancement — the design space behind the paper's 110-MHz / 14-mW
//! operating point — followed by a dense batch sweep of the chosen
//! device that doubles as a smoke benchmark (points/sec through the
//! SoA sweep layer).
//!
//! ```sh
//! cargo run --release --example design_sweep
//! ```

use std::time::Instant;

use qfc::photonics::memory::{ring_memory_efficiency, MemoryProfile};
use qfc::photonics::opo;
use qfc::photonics::ring::{Microring, MicroringBuilder};
use qfc::photonics::sweep::{self, BatchBuffers, SweepGrid};
use qfc::photonics::units::{Frequency, Power};
use qfc::photonics::waveguide::{Polarization, Waveguide};

fn main() {
    println!("Sweeping the loaded linewidth of a 200-GHz Hydex ring");
    println!("(pump fixed at 15 mW on-chip for the rate column)\n");
    println!(
        "{:>10}  {:>9}  {:>9}  {:>11}  {:>12}  {:>10}",
        "linewidth", "loaded Q", "FE^2", "P_th (mW)", "rate (Hz)", "memory η"
    );

    let memory = MemoryProfile::atomic_100mhz();
    let pump_grid = SweepGrid::from_points(vec![Power::from_mw(15.0).w()]);
    let mut rates = BatchBuffers::new();
    for lw_mhz in [25.0, 50.0, 110.0, 220.0, 440.0, 880.0] {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.anchor(Frequency::from_thz(193.4))
            .radius_for_fsr(Frequency::from_ghz(200.0));
        b.coupling_for_linewidth(Frequency::from_hz(lw_mhz * 1e6));
        let ring = b.build();
        // Channel-1 pair rate via the batch layer (single-point grid):
        // bit-identical to fwm::pair_rate_cw.
        sweep::pair_rate_channels_batch(&ring, Polarization::Te, &pump_grid, 1, &mut rates);
        println!(
            "{:>7.0} MHz  {:>9.2e}  {:>9.0}  {:>11.1}  {:>12.1}  {:>10.3}",
            lw_mhz,
            ring.q_loaded(),
            ring.field_enhancement_power(),
            opo::threshold(&ring).mw(),
            rates.values()[0],
            ring_memory_efficiency(&ring, &memory),
        );
    }

    println!(
        "\nThe paper's choice (110 MHz) sits at the knee: narrow enough for\n\
         ~50 % direct memory acceptance and a 14-mW threshold, wide enough\n\
         to keep the per-channel pair rate in the tens of Hz."
    );

    // ---- dense batch sweeps of the paper device: the smoke benchmark ----
    let ring = Microring::paper_device();
    let lw = ring.linewidth().hz();
    let mut buf = BatchBuffers::new();

    // Dispersion scan: every 200-GHz channel of the ±40-channel comb,
    // 2048 frequency points across ±5 linewidths of each resonance.
    let channels: Vec<i32> = (-40..=40).collect();
    let per_channel = 2048usize;
    let grids: Vec<SweepGrid> = channels
        .iter()
        .map(|&m| {
            let f0 = ring.resonance(Polarization::Te, m).hz();
            SweepGrid::linspace(f0 - 5.0 * lw, f0 + 5.0 * lw, per_channel)
        })
        .collect();
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for (&m, grid) in channels.iter().zip(&grids) {
        sweep::ring_power_response_batch(&ring, Polarization::Te, m, grid, &mut buf);
        acc += buf.values().iter().sum::<f64>();
    }
    let dt = t0.elapsed().as_secs_f64();
    let points = channels.len() * per_channel;
    println!(
        "\nDispersion scan: {} channels × {} points = {} evaluations in {:.1} ms \
         ({:.2e} points/sec, Σresponse = {:.1})",
        channels.len(),
        per_channel,
        points,
        dt * 1e3,
        points as f64 / dt,
        acc,
    );

    // OPO transfer sweep: 100k pump powers across the threshold kink.
    let p_th = opo::threshold(&ring).w();
    let n_opo = 100_000usize;
    let power_grid = SweepGrid::linspace(0.05 * p_th, 3.0 * p_th, n_opo);
    let t0 = Instant::now();
    sweep::opo_transfer_batch(&ring, &power_grid, &mut buf);
    let dt = t0.elapsed().as_secs_f64();
    let kink = buf
        .values()
        .windows(2)
        .filter(|w| w[1] > 100.0 * w[0].max(1e-300))
        .count();
    println!(
        "OPO transfer sweep: {} points in {:.1} ms ({:.2e} points/sec, {} threshold kink(s))",
        n_opo,
        dt * 1e3,
        n_opo as f64 / dt,
        kink,
    );
}
