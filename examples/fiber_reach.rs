//! Fiber-link reach of the comb's entanglement: how far the §IV time-bin
//! Bell pairs can be distributed before the dark-count floor kills the
//! CHSH violation — the deployment face of the paper's
//! quantum-communications motivation.
//!
//! ```sh
//! cargo run --release --example fiber_reach
//! ```

use qfc::core::link::{chsh_reach_km, link_budget};
use qfc::core::source::QfcSource;
use qfc::core::timebin::TimeBinConfig;

fn main() {
    let source = QfcSource::paper_device_timebin();
    let config = TimeBinConfig::paper();
    let frame_rate = 10.0e6;

    println!("Channel-1 link budget over symmetric SMF-28 arms (0.2 dB/km):\n");
    println!(
        "{:>10} {:>14} {:>14} {:>10} {:>14}",
        "km/arm", "coinc (Hz)", "visibility", "S", "key (bit/s)"
    );
    let lengths = [0.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0];
    for p in link_budget(&source, &config, 1, frame_rate, &lengths) {
        println!(
            "{:>10.0} {:>14.2} {:>14.3} {:>10.3} {:>14.2}{}",
            p.length_km,
            p.coincidence_rate_hz,
            p.effective_visibility,
            p.s_value,
            p.key_rate_hz,
            if p.violates_chsh() { "" } else { "   (no violation)" }
        );
    }

    println!("\nCHSH reach per channel:");
    for m in 1..=5 {
        match chsh_reach_km(&source, &config, m, frame_rate) {
            Some(km) => println!("  channel {m}: {km:.0} km per arm"),
            None => println!("  channel {m}: no violation even locally"),
        }
    }
    println!(
        "\nThe reach is dark-count-limited: post-selected time-bin visibility\n\
         ignores loss until the accidental floor catches the thinned signal."
    );
}
