//! §V bench targets: T3 Bell tomography, F8 four-photon interference,
//! T4 four-photon tomography.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qfc_bench::configs::multiphoton_small;
use qfc_core::multiphoton::{
    run_bell_tomography, run_four_photon_fringe, run_four_photon_tomography,
};
use qfc_core::source::QfcSource;

fn t3_bell_tomography(c: &mut Criterion) {
    let source = QfcSource::paper_device_timebin();
    let cfg = multiphoton_small();
    let mut g = c.benchmark_group("t3_bell_tomography");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let results = run_bell_tomography(black_box(&source), black_box(&cfg), 31);
            black_box(results[0].fidelity)
        })
    });
    g.finish();
}

fn f8_four_photon(c: &mut Criterion) {
    let source = QfcSource::paper_device_timebin();
    let cfg = multiphoton_small();
    let mut g = c.benchmark_group("f8_four_photon");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let fringe = run_four_photon_fringe(black_box(&source), black_box(&cfg), 32);
            black_box(fringe.visibility)
        })
    });
    g.finish();
}

fn t4_four_photon_fidelity(c: &mut Criterion) {
    let source = QfcSource::paper_device_timebin();
    let cfg = multiphoton_small();
    let mut g = c.benchmark_group("t4_four_photon_fidelity");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let tomo = run_four_photon_tomography(black_box(&source), black_box(&cfg), 33);
            black_box(tomo.fidelity)
        })
    });
    g.finish();
}

criterion_group!(benches, t3_bell_tomography, f8_four_photon, t4_four_photon_fidelity);
criterion_main!(benches);
