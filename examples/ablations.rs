//! Ablation studies: the design choices behind the paper's operating
//! point, quantified (see DESIGN.md §6).
//!
//! ```sh
//! cargo run --release --example ablations
//! ```

use qfc::core::ablation::{pump_scheme_ablation, tomography_ablation, window_ablation};
use qfc::core::heralded::StabilityConfig;
use qfc::core::multiphoton::pump_trade_scan;
use qfc::core::source::QfcSource;
use qfc::core::timebin::TimeBinConfig;

fn main() {
    println!("== Pump scheme (the §II claim: why self-locking matters) ==");
    println!("{:<24} {:>16} {:>18}", "scheme", "fluctuation", "active hardware?");
    for row in pump_scheme_ablation(&StabilityConfig::paper(), 2017) {
        println!(
            "{:<24} {:>14.1} % {:>18}",
            row.scheme,
            row.relative_fluctuation * 100.0,
            if row.needs_active_stabilization { "yes" } else { "no" }
        );
    }

    println!("\n== Tomography reconstructor (MLE RρR vs linear inversion) ==");
    println!(
        "{:>16} {:>16} {:>14} {:>10} {:>14} {:>10}",
        "shots/setting", "linear F", "MLE F", "MLE it", "accel F", "accel it"
    );
    for row in tomography_ablation(&[10, 30, 100, 300, 1000, 10_000], 2018) {
        println!(
            "{:>16} {:>16.4} {:>14.4} {:>10} {:>14.4} {:>10}",
            row.shots_per_setting,
            row.linear_fidelity,
            row.mle_fidelity,
            row.mle_iterations,
            row.accelerated_fidelity,
            row.accelerated_iterations
        );
    }

    println!("\n== Coincidence window (capture vs accidentals) ==");
    println!("{:>14} {:>12} {:>18}", "window (ps)", "CAR", "coinc rate (Hz)");
    for row in window_ablation(&[250, 1000, 4000, 8000, 16_000, 64_000], 2019) {
        println!(
            "{:>14} {:>12.1} {:>18.3}",
            row.window_ps, row.car, row.coincidence_rate_hz
        );
    }
    println!(
        "\nThe 8-ns window of the analyses sits where the 1.45-ns correlation\n\
         envelope is fully captured but the accidental integration is still small."
    );

    println!("\n== Pump amplitude (the §V rate-vs-quality trade) ==");
    println!(
        "{:>8} {:>10} {:>14} {:>16} {:>14}",
        "factor", "μ/frame", "visibility", "4-fold rate ×", "pair fidelity"
    );
    let source = QfcSource::paper_device_timebin();
    for row in pump_trade_scan(&source, &TimeBinConfig::paper(), &[0.5, 1.0, 2.0, 3.0, 5.0]) {
        println!(
            "{:>8.1} {:>10.4} {:>14.3} {:>16.1} {:>14.3}",
            row.pump_factor,
            row.mu,
            row.state_visibility,
            row.relative_four_fold_rate,
            row.pair_fidelity
        );
    }
    println!(
        "\nThe §V experiments run at 3× — the point where four-folds become\n\
         practical while the pair fidelity is still ~0.84, which after\n\
         squaring (two pairs) and white noise lands the 0.64 fidelity."
    );
}
