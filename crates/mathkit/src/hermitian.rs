//! Eigendecomposition of Hermitian matrices and matrix functions.
//!
//! Implements the cyclic complex Jacobi algorithm: for each off-diagonal
//! pivot a unitary 2×2 rotation annihilates the element; sweeps repeat until
//! the off-diagonal Frobenius norm is negligible. Jacobi is slower than
//! Householder tridiagonalization + QL for large matrices, but it is simple,
//! numerically robust, and delivers small residuals — and the matrices in
//! this workspace (density matrices up to 16×16, discretized joint spectral
//! amplitudes up to a few hundred) are well within its comfortable range.

use crate::cast;
use serde::{Deserialize, Serialize};

use crate::cmatrix::CMatrix;
use crate::complex::Complex64;
use crate::cvector::CVector;

/// Result of diagonalizing a Hermitian matrix `A = V Λ V†`.
///
/// Eigenvalues are real and sorted in **ascending** order; `eigenvectors`
/// holds the corresponding orthonormal eigenvectors as matrix columns.
///
/// # Examples
///
/// ```
/// use qfc_mathkit::cmatrix::CMatrix;
/// use qfc_mathkit::hermitian::eigh;
///
/// let a = CMatrix::from_real_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = eigh(&a);
/// assert!((e.eigenvalues[0] - 1.0).abs() < 1e-10);
/// assert!((e.eigenvalues[1] - 3.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EigenDecomposition {
    /// Real eigenvalues, ascending.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose `k`-th column is the eigenvector for
    /// `eigenvalues[k]`.
    pub eigenvectors: CMatrix,
}

impl EigenDecomposition {
    /// Eigenvector for index `k` as an owned vector.
    pub fn eigenvector(&self, k: usize) -> CVector {
        self.eigenvectors.col(k)
    }

    /// Reconstructs `V Λ V†`; useful for testing round-trips.
    pub fn reconstruct(&self) -> CMatrix {
        let lam = CMatrix::diag(
            &self
                .eigenvalues
                .iter()
                .map(|&x| Complex64::real(x))
                .collect::<Vec<_>>(),
        );
        let v = &self.eigenvectors;
        &(v * &lam) * &v.adjoint()
    }

    /// Applies a real function to the spectrum: `f(A) = V f(Λ) V†`.
    pub fn apply(&self, f: impl Fn(f64) -> f64) -> CMatrix {
        let lam = CMatrix::diag(
            &self
                .eigenvalues
                .iter()
                .map(|&x| Complex64::real(f(x)))
                .collect::<Vec<_>>(),
        );
        let v = &self.eigenvectors;
        &(v * &lam) * &v.adjoint()
    }
}

/// Pivot-sweep strategy for the Jacobi iteration.
///
/// `Cyclic` visits every off-diagonal element in order each sweep;
/// `Threshold` skips pivots already below the current sweep threshold,
/// which saves rotations on nearly-diagonal matrices. Both converge to the
/// same decomposition; the ablation bench `ablation_eigen` compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum JacobiStrategy {
    /// Rotate at every off-diagonal pivot, every sweep.
    #[default]
    Cyclic,
    /// Skip pivots below the per-sweep threshold.
    Threshold,
}

const MAX_SWEEPS: usize = 128;

/// Diagonalizes a Hermitian matrix with the default (cyclic) strategy.
///
/// # Panics
///
/// Panics if `a` is not square or not Hermitian to `1e-9` (relative to its
/// largest element).
pub fn eigh(a: &CMatrix) -> EigenDecomposition {
    eigh_with(a, JacobiStrategy::Cyclic)
}

/// Diagonalizes a Hermitian matrix with an explicit pivot strategy.
///
/// # Panics
///
/// Panics if `a` is not square or not Hermitian (see [`eigh`]).
pub fn eigh_with(a: &CMatrix, strategy: JacobiStrategy) -> EigenDecomposition {
    assert!(a.is_square(), "eigh requires a square matrix");
    let scale = a.max_abs().max(1.0);
    assert!(
        a.is_hermitian(1e-9 * scale),
        "eigh requires a Hermitian matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    symmetrize_in_place(&mut m);
    let mut v = CMatrix::identity(n);
    jacobi_sweeps(&mut m, Some(&mut v), strategy, scale);

    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    // total_cmp keeps degenerate (NaN-bearing) matrices from panicking the
    // eigensolver: NaN eigenvalues sort to the end instead.
    idx.sort_by(|&i, &j| diag[i].total_cmp(&diag[j]));

    let eigenvalues: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let eigenvectors = CMatrix::from_fn(n, n, |i, j| v[(i, idx[j])]);
    EigenDecomposition {
        eigenvalues,
        eigenvectors,
    }
}

/// Eigenvalues only, ascending, computed in caller-provided scratch.
///
/// Runs exactly the Jacobi rotation sequence of [`eigh_with`] on `work`
/// (overwritten with a symmetrized copy of `a`, reallocated only when
/// its shape differs) but skips the eigenvector accumulation, then
/// writes the sorted eigenvalues into `out` (cleared first). The values
/// are bit-identical to `eigh_with(a, strategy).eigenvalues` — the
/// eigenvector updates never feed back into the iterated matrix, and
/// `total_cmp` ordering is a total order on bit patterns.
///
/// # Panics
///
/// Panics if `a` is not square or not Hermitian (see [`eigh`]).
pub fn eigenvalues_into(
    a: &CMatrix,
    strategy: JacobiStrategy,
    work: &mut CMatrix,
    out: &mut Vec<f64>,
) {
    assert!(a.is_square(), "eigh requires a square matrix");
    let scale = a.max_abs().max(1.0);
    assert!(
        a.is_hermitian(1e-9 * scale),
        "eigh requires a Hermitian matrix"
    );
    let n = a.rows();
    if work.rows() != n || work.cols() != n {
        *work = a.clone();
    } else {
        for i in 0..n {
            for j in 0..n {
                work[(i, j)] = a[(i, j)];
            }
        }
    }
    symmetrize_in_place(work);
    jacobi_sweeps(work, None, strategy, scale);
    out.clear();
    out.extend((0..n).map(|i| work[(i, i)].re));
    out.sort_by(f64::total_cmp);
}

/// Exact symmetrization removing any tolerated Hermitian asymmetry.
fn symmetrize_in_place(m: &mut CMatrix) {
    let n = m.rows();
    for i in 0..n {
        m[(i, i)] = Complex64::real(m[(i, i)].re);
        for j in (i + 1)..n {
            let avg = (m[(i, j)] + m[(j, i)].conj()).scale(0.5);
            m[(i, j)] = avg;
            m[(j, i)] = avg.conj();
        }
    }
}

/// Jacobi sweep loop: rotates `m` to diagonal form, accumulating the
/// rotations into `v` when provided.
fn jacobi_sweeps(
    m: &mut CMatrix,
    mut v: Option<&mut CMatrix>,
    strategy: JacobiStrategy,
    scale: f64,
) {
    let n = m.rows();
    for sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(m);
        if off <= 1e-14 * scale * cast::to_f64(n) {
            break;
        }
        let threshold = match strategy {
            JacobiStrategy::Cyclic => 0.0,
            // Classic Jacobi threshold schedule: tighten as sweeps progress.
            JacobiStrategy::Threshold => {
                if sweep < 4 {
                    0.2 * off / cast::to_f64(n * n)
                } else {
                    0.0
                }
            }
        };
        for p in 0..n {
            for q in (p + 1)..n {
                if m[(p, q)].abs() <= threshold {
                    continue;
                }
                let rot = jacobi_rotate(m, p, q);
                if let (Some(v), Some((c, s))) = (v.as_deref_mut(), rot) {
                    // Accumulate eigenvectors: V ← V·U.
                    for i in 0..n {
                        let vip = v[(i, p)];
                        let viq = v[(i, q)];
                        v[(i, p)] = vip.scale(c) - viq * s.conj();
                        v[(i, q)] = vip * s + viq.scale(c);
                    }
                }
            }
        }
    }
}

fn off_diagonal_norm(m: &CMatrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += 2.0 * m[(i, j)].norm_sqr();
        }
    }
    s.sqrt()
}

/// One complex Jacobi rotation annihilating `m[(p, q)]`, returning the
/// `(cos θ, sin θ·e^{iφ})` pair for the caller to accumulate (or `None`
/// when the pivot is already zero).
fn jacobi_rotate(m: &mut CMatrix, p: usize, q: usize) -> Option<(f64, Complex64)> {
    let gamma = m[(p, q)];
    let g = gamma.abs();
    if g == 0.0 {
        return None;
    }
    let alpha = m[(p, p)].re;
    let beta = m[(q, q)].re;
    let phi = gamma.arg();
    // tan(2θ) = 2|γ| / (β − α), choosing the small-angle root for stability.
    let theta = 0.5 * (2.0 * g).atan2(beta - alpha);
    let c = theta.cos();
    let s = Complex64::from_polar(theta.sin(), phi);
    let n = m.rows();

    // Column update: A ← A·U with U[(p,p)] = c, U[(p,q)] = s,
    // U[(q,p)] = −s̄, U[(q,q)] = c.
    for i in 0..n {
        let aip = m[(i, p)];
        let aiq = m[(i, q)];
        m[(i, p)] = aip.scale(c) - aiq * s.conj();
        m[(i, q)] = aip * s + aiq.scale(c);
    }
    // Row update: A ← U†·A.
    for j in 0..n {
        let apj = m[(p, j)];
        let aqj = m[(q, j)];
        m[(p, j)] = apj.scale(c) - aqj * s;
        m[(q, j)] = apj * s.conj() + aqj.scale(c);
    }
    // Clean the annihilated pair and enforce real diagonal.
    m[(p, q)] = Complex64::real(0.0);
    m[(q, p)] = Complex64::real(0.0);
    m[(p, p)] = Complex64::real(m[(p, p)].re);
    m[(q, q)] = Complex64::real(m[(q, q)].re);

    Some((c, s))
}

/// Principal square root of a positive semidefinite Hermitian matrix.
///
/// Eigenvalues that are slightly negative from round-off are clipped to
/// zero before the square root.
///
/// # Panics
///
/// Panics if `a` is not Hermitian, or has an eigenvalue below
/// `-1e-8 · max(1, ‖a‖∞)` (i.e. genuinely not PSD).
pub fn sqrtm_psd(a: &CMatrix) -> CMatrix {
    let e = eigh(a);
    let scale = a.max_abs().max(1.0);
    for &lam in &e.eigenvalues {
        assert!(
            lam >= -1e-8 * scale,
            "sqrtm_psd: matrix has negative eigenvalue {lam}"
        );
    }
    e.apply(|x| x.max(0.0).sqrt())
}

/// Projects a Hermitian matrix onto the positive semidefinite cone by
/// clipping negative eigenvalues to zero (no renormalization).
pub fn psd_projection(a: &CMatrix) -> CMatrix {
    eigh(a).apply(|x| x.max(0.0))
}

/// Compact singular value decomposition of a complex matrix `A = U Σ V†`.
///
/// Computed from the Hermitian eigendecomposition of `A†A`. Singular values
/// are returned in **descending** order; `u` and `v` hold the corresponding
/// left/right singular vectors as columns. Singular values below
/// `tol · σ_max` are dropped (compact form), so `u` is `m × r` and `v` is
/// `n × r` with `r = rank`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Svd {
    /// Singular values, descending, strictly positive.
    pub singular_values: Vec<f64>,
    /// Left singular vectors (columns), `m × r`.
    pub u: CMatrix,
    /// Right singular vectors (columns), `n × r`.
    pub v: CMatrix,
}

/// Computes the compact SVD of `a` with relative rank tolerance `tol`.
///
/// ```
/// use qfc_mathkit::cmatrix::CMatrix;
/// use qfc_mathkit::hermitian::svd;
///
/// let a = CMatrix::from_real_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
/// let s = svd(&a, 1e-12);
/// assert_eq!(s.singular_values, vec![4.0, 3.0]);
/// ```
pub fn svd(a: &CMatrix, tol: f64) -> Svd {
    let ata = &a.adjoint() * a;
    let e = eigh(&ata);
    let n = e.eigenvalues.len();
    // eigh sorts ascending; take descending.
    let mut triples: Vec<(f64, CVector)> = (0..n)
        .rev()
        .map(|k| (e.eigenvalues[k].max(0.0).sqrt(), e.eigenvector(k)))
        .collect();
    let smax = triples.first().map_or(0.0, |t| t.0);
    triples.retain(|(s, _)| *s > tol * smax && *s > 0.0);

    let r = triples.len();
    let mut u = CMatrix::zeros(a.rows(), r);
    let mut v = CMatrix::zeros(a.cols(), r);
    let mut sigma = Vec::with_capacity(r);
    // One scratch vector reused across columns (`matvec_into` is
    // bit-identical to the allocating `matvec`, and `scale` applies
    // element-wise either way).
    let mut uk = CVector::zeros(a.rows());
    for (k, (s, vk)) in triples.iter().enumerate() {
        sigma.push(*s);
        a.matvec_into(vk, &mut uk);
        let inv = 1.0 / s;
        // qfc-lint: hot
        for i in 0..a.rows() {
            u[(i, k)] = uk[i].scale(inv);
        }
        for i in 0..a.cols() {
            v[(i, k)] = vk[i];
        }
    }
    Svd {
        singular_values: sigma,
        u,
        v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{C_I, C_ONE, C_ZERO};

    fn random_hermitian(n: usize, seed: u64) -> CMatrix {
        // Simple deterministic LCG so the test needs no RNG dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::real(next());
            for j in (i + 1)..n {
                let z = Complex64::new(next(), next());
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = CMatrix::diag(&[
            Complex64::real(3.0),
            Complex64::real(-1.0),
            Complex64::real(2.0),
        ]);
        let e = eigh(&a);
        assert_eq!(e.eigenvalues.len(), 3);
        assert!((e.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_x_eigensystem() {
        let x = CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = eigh(&x);
        assert!((e.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for +1 must be (1,1)/√2 up to phase.
        let v = e.eigenvector(1);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[1].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn pauli_y_complex_eigensystem() {
        let y = CMatrix::from_vec(2, 2, vec![C_ZERO, -C_I, C_I, C_ZERO]);
        let e = eigh(&y);
        assert!((e.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&y, 1e-10));
    }

    #[test]
    fn reconstruction_roundtrip_random() {
        for seed in 1..6 {
            let a = random_hermitian(8, seed);
            let e = eigh(&a);
            assert!(
                e.reconstruct().approx_eq(&a, 1e-9),
                "roundtrip failed for seed {seed}"
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_hermitian(6, 42);
        let e = eigh(&a);
        assert!(e.eigenvectors.is_unitary(1e-9));
    }

    #[test]
    fn threshold_strategy_agrees_with_cyclic() {
        let a = random_hermitian(7, 7);
        let e1 = eigh_with(&a, JacobiStrategy::Cyclic);
        let e2 = eigh_with(&a, JacobiStrategy::Threshold);
        for (x, y) in e1.eigenvalues.iter().zip(&e2.eigenvalues) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn eigenvalues_into_bit_identical_to_eigh() {
        let mut work = CMatrix::zeros(1, 1); // wrong shape: exercises the resize path
        let mut vals = Vec::new();
        for seed in 1..8 {
            let a = random_hermitian(6, seed);
            for strategy in [JacobiStrategy::Cyclic, JacobiStrategy::Threshold] {
                eigenvalues_into(&a, strategy, &mut work, &mut vals);
                let full = eigh_with(&a, strategy);
                assert_eq!(vals.len(), full.eigenvalues.len());
                for (x, y) in vals.iter().zip(&full.eigenvalues) {
                    assert_eq!(x.to_bits(), y.to_bits(), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = random_hermitian(9, 3);
        let e = eigh(&a);
        let tr: f64 = e.eigenvalues.iter().sum();
        assert!((tr - a.trace().re).abs() < 1e-9);
    }

    #[test]
    fn sqrtm_squares_back() {
        // Build a PSD matrix B = A†A.
        let a = random_hermitian(5, 11);
        let b = &a.adjoint() * &a;
        let s = sqrtm_psd(&b);
        assert!((&s * &s).approx_eq(&b, 1e-8));
        assert!(s.is_hermitian(1e-9));
    }

    #[test]
    #[should_panic(expected = "negative eigenvalue")]
    fn sqrtm_rejects_indefinite() {
        let a = CMatrix::diag(&[C_ONE, Complex64::real(-1.0)]);
        let _ = sqrtm_psd(&a);
    }

    #[test]
    fn psd_projection_clips() {
        let a = CMatrix::diag(&[Complex64::real(2.0), Complex64::real(-0.5)]);
        let p = psd_projection(&a);
        let e = eigh(&p);
        assert!(e.eigenvalues[0] >= -1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn svd_of_diagonal() {
        let a = CMatrix::from_real_rows(&[&[0.0, 2.0], &[1.0, 0.0]]);
        let s = svd(&a, 1e-12);
        assert!((s.singular_values[0] - 2.0).abs() < 1e-10);
        assert!((s.singular_values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn svd_reconstructs() {
        let a = CMatrix::from_fn(4, 3, |i, j| {
            Complex64::new((i + 2 * j) as f64 * 0.3, (i as f64 - j as f64) * 0.2)
        });
        let s = svd(&a, 1e-12);
        let sig = CMatrix::diag(
            &s.singular_values
                .iter()
                .map(|&x| Complex64::real(x))
                .collect::<Vec<_>>(),
        );
        let rec = &(&s.u * &sig) * &s.v.adjoint();
        assert!(rec.approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1 matrix.
        let u = CVector::from_real(&[1.0, 2.0]);
        let v = CVector::from_real(&[1.0, 1.0, 1.0]);
        let a = CMatrix::outer(&u, &v);
        let s = svd(&a, 1e-10);
        assert_eq!(s.singular_values.len(), 1);
        assert!((s.singular_values[0] - (5.0f64).sqrt() * (3.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn eigh_rejects_non_hermitian() {
        let a = CMatrix::from_real_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let _ = eigh(&a);
    }
}
