//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes used in this workspace — structs with named fields, tuple
//! structs (including newtypes), unit structs, and enums whose variants
//! are unit, tuple, or struct-like — without depending on `syn`/`quote`
//! (registry access is unavailable in the build container). The input
//! item is parsed directly from the `proc_macro` token stream and the
//! impl is emitted as source text.
//!
//! Generated impls target the vendored `serde` crate's `Value`-tree
//! traits; `#[serde(...)]` attributes are not supported (none exist in
//! this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    /// Named-field name, or the positional index rendered as a string.
    name: String,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = serialize_fields_expr(fields, "self");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), \
                             ::serde::Value::Object(vec![{entries}]))]),\n",
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = deserialize_fields_expr(fields, "__value", "Self");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
                 }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{0}: ::serde::Deserialize::from_value(\
                                     __payload.get_field(\"{0}\")?)?",
                                    f.name
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                    Fields::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "\"{vname}\" => return ::std::result::Result::Ok(\
                                 {name}::{vname}(::serde::Deserialize::from_value(__payload)?)),\n"
                            ));
                        } else {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            data_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let __items = match __payload {{\n\
                                 ::serde::Value::Array(v) if v.len() == {n} => v,\n\
                                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected {n}-element array for variant {vname}\")),\n\
                                 }};\n\
                                 return ::std::result::Result::Ok({name}::{vname}({inits}));\n\
                                 }}\n",
                                inits = inits.join(", ")
                            ));
                        }
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::Str(__s) = __value {{\n\
                 match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::std::option::Option::Some((__tag, __payload)) = __value.as_variant() {{\n\
                 match __tag {{ {data_arms} _ => {{}} }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                 \"no matching variant of `{name}`\"))\n\
                 }}\n}}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}

/// Serialization expression for a struct's fields, reading from `recv`.
fn serialize_fields_expr(fields: &Fields, recv: &str) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let entries: Vec<String> = fs
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&{recv}.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => format!("::serde::Serialize::to_value(&{recv}.0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&{recv}.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    }
}

/// Deserialization body for a struct's fields, reading from `value_ident`.
fn deserialize_fields_expr(fields: &Fields, value_ident: &str, ctor: &str) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({ctor})"),
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_value(\
                         {value_ident}.get_field(\"{0}\")?)?",
                        f.name
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({ctor} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value({value_ident})?))"
        ),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = match {value_ident} {{\n\
                 ::serde::Value::Array(v) if v.len() == {n} => v,\n\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected {n}-element array\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({ctor}({inits}))",
                inits = inits.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(peek_punct(&tokens, pos), Some('<')) {
        panic!("vendored serde_derive does not support generic types (deriving `{name}`)");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected token after struct name: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde derives support struct/enum only, found `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*pos), tokens.get(*pos + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *pos += 2;
        } else {
            break;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Skips a type (or any token run) up to a top-level comma, tracking
/// `<...>` nesting so commas inside generic arguments don't terminate
/// early. Leaves `pos` on the comma (or at end of stream).
fn skip_to_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match peek_punct(&tokens, pos) {
            Some(':') => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_to_top_level_comma(&tokens, &mut pos);
        pos += 1; // consume comma (or step past end)
        fields.push(Field { name });
    }
    Fields::Named(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut count = 0usize;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        skip_to_top_level_comma(&tokens, &mut pos);
        pos += 1;
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        if matches!(peek_punct(&tokens, pos), Some('=')) {
            pos += 1;
            skip_to_top_level_comma(&tokens, &mut pos);
        }
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
