//! Observability-layer contract (C-OBS): the trace/metrics collector is
//! inert by default (enabled vs disabled runs produce byte-identical
//! physics output), and the collected telemetry itself is
//! thread-count-invariant — the deterministic export aggregates spans by
//! name and nesting, never by scheduling order.

use qfc::core::heralded::{try_run_heralded_experiment, HeraldedConfig};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{try_run_timebin_experiment, TimeBinConfig};
use qfc::faults::FaultSchedule;
use qfc::obs::Collector;
use qfc::runtime::with_threads;

fn heralded_cfg() -> HeraldedConfig {
    let mut cfg = HeraldedConfig::fast_demo();
    cfg.duration_s = 1.0;
    cfg.channels = 2;
    cfg.linewidth_pairs = 500;
    cfg
}

/// Runs the §II driver under a fresh collector on `threads` workers and
/// returns (physics JSON, deterministic trace JSON, full trace JSON).
fn traced_heralded(threads: usize) -> (String, String, String) {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let collector = Collector::new();
    let run = with_threads(threads, || {
        collector.install(|| {
            try_run_heralded_experiment(&source, &cfg, 77, &FaultSchedule::empty())
                .expect("clean run")
        })
    });
    let snap = collector.snapshot();
    (
        serde_json::to_string(&run.report).expect("report serializes"),
        snap.to_deterministic_json(),
        snap.to_json(),
    )
}

#[test]
fn trace_and_physics_are_thread_count_invariant() {
    let (physics_1, trace_1, _) = traced_heralded(1);
    let (physics_4, trace_4, _) = traced_heralded(4);
    let (physics_8, trace_8, _) = traced_heralded(8);
    assert_eq!(physics_1, physics_4);
    assert_eq!(physics_1, physics_8);
    assert_eq!(trace_1, trace_4, "deterministic trace differs at 4 threads");
    assert_eq!(trace_1, trace_8, "deterministic trace differs at 8 threads");
}

#[test]
fn disabled_collector_leaves_output_byte_identical() {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let baseline = try_run_heralded_experiment(&source, &cfg, 77, &FaultSchedule::empty())
        .expect("clean run");
    let (instrumented, _, _) = traced_heralded(qfc::runtime::max_threads());
    assert_eq!(
        serde_json::to_string(&baseline.report).expect("json"),
        instrumented,
        "installing a collector changed the physics output"
    );
}

#[test]
fn trace_records_driver_phases_and_counters() {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let collector = Collector::new();
    collector.install(|| {
        try_run_heralded_experiment(&source, &cfg, 77, &FaultSchedule::empty())
            .expect("clean run")
    });
    let snap = collector.snapshot();
    let driver = &snap.spans.children[0];
    assert_eq!(driver.name, "driver.heralded");
    let phases: Vec<&str> = driver.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        phases,
        [
            "driver.heralded.source",
            "driver.heralded.timetag",
            "driver.heralded.analysis",
            "driver.heralded.report",
        ]
    );
    assert!(snap.counter("shots_simulated").unwrap_or(0) > 0);
    assert!(snap.counter("coincidences_counted").unwrap_or(0) > 0);
    assert!(snap.counter("shards_executed").unwrap_or(0) > 0);
    // The human rendering carries the same sections.
    let text = snap.render();
    assert!(text.contains("driver.heralded.timetag"), "{text}");
    assert!(text.contains("shots_simulated"), "{text}");
}

#[test]
fn full_export_carries_the_run_manifest() {
    let (_, deterministic, full) = traced_heralded(2);
    assert!(full.contains("\"manifest\""), "{full}");
    assert!(full.contains("\"seed\":77"), "{full}");
    assert!(
        !deterministic.contains("manifest"),
        "deterministic export must omit the (environment-dependent) manifest"
    );
    assert!(!deterministic.contains("wall_ns"));
    assert!(!deterministic.contains("gauges"));
}

#[test]
fn experiment_report_attaches_manifest_only_when_collected() {
    let source = QfcSource::paper_device();
    let cfg = heralded_cfg();
    let run = try_run_heralded_experiment(&source, &cfg, 77, &FaultSchedule::empty())
        .expect("clean run");
    // Outside any collector: the legacy report shape, byte for byte.
    let bare = run.to_report();
    assert!(bare.manifest.is_none());
    assert!(!serde_json::to_string(&bare).expect("json").contains("manifest"));

    // Under a collector the driver records the manifest and to_report()
    // picks it up, stamped with the run's actual seed and thread count.
    let collector = Collector::new();
    let attached = collector.install(|| {
        let run = try_run_heralded_experiment(&source, &cfg, 77, &FaultSchedule::empty())
            .expect("clean run");
        run.to_report()
    });
    let manifest = attached.manifest.clone().expect("manifest attached");
    assert_eq!(manifest.seed, 77);
    assert_eq!(manifest.threads, qfc::runtime::max_threads());
    assert_eq!(manifest.config_digest.len(), 16);
    assert!(manifest.config_digest.chars().all(|c| c.is_ascii_hexdigit()));
    assert_eq!(manifest.fault_events, 0);
    assert!(attached.render().contains("manifest:"));
}

#[test]
fn timebin_trace_is_thread_count_invariant() {
    let source = QfcSource::paper_device_timebin();
    let cfg = TimeBinConfig::fast_demo();
    let traced = |threads: usize| {
        let collector = Collector::new();
        let run = with_threads(threads, || {
            collector.install(|| {
                try_run_timebin_experiment(&source, &cfg, 41, &FaultSchedule::empty())
                    .expect("clean run")
            })
        });
        (
            serde_json::to_string(&run.report).expect("json"),
            collector.snapshot().to_deterministic_json(),
        )
    };
    let (physics_1, trace_1) = traced(1);
    let (physics_4, trace_4) = traced(4);
    assert_eq!(physics_1, physics_4);
    assert_eq!(trace_1, trace_4);
}

#[test]
fn faulty_run_counts_recovery_actions() {
    let source = QfcSource::paper_device_timebin();
    let cfg = TimeBinConfig::fast_demo();
    let duration = qfc::core::timebin::nominal_duration_s(&cfg);
    let schedule = FaultSchedule::stress(9, duration);
    let collector = Collector::new();
    let run = collector.install(|| {
        try_run_timebin_experiment(&source, &cfg, 47, &schedule)
            .expect("run survives the stress schedule")
    });
    assert!(!run.health.is_pristine());
    let snap = collector.snapshot();
    assert!(
        snap.counter("faults_injected").unwrap_or(0) > 0,
        "stress schedule must register injected faults"
    );
    let manifest = snap.manifest.expect("manifest recorded");
    assert!(manifest.fault_events > 0);
    assert!(!manifest.fault_kinds.is_empty());
}
