//! Campaign workloads: the four paper drivers decomposed into
//! deterministic shard manifests.
//!
//! Each workload mirrors its driver's own parallel decomposition —
//! per-channel tasks for §IV/§II/§V, plus the fixed `SHOT_SHARDS`
//! shot-range layout for the §II F2 linewidth run — so a merged campaign
//! report is byte-identical to the single-process run. Shard payloads
//! are the serialized intermediate products (`TagStream` pairs, channel
//! fringe/CHSH tuples, tomography results), and `merge` folds them in
//! shard-index order through the same assembly code the driver uses.

use qfc_core::crosspol::{try_run_crosspol_experiment, CrossPolConfig};
use qfc_core::heralded::{
    assemble_heralded_run, heralded_channel_task, heralded_linewidth_shard,
    plan_heralded_experiment, try_run_heralded_experiment, HeraldedConfig, HeraldedRun,
};
use qfc_core::multiphoton::{
    bell_channel_task, four_photon_tomography_from_data, plan_multiphoton_experiment,
    try_four_photon_fringe, try_four_photon_state, try_run_multiphoton_experiment,
    BellTomographyResult, FourPhotonFringe, FourPhotonTomography, MultiPhotonConfig,
    MultiPhotonReport, MultiPhotonRun,
};
use qfc_core::source::QfcSource;
use qfc_core::timebin::{
    plan_timebin_experiment, timebin_channel_task, try_run_timebin_experiment, ChannelFringe,
    ChshChannelResult, TimeBinConfig, TimeBinReport, TimeBinRun,
};
use qfc_faults::{FaultSchedule, HealthReport, QfcError, QfcResult};
use qfc_mathkit::cast;
use qfc_mathkit::rng::split_seed;
use qfc_timetag::events::TagStream;
use qfc_tomography::counts::setting_histogram;
use qfc_tomography::settings::all_settings;
use qfc_tomography::stream::CountAccumulator;
use serde::Serialize;

use crate::manifest::ShardSpec;

/// A driver run decomposed into independently executable shards.
///
/// Implementations must keep three invariants, which together give the
/// engine its byte-identity guarantee:
///
/// 1. `plan` is deterministic: same workload → same shard table.
/// 2. `run_shard` is a pure function of `(workload, spec)` — it must not
///    depend on which shards ran before it, on the thread count, or on
///    wall-clock time.
/// 3. `merge` over the full payload list (in shard-index order) produces
///    the same bytes as [`Self::reference_json`], the single-process
///    driver run.
pub trait CampaignWorkload {
    /// Workload label, e.g. `timebin` (part of the campaign fingerprint).
    fn label(&self) -> String;
    /// Root RNG seed of the run (part of the campaign fingerprint).
    fn seed(&self) -> u64;
    /// The driver config's JSON serialization (digested into the
    /// campaign fingerprint).
    ///
    /// # Errors
    ///
    /// [`QfcError::Persistence`] when the config cannot be serialized.
    fn config_json(&self) -> QfcResult<String>;
    /// The deterministic shard decomposition, indices contiguous from 0.
    ///
    /// # Errors
    ///
    /// Any driver planning error (invalid config, regime mismatch, …).
    fn plan(&self) -> QfcResult<Vec<ShardSpec>>;
    /// Executes one shard and serializes its partial result.
    ///
    /// # Errors
    ///
    /// Any driver error; the engine retries and eventually quarantines.
    fn run_shard(&self, spec: &ShardSpec) -> QfcResult<String>;
    /// Folds the full payload list (shard-index order) into the run
    /// report's JSON serialization.
    ///
    /// # Errors
    ///
    /// [`QfcError::Persistence`] for undecodable payloads, plus any
    /// driver assembly error.
    fn merge(&self, payloads: &[String]) -> QfcResult<String>;
    /// The single-process driver run, serialized — the byte-identity
    /// reference for [`CampaignOptions::prove`](crate::CampaignOptions).
    ///
    /// # Errors
    ///
    /// Any driver error.
    fn reference_json(&self) -> QfcResult<String>;
}

fn to_json<T: Serialize>(what: &str, value: &T) -> QfcResult<String> {
    serde_json::to_string(value)
        .map_err(|e| QfcError::persistence(format!("{what} serialization: {e}")))
}

fn from_json<T: serde::de::DeserializeOwned>(what: &str, payload: &str) -> QfcResult<T> {
    serde_json::from_str(payload)
        .map_err(|e| QfcError::persistence(format!("{what} payload undecodable: {e}")))
}

fn shard_out_of_range(label: &str, spec: &ShardSpec) -> QfcError {
    QfcError::persistence(format!(
        "{label} campaign has no shard {} ({})",
        spec.index, spec.label
    ))
}

/// §IV time-bin run as a campaign: one shard per surviving channel.
#[derive(Debug, Clone, Copy)]
pub struct TimeBinCampaign<'a> {
    /// The simulated device.
    pub source: &'a QfcSource,
    /// Driver configuration.
    pub config: &'a TimeBinConfig,
    /// Root RNG seed.
    pub seed: u64,
    /// Physics fault schedule (campaign fault kinds are ignored here).
    pub schedule: &'a FaultSchedule,
}

impl CampaignWorkload for TimeBinCampaign<'_> {
    fn label(&self) -> String {
        "timebin".to_owned()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn config_json(&self) -> QfcResult<String> {
        to_json("timebin config", self.config)
    }

    fn plan(&self) -> QfcResult<Vec<ShardSpec>> {
        let plan = plan_timebin_experiment(self.source, self.config, self.seed, self.schedule)?;
        Ok(plan
            .models
            .iter()
            .enumerate()
            .map(|(i, (m, _, _))| ShardSpec {
                index: cast::usize_to_u32(i),
                label: format!("channel-{m}"),
                start: cast::usize_to_u64(i),
                len: 1,
                seed: split_seed(self.seed, u64::from(*m)),
            })
            .collect())
    }

    fn run_shard(&self, spec: &ShardSpec) -> QfcResult<String> {
        let plan = plan_timebin_experiment(self.source, self.config, self.seed, self.schedule)?;
        let (m, c, model) = plan
            .models
            .get(cast::u32_to_usize(spec.index))
            .ok_or_else(|| shard_out_of_range("timebin", spec))?;
        let pair: (ChannelFringe, ChshChannelResult) =
            timebin_channel_task(self.seed, *m, c, model);
        to_json("timebin shard", &pair)
    }

    fn merge(&self, payloads: &[String]) -> QfcResult<String> {
        let plan = plan_timebin_experiment(self.source, self.config, self.seed, self.schedule)?;
        let mut fringes = Vec::with_capacity(payloads.len());
        let mut chsh = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let (f, c): (ChannelFringe, ChshChannelResult) =
                from_json("timebin shard", payload)?;
            fringes.push(f);
            chsh.push(c);
        }
        let run = TimeBinRun {
            report: TimeBinReport { fringes, chsh },
            health: plan.health,
        };
        to_json("timebin run", &run)
    }

    fn reference_json(&self) -> QfcResult<String> {
        let run = try_run_timebin_experiment(self.source, self.config, self.seed, self.schedule)?;
        to_json("timebin run", &run)
    }
}

/// §II heralded run as a campaign: one shard per surviving channel plus
/// the fixed `SHOT_SHARDS` shot-range decomposition of the F2 linewidth
/// run.
#[derive(Debug, Clone, Copy)]
pub struct HeraldedCampaign<'a> {
    /// The simulated device.
    pub source: &'a QfcSource,
    /// Driver configuration.
    pub config: &'a HeraldedConfig,
    /// Root RNG seed.
    pub seed: u64,
    /// Physics fault schedule (campaign fault kinds are ignored here).
    pub schedule: &'a FaultSchedule,
}

impl HeraldedCampaign<'_> {
    fn linewidth_layout(&self, linewidth_root: u64) -> Vec<qfc_runtime::Shard> {
        qfc_runtime::shard_layout(cast::usize_to_u64(self.config.linewidth_pairs), linewidth_root)
    }
}

impl CampaignWorkload for HeraldedCampaign<'_> {
    fn label(&self) -> String {
        "heralded".to_owned()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn config_json(&self) -> QfcResult<String> {
        to_json("heralded config", self.config)
    }

    fn plan(&self) -> QfcResult<Vec<ShardSpec>> {
        let plan = plan_heralded_experiment(self.source, self.config, self.seed, self.schedule)?;
        let n_channels = plan.survivors.len();
        let mut shards: Vec<ShardSpec> = plan
            .survivors
            .iter()
            .enumerate()
            .map(|(i, m)| ShardSpec {
                index: cast::usize_to_u32(i),
                label: format!("channel-{m}"),
                start: cast::usize_to_u64(i),
                len: 1,
                seed: split_seed(plan.channel_root, u64::from(*m)),
            })
            .collect();
        for sh in self.linewidth_layout(plan.linewidth_root) {
            shards.push(ShardSpec {
                index: cast::usize_to_u32(n_channels + sh.index),
                label: format!("linewidth-{}", sh.index),
                start: sh.start,
                len: sh.len,
                seed: sh.seed,
            });
        }
        Ok(shards)
    }

    fn run_shard(&self, spec: &ShardSpec) -> QfcResult<String> {
        let plan = plan_heralded_experiment(self.source, self.config, self.seed, self.schedule)?;
        let n_channels = plan.survivors.len();
        let slot = cast::u32_to_usize(spec.index);
        if slot < n_channels {
            let m = plan.survivors[slot];
            let streams: (TagStream, TagStream) =
                heralded_channel_task(self.config, self.schedule, &plan, slot, m);
            to_json("heralded channel shard", &streams)
        } else {
            let shard = qfc_runtime::Shard {
                index: slot - n_channels,
                start: spec.start,
                len: spec.len,
                seed: spec.seed,
            };
            if shard.index >= self.linewidth_layout(plan.linewidth_root).len() {
                return Err(shard_out_of_range("heralded", spec));
            }
            let tags: (Vec<i64>, Vec<i64>) =
                heralded_linewidth_shard(self.config, plan.tau, &shard);
            to_json("heralded linewidth shard", &tags)
        }
    }

    fn merge(&self, payloads: &[String]) -> QfcResult<String> {
        let plan = plan_heralded_experiment(self.source, self.config, self.seed, self.schedule)?;
        let n_channels = plan.survivors.len();
        let mut signal_streams = Vec::with_capacity(n_channels);
        let mut idler_streams = Vec::with_capacity(n_channels);
        for payload in payloads.iter().take(n_channels) {
            let (s, i): (TagStream, TagStream) = from_json("heralded channel shard", payload)?;
            signal_streams.push(s);
            idler_streams.push(i);
        }
        // Concatenate the linewidth shards in shard order — the exact
        // fold `merge_linewidth_shards` applies inside `par_shots`.
        let mut a = Vec::with_capacity(self.config.linewidth_pairs);
        let mut b = Vec::with_capacity(self.config.linewidth_pairs);
        for payload in payloads.iter().skip(n_channels) {
            let (sa, sb): (Vec<i64>, Vec<i64>) = from_json("heralded linewidth shard", payload)?;
            a.extend_from_slice(&sa);
            b.extend_from_slice(&sb);
        }
        let run: HeraldedRun =
            assemble_heralded_run(self.config, plan, signal_streams, idler_streams, a, b)?;
        to_json("heralded run", &run)
    }

    fn reference_json(&self) -> QfcResult<String> {
        let run = try_run_heralded_experiment(self.source, self.config, self.seed, self.schedule)?;
        to_json("heralded run", &run)
    }
}

/// Four-qubit tomography settings per count shard of the §V campaign:
/// the 81 settings decompose into six independently retryable shards,
/// each streaming its setting range's histograms on the same
/// `split_seed(seed, setting_index)` streams the driver uses, so the
/// merged table is byte-identical to the single-process run.
const TOMOGRAPHY_SETTINGS_PER_SHARD: usize = 16;

/// One tomography count shard's payload: `(setting_index, histogram)`
/// pairs for its setting range.
type TomographyCountShard = Vec<(u64, Vec<u64>)>;

/// §V multi-photon run as a campaign: one Bell-tomography shard per
/// surviving channel, the four-photon fringe stage as its own shard,
/// and the four-photon tomography stage decomposed into setting-range
/// count shards that the merge folds through a
/// [`CountAccumulator`] before reconstructing once.
#[derive(Debug, Clone, Copy)]
pub struct MultiPhotonCampaign<'a> {
    /// The simulated device.
    pub source: &'a QfcSource,
    /// Driver configuration.
    pub config: &'a MultiPhotonConfig,
    /// Root RNG seed.
    pub seed: u64,
    /// Physics fault schedule (campaign fault kinds are ignored here).
    pub schedule: &'a FaultSchedule,
}

impl CampaignWorkload for MultiPhotonCampaign<'_> {
    fn label(&self) -> String {
        "multiphoton".to_owned()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn config_json(&self) -> QfcResult<String> {
        to_json("multiphoton config", self.config)
    }

    fn plan(&self) -> QfcResult<Vec<ShardSpec>> {
        let plan =
            plan_multiphoton_experiment(self.source, self.config, self.seed, self.schedule)?;
        let n_channels = plan.survivors.len();
        let mut shards: Vec<ShardSpec> = plan
            .survivors
            .iter()
            .enumerate()
            .map(|(i, m)| ShardSpec {
                index: cast::usize_to_u32(i),
                label: format!("bell-{m}"),
                start: cast::usize_to_u64(i),
                len: 1,
                seed: split_seed(self.seed, u64::from(*m)),
            })
            .collect();
        shards.push(ShardSpec {
            index: cast::usize_to_u32(n_channels),
            label: "fringe".to_owned(),
            start: 0,
            len: 1,
            seed: self.seed.wrapping_add(1),
        });
        // T4 counts: contiguous setting ranges, all on the same root
        // seed — per-setting streams are split off the root inside the
        // shard, exactly as the driver's streaming path does.
        let n_settings = all_settings(4).len();
        for (t, start) in (0..n_settings).step_by(TOMOGRAPHY_SETTINGS_PER_SHARD).enumerate() {
            let len = TOMOGRAPHY_SETTINGS_PER_SHARD.min(n_settings - start);
            shards.push(ShardSpec {
                index: cast::usize_to_u32(n_channels + 1 + t),
                label: format!("tomography-counts-{t}"),
                start: cast::usize_to_u64(start),
                len: cast::usize_to_u64(len),
                seed: self.seed.wrapping_add(2),
            });
        }
        Ok(shards)
    }

    fn run_shard(&self, spec: &ShardSpec) -> QfcResult<String> {
        let plan =
            plan_multiphoton_experiment(self.source, self.config, self.seed, self.schedule)?;
        let n_channels = plan.survivors.len();
        let slot = cast::u32_to_usize(spec.index);
        if slot < n_channels {
            let m = plan.survivors[slot];
            let pair: (BellTomographyResult, HealthReport) = bell_channel_task(
                self.source,
                self.config,
                self.seed,
                self.schedule,
                plan.duration_s,
                plan.amp,
                m,
            )?;
            to_json("bell shard", &pair)
        } else if slot == n_channels {
            let fringe: FourPhotonFringe = try_four_photon_fringe(
                self.source,
                self.config,
                self.seed.wrapping_add(1),
                &plan.tb4,
                plan.pump4,
            )?;
            to_json("fringe shard", &fringe)
        } else {
            let settings = all_settings(4);
            let start = cast::u64_to_usize(spec.start);
            let len = cast::u64_to_usize(spec.len);
            if start + len > settings.len() || len == 0 {
                return Err(shard_out_of_range("multiphoton", spec));
            }
            let rho4 =
                try_four_photon_state(self.source, self.config, &plan.tb4, plan.pump4)?;
            qfc_obs::counter_add(
                "shots_simulated",
                self.config
                    .four_shots_per_setting
                    .saturating_mul(cast::usize_to_u64(len)),
            );
            let partial: TomographyCountShard = (start..start + len)
                .map(|s| {
                    (
                        cast::usize_to_u64(s),
                        setting_histogram(
                            &rho4,
                            &settings[s],
                            self.config.four_shots_per_setting,
                            split_seed(spec.seed, cast::usize_to_u64(s)),
                        ),
                    )
                })
                .collect();
            to_json("tomography count shard", &partial)
        }
    }

    fn merge(&self, payloads: &[String]) -> QfcResult<String> {
        let plan =
            plan_multiphoton_experiment(self.source, self.config, self.seed, self.schedule)?;
        let n_channels = plan.survivors.len();
        let settings = all_settings(4);
        let tomo_shards = settings.len().div_ceil(TOMOGRAPHY_SETTINGS_PER_SHARD);
        if payloads.len() != n_channels + 1 + tomo_shards {
            return Err(QfcError::persistence(format!(
                "multiphoton campaign expects {} payloads, got {}",
                n_channels + 1 + tomo_shards,
                payloads.len()
            )));
        }
        // Health absorbs in exactly the driver's order: planning health,
        // then each Bell channel in channel order, then the four-photon
        // tomography stage.
        let mut health = plan.health;
        let mut bell = Vec::with_capacity(n_channels);
        for payload in payloads.iter().take(n_channels) {
            let (result, local): (BellTomographyResult, HealthReport) =
                from_json("bell shard", payload)?;
            health.absorb(local);
            bell.push(result);
        }
        let fringe: FourPhotonFringe = from_json("fringe shard", &payloads[n_channels])?;
        // Fold the count shards' histograms into one table — arrival
        // order is immaterial to the accumulator, and the per-setting
        // streams make the merged table byte-identical to the driver's
        // — then reconstruct once, exactly as the driver does.
        let mut acc = CountAccumulator::try_new(&settings)?;
        for payload in payloads.iter().skip(n_channels + 1) {
            let partial: TomographyCountShard = from_json("tomography count shard", payload)?;
            for (s, histogram) in &partial {
                acc.absorb_histogram(cast::u64_to_usize(*s), histogram)?;
            }
        }
        let data = acc.finish();
        let mut local = HealthReport::pristine();
        let tomography: FourPhotonTomography =
            four_photon_tomography_from_data(self.config, &data, &mut local)?;
        health.absorb(local);
        let run = MultiPhotonRun {
            report: MultiPhotonReport {
                bell,
                fringe,
                tomography,
            },
            health,
        };
        to_json("multiphoton run", &run)
    }

    fn reference_json(&self) -> QfcResult<String> {
        let run =
            try_run_multiphoton_experiment(self.source, self.config, self.seed, self.schedule)?;
        to_json("multiphoton run", &run)
    }
}

/// §III cross-polarization run as a campaign. The driver is inherently
/// sequential (one sweep over the analyzer settings), so the campaign is
/// a single shard — the checkpoint/resume machinery still applies, which
/// is exactly what a long single-shard run wants from a crash.
#[derive(Debug, Clone, Copy)]
pub struct CrossPolCampaign<'a> {
    /// The simulated device.
    pub source: &'a QfcSource,
    /// Driver configuration.
    pub config: &'a CrossPolConfig,
    /// Root RNG seed.
    pub seed: u64,
    /// Physics fault schedule (campaign fault kinds are ignored here).
    pub schedule: &'a FaultSchedule,
}

impl CampaignWorkload for CrossPolCampaign<'_> {
    fn label(&self) -> String {
        "crosspol".to_owned()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn config_json(&self) -> QfcResult<String> {
        to_json("crosspol config", self.config)
    }

    fn plan(&self) -> QfcResult<Vec<ShardSpec>> {
        Ok(vec![ShardSpec {
            index: 0,
            label: "full".to_owned(),
            start: 0,
            len: 1,
            seed: self.seed,
        }])
    }

    fn run_shard(&self, spec: &ShardSpec) -> QfcResult<String> {
        if spec.index != 0 {
            return Err(shard_out_of_range("crosspol", spec));
        }
        self.reference_json()
    }

    fn merge(&self, payloads: &[String]) -> QfcResult<String> {
        payloads
            .first()
            .cloned()
            .ok_or_else(|| QfcError::persistence("crosspol campaign merged zero payloads"))
    }

    fn reference_json(&self) -> QfcResult<String> {
        let run = try_run_crosspol_experiment(self.source, self.config, self.seed, self.schedule)?;
        to_json("crosspol run", &run)
    }
}
