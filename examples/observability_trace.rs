//! Observability demo: run the §II heralded-photon experiment under a
//! trace collector and print the span tree, the metrics registry, and
//! the run manifest — then show that the physics output is byte-identical
//! to an uninstrumented run.
//!
//! ```sh
//! cargo run --release --example observability_trace
//! ```

use qfc::core::heralded::{try_run_heralded_experiment, HeraldedConfig};
use qfc::core::source::QfcSource;
use qfc::faults::FaultSchedule;
use qfc::obs::Collector;

fn main() {
    let source = QfcSource::paper_device();
    let cfg = HeraldedConfig::fast_demo();
    let schedule = FaultSchedule::empty();

    // Instrumented run: every driver phase opens a span, the runtime
    // records its pool gauge, and the Monte-Carlo kernels bump counters.
    let collector = Collector::new();
    let traced = collector.install(|| {
        try_run_heralded_experiment(&source, &cfg, 2026, &schedule).expect("clean run")
    });
    let snapshot = collector.snapshot();

    println!("{}", snapshot.render());

    // The same run without a collector: the observability layer is inert
    // by default, so the physics output matches byte for byte.
    let bare =
        try_run_heralded_experiment(&source, &cfg, 2026, &schedule).expect("clean run");
    let identical = serde_json::to_string(&bare.report).expect("json")
        == serde_json::to_string(&traced.report).expect("json");
    println!("physics output identical with collector disabled: {identical}");

    // Machine-readable exports: the full trace (wall-times, gauges,
    // manifest) and the deterministic view that is invariant across
    // thread counts.
    println!("\nfull trace JSON bytes         : {}", snapshot.to_json().len());
    println!(
        "deterministic trace JSON      : {}",
        snapshot.to_deterministic_json()
    );
}
