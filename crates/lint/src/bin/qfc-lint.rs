//! `qfc-lint` CLI: lint the workspace, print the human report, write the
//! canonical JSON report, and (with `--deny`) fail on any finding.
//!
//! ```text
//! qfc-lint [--root DIR] [--json PATH] [--deny] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use qfc_lint::{find_workspace_root, report, rules, run};

struct Options {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    deny: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: None,
        deny: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a path argument")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qfc-lint [--root DIR] [--json PATH] [--deny] [--list-rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            let summary: String = rule
                .summary
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ");
            let allow = if rule.allowable {
                "allowable"
            } else {
                "not allowable"
            };
            println!("{:<16} [{allow}] {summary}", rule.name);
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let run_report = match run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let json_path = opts
        .json
        .unwrap_or_else(|| root.join("target").join("LINT_REPORT.json"));
    let json = report::to_json(&run_report);
    if let Some(parent) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    print!("{}", report::to_human(&run_report));
    println!("  report: {}", json_path.display());

    if opts.deny && !run_report.findings.is_empty() {
        eprintln!(
            "qfc-lint --deny: {} finding(s) — fix them or add a justified \
             `// qfc-lint: allow(<rule>) — <why>` at the offending line",
            run_report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
