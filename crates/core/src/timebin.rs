//! §IV — Multiplexed time-bin entangled photon pairs.
//!
//! Reproduces:
//!
//! * **F7** — post-selected two-photon quantum-interference fringes with
//!   83 % raw visibility;
//! * **T2** — violation of the CHSH inequality on **all five** channel
//!   pairs symmetric to the pump.
//!
//! The per-frame quantum state of each channel pair is the dephased
//! time-bin Bell state whose visibility budget combines multi-pair
//! emission (from the source's μ), residual interferometer phase noise,
//! and pulse-mode overlap; accidental coincidences add a
//! phase-independent floor. Counts are then drawn frame-by-frame.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{Arm, FaultSchedule, HealthReport, QfcError, QfcResult};
use qfc_mathkit::fit::{fit_fringe, FringeFit};
use qfc_mathkit::rng::{binomial, rng_from_seed, split_seed};
use qfc_interferometry::stabilization::visibility_factor;
use qfc_quantum::chsh::{ChshSettings, CLASSICAL_BOUND};
use qfc_quantum::density::DensityMatrix;
use qfc_quantum::timebin::{dephased_timebin_bell, middle_slot_coincidence};

use crate::report::{Comparison, Expectation, ExperimentReport};
use crate::source::QfcSource;
use crate::supervisor::{self, SupervisorPolicy};

/// Frame rate of the double-pulse pump, Hz (the paper's 10 MHz).
pub const FRAME_RATE_HZ: f64 = 10.0e6;

/// Configuration of the §IV time-bin run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBinConfig {
    /// Channel pairs measured (paper: 5).
    pub channels: u32,
    /// Double-pulse frames integrated per phase point.
    pub frames_per_point: u64,
    /// Phase points in the fringe scan.
    pub phase_steps: usize,
    /// Total single-photon efficiency per arm (detector × collection).
    pub arm_efficiency: f64,
    /// Dark/background probability per post-selection gate per frame.
    pub dark_prob_per_gate: f64,
    /// Residual RMS phase noise of each interferometer, rad.
    pub phase_noise_rms: f64,
    /// Temporal-mode overlap visibility of the two pump pulses.
    pub mode_overlap_visibility: f64,
    /// Phase written between the two pump pulses, rad.
    pub pump_phase: f64,
}

impl TimeBinConfig {
    /// The published §IV conditions.
    pub fn paper() -> Self {
        Self {
            channels: 5,
            frames_per_point: 50_000_000, // 5 s at 10 MHz per point
            phase_steps: 24,
            arm_efficiency: 0.105,
            dark_prob_per_gate: 1.0e-6,
            phase_noise_rms: 0.15,
            mode_overlap_visibility: 0.93,
            pump_phase: 0.0,
        }
    }

    /// Smaller run for tests.
    pub fn fast_demo() -> Self {
        Self {
            channels: 2,
            frames_per_point: 10_000_000,
            phase_steps: 16,
            ..Self::paper()
        }
    }
}

/// The per-frame state model of one channel pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelStateModel {
    /// Channel index.
    pub m: u32,
    /// Mean pairs per frame.
    pub mu: f64,
    /// State visibility after multi-pair, phase-noise and mode-overlap
    /// penalties (before accidentals).
    pub state_visibility: f64,
    /// The modeled two-qubit state.
    pub rho: DensityMatrix,
    /// Phase-independent accidental coincidence probability per frame.
    pub accidental_prob: f64,
}

/// Builds the state model of channel `m` from the source and config.
///
/// # Panics
///
/// Panics if the source is not in the double-pulse regime.
pub fn channel_state_model(
    source: &QfcSource,
    config: &TimeBinConfig,
    m: u32,
) -> ChannelStateModel {
    channel_state_model_boosted(source, config, m, 1.0)
}

/// Fallible form of [`channel_state_model`].
///
/// # Errors
///
/// [`QfcError::RegimeMismatch`] when the source is not double-pulsed.
pub fn try_channel_state_model(
    source: &QfcSource,
    config: &TimeBinConfig,
    m: u32,
) -> QfcResult<ChannelStateModel> {
    try_channel_state_model_boosted(source, config, m, 1.0)
}

/// Like [`channel_state_model`], with the pump *amplitude* scaled by
/// `power_factor` (the §V four-photon runs pump harder, trading pairwise
/// visibility for four-fold rate: `μ ∝ P²`).
///
/// # Panics
///
/// Panics if the source is not in the double-pulse regime or
/// `power_factor <= 0`.
pub fn channel_state_model_boosted(
    source: &QfcSource,
    config: &TimeBinConfig,
    m: u32,
    power_factor: f64,
) -> ChannelStateModel {
    match try_channel_state_model_boosted(source, config, m, power_factor) {
        Ok(model) => model,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible form of [`channel_state_model_boosted`].
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] for a non-positive `power_factor`,
/// [`QfcError::RegimeMismatch`] when the source is not double-pulsed.
pub fn try_channel_state_model_boosted(
    source: &QfcSource,
    config: &TimeBinConfig,
    m: u32,
    power_factor: f64,
) -> QfcResult<ChannelStateModel> {
    if power_factor.is_nan() || power_factor <= 0.0 {
        return Err(QfcError::invalid("power factor must be positive"));
    }
    let mu = source.try_pairs_per_frame(m)? * power_factor * power_factor;
    let v_multipair =
        qfc_quantum::fock::TwoModeSqueezedVacuum::new(mu).multipair_visibility_limit();
    // Pump interferometer + two analyzers, each with the residual noise.
    let v_phase = visibility_factor(config.phase_noise_rms).powi(3);
    let v = v_multipair * v_phase * config.mode_overlap_visibility;
    let rho = dephased_timebin_bell(config.pump_phase, v);
    // Accidentals: uncorrelated middle-slot singles on both arms.
    let p_single = mu * config.arm_efficiency / 2.0 + config.dark_prob_per_gate;
    let accidental_prob = p_single * p_single;
    Ok(ChannelStateModel {
        m,
        mu,
        state_visibility: v,
        rho,
        accidental_prob,
    })
}

/// Coincidence probability per frame at analyzer phases `(a, b)`.
pub fn coincidence_probability(
    model: &ChannelStateModel,
    config: &TimeBinConfig,
    phi_a: f64,
    phi_b: f64,
) -> f64 {
    let eta2 = config.arm_efficiency * config.arm_efficiency;
    model.mu * eta2 * middle_slot_coincidence(&model.rho, phi_a, phi_b) + model.accidental_prob
}

/// One channel's fringe-scan result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelFringe {
    /// Channel index.
    pub m: u32,
    /// (analyzer phase, post-selected coincidence counts) points.
    pub points: Vec<(f64, u64)>,
    /// Harmonic fit of the fringe.
    pub fit: FringeFit,
    /// State visibility of the underlying model.
    pub state_visibility: f64,
}

/// One channel's CHSH measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChshChannelResult {
    /// Channel index.
    pub m: u32,
    /// Measured CHSH S value.
    pub s_value: f64,
    /// 1σ statistical uncertainty of S.
    pub sigma: f64,
    /// Standard deviations above the classical bound.
    pub n_sigma_violation: f64,
}

impl ChshChannelResult {
    /// `true` when the classical bound is violated by at least `k` σ.
    pub fn violates_by(&self, k: f64) -> bool {
        self.s_value > CLASSICAL_BOUND && self.n_sigma_violation >= k
    }
}

/// Full §IV report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeBinReport {
    /// Fringe scan per channel (F7).
    pub fringes: Vec<ChannelFringe>,
    /// CHSH per channel (T2).
    pub chsh: Vec<ChshChannelResult>,
}

impl TimeBinReport {
    /// Mean fitted raw visibility across channels.
    pub fn mean_visibility(&self) -> f64 {
        self.fringes.iter().map(|f| f.fit.visibility).sum::<f64>()
            / cast::to_f64(self.fringes.len().max(1))
    }

    /// Number of channels violating CHSH (by ≥ 2σ).
    pub fn channels_violating(&self) -> usize {
        self.chsh.iter().filter(|c| c.violates_by(2.0)).count()
    }

    /// Comparison rows (paper: 83 % visibility; violation on all 5).
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§IV time-bin entanglement (F7/T2)");
        r.push(Comparison::new(
            "F7",
            "raw two-photon interference visibility",
            0.83,
            self.mean_visibility(),
            "",
            Expectation::Within { rel_tol: 0.07 },
        ));
        r.push(Comparison::new(
            "T2",
            "channels violating CHSH (paper: all measured)",
            cast::to_f64(self.chsh.len()),
            cast::to_f64(self.channels_violating()),
            "",
            Expectation::AtLeast,
        ));
        let min_s = self
            .chsh
            .iter()
            .map(|c| c.s_value)
            .fold(f64::INFINITY, f64::min);
        r.push(Comparison::new(
            "T2",
            "minimum channel S (classical bound 2)",
            2.0,
            min_s,
            "",
            Expectation::AtLeast,
        ));
        r
    }
}

/// Slot-resolved result of the event-based §IV Monte Carlo at one
/// analyzer phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotScanPoint {
    /// Analyzer-A phase.
    pub phase: f64,
    /// Detected joint-slot counts `[a][b]` (first/middle/last).
    pub slots: [[u64; 3]; 3],
}

impl SlotScanPoint {
    /// The post-selected middle/middle coincidences.
    pub fn middle_middle(&self) -> u64 {
        self.slots[1][1]
    }

    /// Counts in the phase-independent satellite cells.
    pub fn satellites(&self) -> u64 {
        let mut total = 0;
        for (i, row) in self.slots.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if !(i == 1 && j == 1) {
                    total += c;
                }
            }
        }
        total
    }
}

/// Event-based §IV Monte Carlo: every emitted pair is propagated through
/// the full slot-resolved Franson table of
/// [`qfc_interferometry::analysis`], detected with the per-arm
/// efficiency, and binned by joint arrival slot; dark coincidences land
/// in the middle/middle cell. Slower but assumption-free — used to
/// cross-validate the analytic fringe of [`run_timebin_experiment`].
pub fn run_timebin_event_mc(
    source: &QfcSource,
    config: &TimeBinConfig,
    m: u32,
    phases: &[f64],
    seed: u64,
) -> Vec<SlotScanPoint> {
    use qfc_interferometry::analysis::two_photon_slot_table;
    use qfc_interferometry::michelson::UnbalancedMichelson;
    use qfc_mathkit::sampling::DiscreteSampler;

    let model = channel_state_model(source, config, m);
    let eta = config.arm_efficiency;
    let ifo_b = UnbalancedMichelson::paper_instrument(0.0);

    // Each phase point draws from its own split-seed stream, so points
    // are independent tasks and the scan parallelizes without any
    // cross-point RNG coupling.
    let indexed: Vec<(usize, f64)> = phases.iter().copied().enumerate().collect();
    qfc_runtime::par_map(&indexed, |&(k, phase)| {
        let mut rng = rng_from_seed(split_seed(seed, cast::usize_to_u64(k)));
        {
            let ifo_a = UnbalancedMichelson::paper_instrument(phase);
            let table = two_photon_slot_table(&model.rho, &ifo_a, &ifo_b);
            // Flatten into a 10-way outcome: 9 slot cells (+ detection
            // efficiency) and "no coincidence".
            let mut weights = [0.0f64; 10];
            let mut total = 0.0;
            for i in 0..3 {
                for j in 0..3 {
                    let w = table[i][j] * eta * eta;
                    weights[3 * i + j] = w;
                    total += w;
                }
            }
            weights[9] = (1.0 - total).max(0.0);
            // Threshold ladder built once per phase point (RNG-free, so
            // it cannot shift the draw stream); each frame then costs one
            // uniform and a binary search instead of a 10-way scan.
            let sampler = DiscreteSampler::new(&weights);

            let n_pairs = binomial(&mut rng, config.frames_per_point, model.mu);
            let mut slots = [[0u64; 3]; 3];
            // qfc-lint: hot
            for _ in 0..n_pairs {
                let outcome = sampler.sample(&mut rng);
                if outcome < 9 {
                    slots[outcome / 3][outcome % 3] += 1;
                }
            }
            // Accidentals (dark/uncorrelated coincidences) land in the
            // post-selected middle/middle gate; single-arm darks pairing
            // with real photons are absorbed in `accidental_prob`.
            slots[1][1] += binomial(&mut rng, config.frames_per_point, model.accidental_prob);
            SlotScanPoint { phase, slots }
        }
    })
}

/// A completed §IV run: the physics report plus its health record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeBinRun {
    /// The physics results.
    pub report: TimeBinReport,
    /// Faults injected and recovery actions taken.
    pub health: HealthReport,
}

impl TimeBinRun {
    /// Comparison rows with the health section attached.
    pub fn to_report(&self) -> ExperimentReport {
        self.report.to_report().with_health(self.health.clone())
    }
}

/// Nominal wall-clock length of the §IV scan, s: every channel
/// integrates `frames_per_point` frames at [`FRAME_RATE_HZ`] for each
/// of the `phase_steps` fringe points and the 16 CHSH projector cells.
pub fn nominal_duration_s(config: &TimeBinConfig) -> f64 {
    cast::to_f64(config.frames_per_point) * (cast::to_f64(config.phase_steps) + 16.0) / FRAME_RATE_HZ
}

/// Runs the §IV virtual experiment: fringe scans and CHSH on every
/// channel pair.
pub fn run_timebin_experiment(
    source: &QfcSource,
    config: &TimeBinConfig,
    seed: u64,
) -> TimeBinReport {
    match try_run_timebin_experiment(source, config, seed, &FaultSchedule::empty()) {
        Ok(run) => run.report,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// The RNG-free planning stage of the §IV run: supervisor outcomes plus
/// the per-channel fault-adjusted operating points. Everything a shard
/// executor needs to run one channel independently — the campaign layer
/// decomposes the run into per-channel shards from this plan, and
/// [`try_run_timebin_experiment`] drives exactly the same plan in one
/// process.
#[derive(Debug, Clone)]
pub struct TimeBinPlan {
    /// Nominal run length, s.
    pub duration_s: f64,
    /// Pump amplitude factor after fault/outage derating.
    pub amp: f64,
    /// Surviving channels with their fault-adjusted configs and state
    /// models, in channel order.
    pub models: Vec<(u32, TimeBinConfig, ChannelStateModel)>,
    /// Supervisor health accumulated during planning.
    pub health: HealthReport,
}

/// Builds the [`TimeBinPlan`]: validation, supervisor planning (relocks,
/// quarantines), and the per-channel operating points. Pure and RNG-free
/// apart from the deterministic supervisor `fault_stream` lanes — calling
/// it never perturbs the physics draw streams.
///
/// # Errors
///
/// As [`try_run_timebin_experiment`].
pub fn plan_timebin_experiment(
    source: &QfcSource,
    config: &TimeBinConfig,
    seed: u64,
    schedule: &FaultSchedule,
) -> QfcResult<TimeBinPlan> {
    if config.channels < 1 {
        return Err(QfcError::invalid("need at least one channel"));
    }
    if config.phase_steps < 5 {
        return Err(QfcError::invalid("need ≥ 5 phase steps for the fit"));
    }
    let duration_s = nominal_duration_s(config);
    let mut health = HealthReport::pristine();
    let policy = SupervisorPolicy::default();
    supervisor::record_schedule_faults(schedule, duration_s, &mut health);
    let relocks =
        supervisor::plan_pump_relocks(schedule, duration_s, &policy, seed, &mut health)?;
    let live = supervisor::live_fraction(&relocks, duration_s);
    let survivors = supervisor::partition_channels(
        schedule,
        config.channels,
        duration_s,
        &policy,
        "timebin experiment",
        &mut health,
    )?;

    // Pump faults scale the pair rate; μ ∝ (amplitude factor)², so the
    // rate factor maps to an amplitude factor via its square root. An
    // empty schedule produces exactly 1.0 here.
    let linewidth_hz = source.ring().linewidth().hz();
    let amp = (schedule.mean_pump_rate_factor(0.0, duration_s, linewidth_hz) * live)
        .max(1e-6)
        .sqrt();

    // Pre-build the per-channel fault-adjusted operating points (cheap
    // and RNG-free) so regime errors surface before the draw stage.
    let models: Vec<(u32, TimeBinConfig, ChannelStateModel)> = survivors
        .iter()
        .map(|&m| {
            let mut c = *config;
            c.pump_phase += schedule.mean_phase_offset(0.0, duration_s);
            c.dark_prob_per_gate *= schedule.mean_dark_multiplier(m, 0.0, duration_s);
            let thin_s = 1.0 - schedule.dead_fraction(m, Arm::Signal, 0.0, duration_s);
            let thin_i = 1.0 - schedule.dead_fraction(m, Arm::Idler, 0.0, duration_s);
            c.arm_efficiency *= (thin_s * thin_i).sqrt();
            try_channel_state_model_boosted(source, &c, m, amp).map(|model| (m, c, model))
        })
        .collect::<QfcResult<_>>()?;
    Ok(TimeBinPlan {
        duration_s,
        amp,
        models,
        health,
    })
}

/// Runs one channel of the §IV scan: the F7 fringe and the T2 CHSH
/// measurement, drawing from the channel's dedicated split-seed stream
/// `split_seed(seed, m)`. This is the shard body of the campaign
/// decomposition — its output depends only on `(seed, m, c, model)`, so
/// it produces identical bytes whether run in-process, on a pool worker,
/// or in a separate resumed process.
pub fn timebin_channel_task(
    seed: u64,
    m: u32,
    c: &TimeBinConfig,
    model: &ChannelStateModel,
) -> (ChannelFringe, ChshChannelResult) {
    qfc_obs::counter_add(
        "shots_simulated",
        c.frames_per_point.saturating_mul(cast::usize_to_u64(c.phase_steps) + 16),
    );
    let mut rng = rng_from_seed(split_seed(seed, u64::from(m)));

    // F7 fringe: scan one analyzer phase.
    let mut points = Vec::with_capacity(c.phase_steps);
    for k in 0..c.phase_steps {
        let phi = 2.0 * std::f64::consts::PI * cast::to_f64(k) / cast::to_f64(c.phase_steps);
        let p = coincidence_probability(model, c, phi, 0.0);
        let counts = binomial(&mut rng, c.frames_per_point, p);
        points.push((phi, counts));
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = points
        .iter()
        .map(|&(p, c)| (p, cast::to_f64(c)))
        .unzip();
    let fit = fit_fringe(&xs, &ys);
    let fringe = ChannelFringe {
        m,
        points,
        fit,
        state_visibility: model.state_visibility,
    };

    // T2 CHSH: measure the four correlators; each needs the four
    // projector combinations (φ, φ+π) on both sides.
    let settings = ChshSettings::optimal_for_phi_plus();
    let pairs = [
        (settings.a, settings.b),
        (settings.a, settings.b_prime),
        (settings.a_prime, settings.b),
        (settings.a_prime, settings.b_prime),
    ];
    let mut e = [0.0f64; 4];
    let mut total_counts = 0u64;
    for (idx, &(alpha, beta)) in pairs.iter().enumerate() {
        let mut n = [[0u64; 2]; 2];
        for (i, da) in [0.0, std::f64::consts::PI].iter().enumerate() {
            for (j, db) in [0.0, std::f64::consts::PI].iter().enumerate() {
                let p = coincidence_probability(model, c, alpha + da, beta + db);
                n[i][j] = binomial(&mut rng, c.frames_per_point, p);
            }
        }
        let sum = cast::to_f64(n[0][0] + n[0][1] + n[1][0] + n[1][1]);
        total_counts += n[0][0] + n[0][1] + n[1][0] + n[1][1];
        e[idx] = if sum > 0.0 {
            (cast::to_f64(n[0][0]) + cast::to_f64(n[1][1]) - cast::to_f64(n[0][1]) - cast::to_f64(n[1][0])) / sum
        } else {
            0.0
        };
    }
    let s = (e[0] + e[1] + e[2] - e[3]).abs();
    // Poisson propagation: σ_E ≈ √((1 − E²)/N) per correlator.
    let n_per = (cast::to_f64(total_counts) / 4.0).max(1.0);
    let sigma = (e.iter().map(|ei| (1.0 - ei * ei) / n_per).sum::<f64>()).sqrt();
    let chsh = ChshChannelResult {
        m,
        s_value: s,
        sigma,
        n_sigma_violation: (s - CLASSICAL_BOUND) / sigma.max(1e-12),
    };
    (fringe, chsh)
}

/// Fallible, fault-aware form of [`run_timebin_experiment`].
///
/// The §IV driver is frame-based, so faults enter as pure modifiers of
/// the per-frame probabilities: pump faults and lock-loss outages scale
/// `μ`, phase jumps offset the pump phase, dark bursts raise the
/// accidental floor, and sub-quarantine detector dropouts thin the arm
/// efficiency. The RNG draw sequence is untouched, so an empty schedule
/// reproduces the panicking API bit for bit at any thread count.
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] for a bad configuration,
/// [`QfcError::RegimeMismatch`] when the source is not double-pulsed,
/// [`QfcError::ChannelsExhausted`] when every channel is quarantined,
/// and [`QfcError::LockReacquisitionFailed`] when the pump cannot be
/// re-locked.
pub fn try_run_timebin_experiment(
    source: &QfcSource,
    config: &TimeBinConfig,
    seed: u64,
    schedule: &FaultSchedule,
) -> QfcResult<TimeBinRun> {
    let _driver_span = qfc_obs::span("driver.timebin");
    crate::report::record_manifest(seed, config, schedule);

    let source_span = qfc_obs::span("driver.timebin.source");
    let plan = plan_timebin_experiment(source, config, seed, schedule)?;
    drop(source_span);

    // One independent split-seed stream per channel pair: the fringe and
    // CHSH draws of channel m depend only on (seed, m), so channels are
    // parallel tasks with a thread-count-independent result.
    let timetag_span = qfc_obs::span("driver.timebin.timetag");
    let per_channel: Vec<(ChannelFringe, ChshChannelResult)> =
        qfc_runtime::par_map(&plan.models, |(m, c, model)| {
            timebin_channel_task(seed, *m, c, model)
        });
    drop(timetag_span);

    let analysis_span = qfc_obs::span("driver.timebin.analysis");
    let (fringes, chsh) = per_channel.into_iter().unzip();
    drop(analysis_span);

    let _report_span = qfc_obs::span("driver.timebin.report");
    Ok(TimeBinRun {
        report: TimeBinReport { fringes, chsh },
        health: plan.health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> QfcSource {
        QfcSource::paper_device_timebin()
    }

    #[test]
    fn state_model_visibility_budget() {
        let cfg = TimeBinConfig::paper();
        let model = channel_state_model(&source(), &cfg, 1);
        assert!(model.mu > 0.005 && model.mu < 0.1, "μ = {}", model.mu);
        assert!(
            model.state_visibility > 0.8 && model.state_visibility < 0.95,
            "V = {}",
            model.state_visibility
        );
        assert!(model.accidental_prob > 0.0);
    }

    #[test]
    fn fringe_visibility_near_paper_value() {
        let report = run_timebin_experiment(&source(), &TimeBinConfig::fast_demo(), 41);
        for f in &report.fringes {
            assert!(
                (f.fit.visibility - 0.83).abs() < 0.08,
                "m={}: V = {}",
                f.m,
                f.fit.visibility
            );
        }
    }

    #[test]
    fn chsh_violated_on_all_channels() {
        let report = run_timebin_experiment(&source(), &TimeBinConfig::fast_demo(), 42);
        assert_eq!(report.channels_violating(), report.chsh.len());
        for c in &report.chsh {
            assert!(c.s_value > 2.0, "m={}: S = {}", c.m, c.s_value);
            assert!(c.s_value < 2.0 * std::f64::consts::SQRT_2 + 3.0 * c.sigma);
        }
    }

    #[test]
    fn fringe_oscillates_through_minimum() {
        let report = run_timebin_experiment(&source(), &TimeBinConfig::fast_demo(), 43);
        let f = &report.fringes[0];
        let max = f.points.iter().map(|p| p.1).max().expect("points");
        let min = f.points.iter().map(|p| p.1).min().expect("points");
        assert!(max > 5 * min, "max {max} min {min}");
    }

    #[test]
    fn report_rows_pass() {
        let report = run_timebin_experiment(&source(), &TimeBinConfig::fast_demo(), 44);
        let rows = report.to_report();
        assert!(rows.all_pass(), "{}", rows.render());
    }

    #[test]
    fn probability_peaks_at_sum_phase() {
        let cfg = TimeBinConfig::paper();
        let model = channel_state_model(&source(), &cfg, 1);
        let p0 = coincidence_probability(&model, &cfg, 0.0, 0.0);
        let p_pi = coincidence_probability(&model, &cfg, std::f64::consts::PI, 0.0);
        assert!(p0 > 5.0 * p_pi);
    }

    #[test]
    #[should_panic(expected = "phase steps")]
    fn too_few_steps_rejected() {
        let mut cfg = TimeBinConfig::fast_demo();
        cfg.phase_steps = 3;
        let _ = run_timebin_experiment(&source(), &cfg, 1);
    }

    #[test]
    fn empty_schedule_matches_legacy_run() {
        let cfg = TimeBinConfig::fast_demo();
        let legacy = run_timebin_experiment(&source(), &cfg, 47);
        let run = try_run_timebin_experiment(&source(), &cfg, 47, &FaultSchedule::empty())
            .expect("clean run");
        assert!(run.health.is_pristine());
        assert_eq!(
            serde_json::to_string(&legacy).expect("json"),
            serde_json::to_string(&run.report).expect("json"),
        );
    }

    #[test]
    fn stress_schedule_survives_with_finite_figures() {
        let cfg = TimeBinConfig::fast_demo();
        let duration = nominal_duration_s(&cfg);
        let schedule = FaultSchedule::stress(9, duration);
        let run = try_run_timebin_experiment(&source(), &cfg, 47, &schedule)
            .expect("run survives the stress schedule");
        assert!(!run.health.is_pristine());
        for f in &run.report.fringes {
            assert!(f.fit.visibility.is_finite());
        }
        for c in &run.report.chsh {
            assert!(c.s_value.is_finite());
        }
    }

    #[test]
    fn wrong_regime_is_a_taxonomy_error() {
        let err = try_run_timebin_experiment(
            &QfcSource::paper_device(),
            &TimeBinConfig::fast_demo(),
            1,
            &FaultSchedule::empty(),
        )
        .expect_err("CW source cannot run the time-bin experiment");
        assert!(matches!(err, QfcError::RegimeMismatch { .. }));
    }

    #[test]
    fn event_mc_cross_validates_analytic_fringe() {
        let cfg = TimeBinConfig::fast_demo();
        let phases: Vec<f64> = (0..12)
            .map(|k| 2.0 * std::f64::consts::PI * k as f64 / 12.0)
            .collect();
        let scan = run_timebin_event_mc(&source(), &cfg, 1, &phases, 45);
        let model = channel_state_model(&source(), &cfg, 1);
        for p in &scan {
            let expected =
                coincidence_probability(&model, &cfg, p.phase, 0.0) * cfg.frames_per_point as f64;
            let got = p.middle_middle() as f64;
            // 5σ Poisson agreement between the two formalisms.
            let tol = 5.0 * expected.sqrt().max(3.0);
            assert!(
                (got - expected).abs() < tol,
                "phase {}: MC {} vs analytic {}",
                p.phase,
                got,
                expected
            );
        }
    }

    #[test]
    fn event_mc_satellites_are_phase_independent() {
        let cfg = TimeBinConfig::fast_demo();
        let scan = run_timebin_event_mc(
            &source(),
            &cfg,
            1,
            &[0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI],
            46,
        );
        let sats: Vec<f64> = scan.iter().map(|p| p.satellites() as f64).collect();
        let mean = sats.iter().sum::<f64>() / sats.len() as f64;
        for s in &sats {
            assert!((s - mean).abs() < 5.0 * mean.sqrt(), "satellites {s} vs mean {mean}");
        }
        // Middle/middle swings by far more than the satellites do.
        let mm: Vec<u64> = scan.iter().map(|p| p.middle_middle()).collect();
        assert!(*mm.iter().max().expect("points") > 3 * mm.iter().min().expect("points").max(&1));
    }
}
