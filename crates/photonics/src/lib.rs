//! # qfc-photonics
//!
//! Photonic substrate of the `qfc` workspace: the Hydex material platform,
//! dispersion-engineered waveguide, high-Q add-drop microring, spontaneous
//! four-wave mixing engine, optical parametric oscillation, telecom comb
//! grid, joint spectral amplitudes, and the pump configurations that select
//! which family of quantum states the comb emits.
//!
//! ## Example
//!
//! ```
//! use qfc_photonics::ring::Microring;
//! use qfc_photonics::fwm;
//! use qfc_photonics::units::Power;
//! use qfc_photonics::waveguide::Polarization;
//!
//! let ring = Microring::paper_device();
//! // Generated pair flux on the first comb channel at the paper's 15 mW.
//! let rate = fwm::pair_rate_cw(&ring, Polarization::Te, Power::from_mw(15.0), 1);
//! assert!(rate > 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comb;
pub mod constants;
pub mod filter;
pub mod fwm;
pub mod jones;
pub mod jsa;
pub mod lle;
pub mod material;
pub mod memory;
pub mod opo;
pub mod pump;
pub mod ring;
pub mod spectrum;
pub mod sweep;
pub mod thermal;
pub mod units;
pub mod waveguide;

pub use comb::CombGrid;
pub use material::Material;
pub use pump::PumpConfig;
pub use ring::{Microring, MicroringBuilder};
pub use sweep::{BatchBuffers, SweepGrid};
pub use units::{Frequency, Power, Wavelength};
pub use waveguide::{Polarization, Waveguide};
