//! Trace exporters: full JSON (with wall-times), deterministic JSON
//! (thread-count-invariant view), and a human-readable tree.
//!
//! The JSON writer is hand-rolled so the crate stays zero-dependency;
//! keys are emitted in fixed order and objects never pass through a hash
//! map, so output is byte-stable for a given snapshot.

use crate::manifest::RunManifest;

/// One aggregated span node in a [`TraceSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// Span name, e.g. `driver.heralded.analysis`.
    pub name: String,
    /// How many times this span was entered.
    pub calls: u64,
    /// Total wall-time across all entries, in nanoseconds.
    pub total_ns: u128,
    /// Child spans in first-entry order (deterministic: spans only open
    /// on the driver thread).
    pub children: Vec<SpanData>,
}

/// A consistent copy of a collector's trace tree, metrics registry, and
/// manifest, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Root of the span tree (synthetic `run` node).
    pub spans: SpanData,
    /// Counters in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in registration order.
    pub gauges: Vec<(String, f64)>,
    /// The run manifest, when one was recorded.
    pub manifest: Option<RunManifest>,
}

impl TraceSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Full JSON export: span tree with wall-times, counters, gauges,
    /// and the manifest. Wall-times vary run-to-run; for a
    /// byte-comparable view use [`Self::to_deterministic_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"spans\":");
        write_span(&mut out, &self.spans, true);
        out.push_str(",\"counters\":");
        write_counters(&mut out, &self.counters);
        out.push_str(",\"gauges\":[");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_string(&mut out, name);
            out.push_str(",\"value\":");
            write_f64(&mut out, *value);
            out.push('}');
        }
        out.push_str("],\"manifest\":");
        match &self.manifest {
            Some(m) => write_manifest(&mut out, m),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Deterministic JSON export: span structure and call counts plus
    /// counters only. Omits wall-times (nondeterministic), gauges and
    /// the manifest (both record the actual execution environment, e.g.
    /// thread count) — so this view is byte-identical across thread
    /// counts for a deterministic workload.
    pub fn to_deterministic_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"spans\":");
        write_span(&mut out, &self.spans, false);
        out.push_str(",\"counters\":");
        write_counters(&mut out, &self.counters);
        out.push('}');
        out
    }

    /// Human-readable rendering: indented span tree with timings,
    /// followed by the metrics registry and the manifest.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("trace:\n");
        render_span(&mut out, &self.spans, 1);
        out.push_str("counters:\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<24} {value}\n"));
        }
        out.push_str("gauges:\n");
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name:<24} {value}\n"));
        }
        if let Some(m) = &self.manifest {
            out.push_str("manifest:\n");
            out.push_str(&format!("  {:<24} {}\n", "seed", m.seed));
            out.push_str(&format!("  {:<24} {}\n", "config_digest", m.config_digest));
            out.push_str(&format!("  {:<24} {}\n", "threads", m.threads));
            out.push_str(&format!(
                "  {:<24} {}\n",
                "qfc_threads_env",
                m.qfc_threads_env.as_deref().unwrap_or("-")
            ));
            out.push_str(&format!("  {:<24} {}\n", "fault_events", m.fault_events));
            if !m.fault_kinds.is_empty() {
                out.push_str(&format!(
                    "  {:<24} {}\n",
                    "fault_kinds",
                    m.fault_kinds.join(", ")
                ));
            }
            out.push_str(&format!("  {:<24} {}\n", "crate_version", m.crate_version));
            if let Some(c) = &m.campaign {
                out.push_str(&format!(
                    "  {:<24} {} ({} shards, {} resumed, {} retries, {} quarantined, \
                     {} checkpoints rejected)\n",
                    "campaign",
                    c.campaign_id,
                    c.shards_total,
                    c.shards_resumed,
                    c.retries,
                    c.quarantined,
                    c.checkpoints_rejected
                ));
            }
        }
        out
    }
}

fn render_span(out: &mut String, span: &SpanData, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", span.name);
    if span.calls > 0 {
        // qfc-lint: allow(lossy-cast) — zero-dependency crate; ns→ms for human-readable trace text only, exact ≤ 2^53 ns (~104 days)
        let ms = span.total_ns as f64 / 1e6;
        out.push_str(&format!("{label:<40} calls={:<6} wall={ms:.3}ms\n", span.calls));
    } else {
        out.push_str(&format!("{label}\n"));
    }
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

fn write_counters(out: &mut String, counters: &[(String, u64)]) {
    out.push('[');
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_string(out, name);
        out.push_str(&format!(",\"value\":{value}}}"));
    }
    out.push(']');
}

fn write_span(out: &mut String, span: &SpanData, with_timings: bool) {
    out.push_str("{\"name\":");
    write_string(out, &span.name);
    out.push_str(&format!(",\"calls\":{}", span.calls));
    if with_timings {
        out.push_str(&format!(",\"wall_ns\":{}", span.total_ns));
    }
    out.push_str(",\"children\":[");
    for (i, child) in span.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span(out, child, with_timings);
    }
    out.push_str("]}");
}

fn write_manifest(out: &mut String, m: &RunManifest) {
    out.push_str(&format!("{{\"seed\":{}", m.seed));
    out.push_str(",\"config_digest\":");
    write_string(out, &m.config_digest);
    out.push_str(&format!(",\"threads\":{}", m.threads));
    out.push_str(",\"qfc_threads_env\":");
    match &m.qfc_threads_env {
        Some(s) => write_string(out, s),
        None => out.push_str("null"),
    }
    out.push_str(&format!(",\"fault_events\":{}", m.fault_events));
    out.push_str(",\"fault_kinds\":[");
    for (i, kind) in m.fault_kinds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(out, kind);
    }
    out.push_str("],\"crate_version\":");
    write_string(out, &m.crate_version);
    out.push_str(",\"campaign\":");
    match &m.campaign {
        Some(c) => {
            out.push_str("{\"campaign_id\":");
            write_string(out, &c.campaign_id);
            out.push_str(&format!(
                ",\"shards_total\":{},\"shards_resumed\":{},\"retries\":{},\
                 \"quarantined\":{},\"checkpoints_rejected\":{}}}",
                c.shards_total, c.shards_resumed, c.retries, c.quarantined, c.checkpoints_rejected
            ));
        }
        None => out.push_str("null"),
    }
    out.push('}');
}

/// Writes a JSON string literal with standard escaping.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 with shortest-round-trip formatting (JSON `null` for
/// non-finite values, which JSON cannot represent).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            spans: SpanData {
                name: "run".into(),
                calls: 0,
                total_ns: 0,
                children: vec![SpanData {
                    name: "driver.demo".into(),
                    calls: 2,
                    total_ns: 1_500_000,
                    children: Vec::new(),
                }],
            },
            counters: vec![("shots_simulated".into(), 64)],
            gauges: vec![("pool_threads".into(), 4.0)],
            manifest: Some(RunManifest {
                seed: 7,
                config_digest: "00000000deadbeef".into(),
                threads: 4,
                qfc_threads_env: None,
                fault_events: 1,
                fault_kinds: vec!["dark-count burst ×5".into()],
                crate_version: "0.1.0".into(),
                campaign: Some(crate::manifest::CampaignSummary {
                    campaign_id: "00000000cafef00d".into(),
                    shards_total: 8,
                    shards_resumed: 3,
                    retries: 2,
                    quarantined: 0,
                    checkpoints_rejected: 1,
                }),
            }),
        }
    }

    #[test]
    fn full_json_contains_everything() {
        let json = demo_snapshot().to_json();
        assert!(json.contains("\"wall_ns\":1500000"));
        assert!(json.contains("\"seed\":7"));
        assert!(json.contains("\"pool_threads\""));
        assert!(json.contains("dark-count burst"));
        assert!(json.contains("\"campaign_id\":\"00000000cafef00d\""));
        assert!(json.contains("\"shards_resumed\":3"));
    }

    #[test]
    fn deterministic_json_omits_environment() {
        let json = demo_snapshot().to_deterministic_json();
        assert!(!json.contains("wall_ns"));
        assert!(!json.contains("pool_threads"));
        assert!(!json.contains("seed"));
        assert!(json.contains("\"calls\":2"));
        assert!(json.contains("\"shots_simulated\""));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn render_is_human_readable() {
        let text = demo_snapshot().render();
        assert!(text.contains("trace:"));
        assert!(text.contains("driver.demo"));
        assert!(text.contains("counters:"));
        assert!(text.contains("manifest:"));
        assert!(text.contains("config_digest"));
    }
}
