//! Waveguide model: modal properties for the TE and TM polarizations.
//!
//! The §III experiment hinges on *waveguide design*: by choosing the core
//! cross-section, the TE and TM resonance grids of the ring can be offset
//! against each other (suppressing stimulated FWM) while keeping their free
//! spectral ranges matched (preserving energy conservation for the
//! spontaneous type-II process). The model exposes exactly those design
//! knobs.

use serde::{Deserialize, Serialize};

use crate::constants::SPEED_OF_LIGHT;
use crate::material::Material;
use crate::units::{Frequency, Wavelength};

/// Polarization mode family of the waveguide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarization {
    /// Transverse-electric mode.
    Te,
    /// Transverse-magnetic mode.
    Tm,
}

impl Polarization {
    /// The orthogonal polarization.
    pub fn orthogonal(self) -> Self {
        match self {
            Self::Te => Self::Tm,
            Self::Tm => Self::Te,
        }
    }
}

impl std::fmt::Display for Polarization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Te => write!(f, "TE"),
            Self::Tm => write!(f, "TM"),
        }
    }
}

/// A high-index-contrast channel waveguide with engineered dispersion.
///
/// Effective indices are modeled as the material index plus a
/// geometry-dependent confinement shift per polarization; the total
/// group-velocity dispersion is a *design value* (material + geometric),
/// since the authors engineer the cross-section for small anomalous
/// dispersion at 1550 nm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waveguide {
    /// Core material.
    pub material: Material,
    /// Core width, m.
    pub width: f64,
    /// Core height, m.
    pub height: f64,
    /// Effective mode area, m².
    pub effective_area: f64,
    /// Confinement-induced *phase*-index shift for TE (dimensionless,
    /// negative). The TE/TM difference of these shifts is the modal
    /// birefringence that offsets the two resonance grids.
    pub confinement_shift_te: f64,
    /// Confinement-induced phase-index shift for TM.
    pub confinement_shift_tm: f64,
    /// Confinement-induced *group*-index shift for TE. The §III design
    /// engineers these nearly equal between TE and TM so the two mode
    /// families keep "similar free spectral ranges" while their phase
    /// indices (and hence absolute resonance positions) differ.
    pub group_shift_te: f64,
    /// Confinement-induced group-index shift for TM.
    pub group_shift_tm: f64,
    /// Engineered total GVD for TE at 1550 nm, s²/m (negative = anomalous).
    pub gvd_te: f64,
    /// Engineered total GVD for TM at 1550 nm, s²/m.
    pub gvd_tm: f64,
}

impl Waveguide {
    /// The paper's Hydex waveguide: ~1.5 × 1.45 µm core, effective area
    /// ≈ 2 µm², small anomalous dispersion at 1550 nm, slight TE/TM
    /// birefringence.
    ///
    /// ```
    /// use qfc_photonics::waveguide::{Polarization, Waveguide};
    /// use qfc_photonics::units::Wavelength;
    /// let wg = Waveguide::hydex_paper();
    /// let g = wg.nonlinear_parameter(Wavelength::from_nm(1550.0));
    /// // γ ≈ 233 W⁻¹km⁻¹ for Hydex.
    /// assert!((g - 0.233).abs() < 0.05);
    /// ```
    pub fn hydex_paper() -> Self {
        Self {
            material: Material::hydex(),
            width: 1.5e-6,
            height: 1.45e-6,
            effective_area: 2.0e-12,
            confinement_shift_te: -0.045,
            confinement_shift_tm: -0.052,
            group_shift_te: -0.0450,
            group_shift_tm: -0.0452,
            gvd_te: -10e-27, // −10 ps²/km, anomalous
            gvd_tm: -12e-27,
        }
    }

    /// Effective refractive index for the given polarization.
    pub fn effective_index(&self, lambda: Wavelength, pol: Polarization) -> f64 {
        let shift = match pol {
            Polarization::Te => self.confinement_shift_te,
            Polarization::Tm => self.confinement_shift_tm,
        };
        self.material.refractive_index(lambda) + shift
    }

    /// Group index for the given polarization.
    ///
    /// Uses the engineered *group*-index shifts, which the §III design
    /// makes nearly equal for TE and TM (matched free spectral ranges).
    pub fn group_index(&self, lambda: Wavelength, pol: Polarization) -> f64 {
        let shift = match pol {
            Polarization::Te => self.group_shift_te,
            Polarization::Tm => self.group_shift_tm,
        };
        self.material.group_index(lambda) + shift
    }

    /// Modal birefringence `n_eff(TE) − n_eff(TM)`.
    pub fn birefringence(&self, lambda: Wavelength) -> f64 {
        self.effective_index(lambda, Polarization::Te)
            - self.effective_index(lambda, Polarization::Tm)
    }

    /// Total (engineered) group-velocity dispersion β₂, s²/m.
    pub fn gvd(&self, pol: Polarization) -> f64 {
        match pol {
            Polarization::Te => self.gvd_te,
            Polarization::Tm => self.gvd_tm,
        }
    }

    /// Nonlinear parameter `γ = 2π·n₂ / (λ·A_eff)` in W⁻¹m⁻¹.
    pub fn nonlinear_parameter(&self, lambda: Wavelength) -> f64 {
        2.0 * std::f64::consts::PI * self.material.n2 / (lambda.m() * self.effective_area)
    }

    /// Propagation constant `β(ω) = n_eff·ω/c` at a frequency, 1/m.
    pub fn beta(&self, freq: Frequency, pol: Polarization) -> f64 {
        let lambda = freq.wavelength();
        self.effective_index(lambda, pol) * freq.angular() / SPEED_OF_LIGHT
    }

    /// Second-order Taylor expansion of the propagation constant around a
    /// reference frequency: `β(ω₀ + Δ) ≈ β₀ + β₁Δ + β₂Δ²/2` where `Δ` is
    /// the angular detuning. Returns the deviation `β(Δ) − β₀`.
    pub fn beta_expansion(&self, ref_freq: Frequency, detuning_angular: f64, pol: Polarization) -> f64 {
        let lambda = ref_freq.wavelength();
        let beta1 = self.group_index(lambda, pol) / SPEED_OF_LIGHT;
        let beta2 = self.gvd(pol);
        beta1 * detuning_angular + 0.5 * beta2 * detuning_angular * detuning_angular
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wg() -> Waveguide {
        Waveguide::hydex_paper()
    }

    #[test]
    fn effective_index_below_material_index() {
        let lam = Wavelength::from_nm(1550.0);
        let wg = wg();
        assert!(
            wg.effective_index(lam, Polarization::Te)
                < wg.material.refractive_index(lam)
        );
    }

    #[test]
    fn birefringence_matches_shifts() {
        let lam = Wavelength::from_nm(1550.0);
        let wg = wg();
        let b = wg.birefringence(lam);
        assert!((b - 0.007).abs() < 1e-12, "b = {b}");
    }

    #[test]
    fn nonlinear_parameter_hydex_order() {
        let g = wg().nonlinear_parameter(Wavelength::from_nm(1550.0));
        // γ ≈ 0.233 /W/m = 233 /W/km.
        assert!(g > 0.2 && g < 0.27, "γ = {g}");
    }

    #[test]
    fn beta_increases_with_frequency() {
        let wg = wg();
        let b1 = wg.beta(Frequency::from_thz(190.0), Polarization::Te);
        let b2 = wg.beta(Frequency::from_thz(196.0), Polarization::Te);
        assert!(b2 > b1);
    }

    #[test]
    fn anomalous_dispersion_by_design() {
        assert!(wg().gvd(Polarization::Te) < 0.0);
        assert!(wg().gvd(Polarization::Tm) < 0.0);
    }

    #[test]
    fn beta_expansion_linear_term_dominates() {
        let wg = wg();
        let f0 = Frequency::from_thz(193.4);
        let delta = 2.0 * std::f64::consts::PI * 200e9; // one FSR
        let dev = wg.beta_expansion(f0, delta, Polarization::Te);
        let beta1 = wg.group_index(f0.wavelength(), Polarization::Te) / SPEED_OF_LIGHT;
        assert!((dev - beta1 * delta).abs() / dev.abs() < 1e-3);
    }

    #[test]
    fn orthogonal_polarization() {
        assert_eq!(Polarization::Te.orthogonal(), Polarization::Tm);
        assert_eq!(Polarization::Tm.orthogonal(), Polarization::Te);
        assert_eq!(Polarization::Te.to_string(), "TE");
    }
}
