//! # qfc-core
//!
//! The paper's primary contribution as a library: the integrated quantum
//! frequency comb source ([`source::QfcSource`]) and the four virtual
//! experiments of Reimer *et al.* (DATE 2017):
//!
//! * [`heralded`] — §II multiplexed heralded single photons (F1/T1/F2/F3)
//! * [`crosspol`] — §III cross-polarized pairs & OPO (F4/F5/F6)
//! * [`timebin`] — §IV multiplexed time-bin entanglement (F7/T2)
//! * [`multiphoton`] — §V four-photon states & tomography (T3/F8/T4)
//! * [`purity`] — §II spectral purity & quantum-memory compatibility
//! * [`qkd`] — BBM92 feasibility over the multiplexed comb (the intro's
//!   quantum-communications motivation)
//!
//! plus typed paper-vs-measured reporting in [`report`] and the
//! fault-injection / graceful-degradation layer: every driver has a
//! `try_run_*` form taking a [`qfc_faults::FaultSchedule`], returning a
//! [`qfc_faults::HealthReport`] alongside its physics report, with
//! recovery policies (pump re-lock, channel quarantine, estimator
//! fallback) in [`supervisor`].
//!
//! ## Example
//!
//! ```
//! use qfc_core::source::QfcSource;
//! use qfc_core::timebin::{channel_state_model, TimeBinConfig};
//!
//! let source = QfcSource::paper_device_timebin();
//! let model = channel_state_model(&source, &TimeBinConfig::paper(), 1);
//! // The visibility budget lands near the paper's 83 % operating point.
//! assert!(model.state_visibility > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod crosspol;
pub mod heralded;
pub mod link;
pub mod multiphoton;
pub mod multiplex;
pub mod purity;
pub mod qkd;
pub mod report;
pub mod source;
pub mod supervisor;
pub mod timebin;

pub use qfc_faults::{
    FaultEvent, FaultKind, FaultSchedule, HealthReport, QfcError, QfcResult,
};
pub use report::{Comparison, Expectation, ExperimentReport};
pub use source::{EmissionRegime, QfcSource};
pub use supervisor::SupervisorPolicy;
