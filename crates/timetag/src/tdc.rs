//! Time-to-digital converter: quantizes detector clicks onto a discrete
//! time base and merges channels into one tagged record — the instrument
//! between the detectors and the coincidence analysis.

use serde::{Deserialize, Serialize};

use crate::events::{ChannelId, TagStream, TimeTag};

/// A multi-channel time-to-digital converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tdc {
    /// Quantization step (bin resolution), ps.
    pub resolution_ps: i64,
}

impl Tdc {
    /// Creates a TDC with the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ps <= 0`.
    pub fn new(resolution_ps: i64) -> Self {
        assert!(resolution_ps > 0, "resolution must be positive");
        Self { resolution_ps }
    }

    /// The 81-ps-class commercial TDC used in the experiments.
    pub fn paper_instrument() -> Self {
        Self::new(81)
    }

    /// Quantizes one stream onto the TDC time base (round to nearest).
    pub fn quantize(&self, stream: &TagStream) -> TagStream {
        let r = self.resolution_ps;
        stream
            .as_slice()
            .iter()
            .map(|&t| (t + r / 2).div_euclid(r) * r)
            .collect()
    }

    /// Merges per-channel streams into a single time-ordered record of
    /// tagged events, quantizing each timestamp.
    pub fn record(&self, channels: &[(ChannelId, &TagStream)]) -> Vec<TimeTag> {
        let mut tags: Vec<TimeTag> = Vec::new();
        for (id, stream) in channels {
            let q = self.quantize(stream);
            tags.extend(q.as_slice().iter().map(|&t| TimeTag {
                time_ps: t,
                channel: *id,
            }));
        }
        tags.sort_by_key(|t| (t.time_ps, t.channel));
        tags
    }

    /// Splits a merged record back into one stream per requested channel.
    pub fn channel_stream(record: &[TimeTag], channel: ChannelId) -> TagStream {
        record
            .iter()
            .filter(|t| t.channel == channel)
            .map(|t| t.time_ps)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_rounds_to_grid() {
        let tdc = Tdc::new(100);
        let s = TagStream::from_unsorted(vec![49, 51, 149, 250]);
        let q = tdc.quantize(&s);
        assert_eq!(q.as_slice(), &[0, 100, 100, 300]);
    }

    #[test]
    fn record_merges_and_orders() {
        let tdc = Tdc::new(1);
        let a = TagStream::from_unsorted(vec![10, 30]);
        let b = TagStream::from_unsorted(vec![20]);
        let rec = tdc.record(&[(ChannelId(0), &a), (ChannelId(1), &b)]);
        let times: Vec<i64> = rec.iter().map(|t| t.time_ps).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(rec[1].channel, ChannelId(1));
    }

    #[test]
    fn channel_streams_roundtrip() {
        let tdc = Tdc::new(1);
        let a = TagStream::from_unsorted(vec![10, 30]);
        let b = TagStream::from_unsorted(vec![20, 40]);
        let rec = tdc.record(&[(ChannelId(0), &a), (ChannelId(1), &b)]);
        assert_eq!(Tdc::channel_stream(&rec, ChannelId(0)), a);
        assert_eq!(Tdc::channel_stream(&rec, ChannelId(1)), b);
    }

    #[test]
    fn paper_instrument_resolution() {
        assert_eq!(Tdc::paper_instrument().resolution_ps, 81);
    }

    #[test]
    fn negative_times_quantize_correctly() {
        let tdc = Tdc::new(100);
        let s = TagStream::from_unsorted(vec![-151, -49]);
        let q = tdc.quantize(&s);
        assert_eq!(q.as_slice(), &[-200, 0]);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_rejected() {
        let _ = Tdc::new(0);
    }
}
