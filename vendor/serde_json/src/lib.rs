//! Offline vendored stand-in for `serde_json`.
//!
//! Prints and parses JSON over the vendored `serde` crate's [`Value`]
//! tree. Round-trips are exact for every payload the workspace
//! serializes:
//!
//! * `f64` values print with Rust's shortest-round-trip `Display`
//!   formatting, so `from_str(to_string(x))` reproduces `x` bitwise;
//! * non-finite floats follow upstream-compatible conventions good
//!   enough for reports (`NaN` → `null`, `±inf` → `±1e999`, which the
//!   parser maps back to `±inf`);
//! * object key order is preserved (association list, no hashing).

pub use serde::Value;

/// Error raised by serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Prints an `f64` so the parser reproduces it bitwise.
///
/// Rust's `Display` for floats emits the shortest string that round-trips
/// through `f64::from_str`, which is exactly the property the determinism
/// tests rely on. Integral values gain a `.0` suffix so they re-parse as
/// floats rather than integers.
fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("1e999");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // lone surrogates map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar from the source text.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_is_bitwise_exact() {
        for x in [
            0.1,
            -1.0 / 3.0,
            6.626e-34,
            1.5e300,
            -0.0,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {json} → {back}");
        }
    }

    #[test]
    fn nan_maps_to_null_and_back() {
        let json = to_string(&f64::NAN).unwrap();
        assert_eq!(json, "null");
        let back: f64 = from_str(&json).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn integral_floats_keep_float_type() {
        let json = to_string(&3.0f64).unwrap();
        assert_eq!(json, "3.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn containers_and_strings_roundtrip() {
        let v = vec![(1.5f64, "a\"b\\c\nd".to_string()), (-2.25, "π µ".to_string())];
        let json = to_string(&v).unwrap();
        let back: Vec<(f64, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![1u64, 2, 3];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn large_u64_roundtrips() {
        let x = u64::MAX;
        let json = to_string(&x).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, x);
    }
}
