//@ crate: qfc-core

pub fn hot_kernel_with_allocs(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    // qfc-lint: hot
    for &x in xs {
        let v: Vec<f64> = Vec::new(); //~ ERROR hot-loop-alloc
        let w = vec![x]; //~ ERROR hot-loop-alloc
        let y = w.clone(); //~ ERROR hot-loop-alloc
        acc += x + y[0] - cast::to_f64(v.len());
    }
    acc
}

pub fn hot_kernel_clean(xs: &[f64], buf: &mut Vec<f64>) -> f64 {
    buf.clear();
    // qfc-lint: hot
    for &x in xs {
        buf.push(x);
    }
    buf.iter().sum()
}

pub fn cold_allocations_are_fine(xs: &[f64]) -> Vec<f64> {
    let v: Vec<f64> = xs.to_vec();
    v.clone()
}

pub fn allocation_after_the_region_is_fine(xs: &[f64]) -> Vec<f64> {
    // qfc-lint: hot
    for _ in xs {}
    vec![1.0]
}

pub fn suppressed_with_justification(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    // qfc-lint: hot
    for &x in xs {
        let w = vec![x]; // qfc-lint: allow(hot-loop-alloc) — fixture proves suppression works
        acc += w[0];
    }
    acc
}

// qfc-lint: hot
//~^ ERROR bad-directive
