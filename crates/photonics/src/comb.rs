//! Frequency-comb channel bookkeeping on the 200-GHz telecom grid.
//!
//! The quantum comb emits photon pairs on ring resonances placed
//! symmetrically around the pump; each signal/idler pair of modes
//! `(+m, −m)` forms one multiplexed channel pair. The comb covers the full
//! S, C and L telecommunication bands, with channels aligned to standard
//! 200-GHz ITU spacing — the paper's headline compatibility claim.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use crate::ring::Microring;
use crate::units::{Frequency, Wavelength};
use crate::waveguide::Polarization;

/// Telecommunication wavelength bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TelecomBand {
    /// Short band, 1460–1530 nm.
    S,
    /// Conventional band, 1530–1565 nm.
    C,
    /// Long band, 1565–1625 nm.
    L,
    /// Outside S/C/L.
    Other,
}

impl TelecomBand {
    /// Classifies a vacuum wavelength.
    pub fn classify(lambda: Wavelength) -> Self {
        let nm = lambda.nm();
        if (1460.0..1530.0).contains(&nm) {
            Self::S
        } else if (1530.0..1565.0).contains(&nm) {
            Self::C
        } else if (1565.0..1625.0).contains(&nm) {
            Self::L
        } else {
            Self::Other
        }
    }
}

impl std::fmt::Display for TelecomBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::S => write!(f, "S"),
            Self::C => write!(f, "C"),
            Self::L => write!(f, "L"),
            Self::Other => write!(f, "-"),
        }
    }
}

/// One comb channel: a ring resonance at mode index `m ≠ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombChannel {
    /// Mode index relative to the pump resonance (`> 0` = signal side).
    pub index: i32,
    /// Center frequency.
    pub frequency: Frequency,
    /// Telecom band the channel falls in.
    pub band: TelecomBand,
}

/// A signal/idler channel pair `(+m, −m)`, symmetric about the pump.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelPair {
    /// Absolute mode index `m ≥ 1`.
    pub m: u32,
    /// Signal channel (`+m`, higher frequency).
    pub signal: CombChannel,
    /// Idler channel (`−m`, lower frequency).
    pub idler: CombChannel,
}

impl ChannelPair {
    /// Energy mismatch `ν_s + ν_i − 2ν_p` of the pair for a degenerate
    /// pump at `pump` — nonzero only through the grid's second-order
    /// dispersion.
    pub fn energy_mismatch(&self, pump: Frequency) -> Frequency {
        Frequency::from_hz(self.signal.frequency.hz() + self.idler.frequency.hz() - 2.0 * pump.hz())
    }
}

/// The comb of channel pairs emitted by a ring for a given polarization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombGrid {
    pump: Frequency,
    pairs: Vec<ChannelPair>,
}

impl CombGrid {
    /// Builds the channel-pair grid for modes `1..=max_m` around the
    /// pump resonance (`m = 0`) of the given polarization family.
    pub fn from_ring(ring: &Microring, pol: Polarization, max_m: u32) -> Self {
        let pump = ring.resonance(pol, 0);
        let pairs = (1..=max_m)
            .map(|m| {
                let fs = ring.resonance(pol, cast::u32_to_i32(m));
                let fi = ring.resonance(pol, -cast::u32_to_i32(m));
                ChannelPair {
                    m,
                    signal: CombChannel {
                        index: cast::u32_to_i32(m),
                        frequency: fs,
                        band: TelecomBand::classify(fs.wavelength()),
                    },
                    idler: CombChannel {
                        index: -cast::u32_to_i32(m),
                        frequency: fi,
                        band: TelecomBand::classify(fi.wavelength()),
                    },
                }
            })
            .collect();
        Self { pump, pairs }
    }

    /// The pump frequency (mode `m = 0`).
    pub fn pump(&self) -> Frequency {
        self.pump
    }

    /// All channel pairs, ascending in `m`.
    pub fn pairs(&self) -> &[ChannelPair] {
        &self.pairs
    }

    /// Channel pair with absolute index `m`, if within the grid.
    pub fn pair(&self, m: u32) -> Option<&ChannelPair> {
        self.pairs.get(cast::u32_to_usize(m.checked_sub(1)?))
    }

    /// Number of channel pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when the grid holds no channel pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Set of distinct telecom bands covered by the comb (signal + idler).
    pub fn bands_covered(&self) -> Vec<TelecomBand> {
        let mut bands = Vec::new();
        for p in &self.pairs {
            for b in [p.signal.band, p.idler.band] {
                if !bands.contains(&b) {
                    bands.push(b);
                }
            }
        }
        bands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Microring;

    #[test]
    fn band_classification() {
        assert_eq!(TelecomBand::classify(Wavelength::from_nm(1500.0)), TelecomBand::S);
        assert_eq!(TelecomBand::classify(Wavelength::from_nm(1550.0)), TelecomBand::C);
        assert_eq!(TelecomBand::classify(Wavelength::from_nm(1600.0)), TelecomBand::L);
        assert_eq!(TelecomBand::classify(Wavelength::from_nm(1300.0)), TelecomBand::Other);
    }

    #[test]
    fn grid_is_symmetric_about_pump() {
        let ring = Microring::paper_device();
        let grid = CombGrid::from_ring(&ring, Polarization::Te, 5);
        assert_eq!(grid.len(), 5);
        for p in grid.pairs() {
            // Signal above pump, idler below.
            assert!(p.signal.frequency > grid.pump());
            assert!(p.idler.frequency < grid.pump());
            // Energy mismatch from grid dispersion only: tiny but nonzero.
            let mismatch = p.energy_mismatch(grid.pump()).hz().abs();
            assert!(mismatch < ring.linewidth().hz(), "mismatch {mismatch}");
        }
    }

    #[test]
    fn wide_comb_covers_s_c_l() {
        let ring = Microring::paper_device();
        // ±40 modes × 200 GHz = ±8 THz ≈ 1490–1615 nm.
        let grid = CombGrid::from_ring(&ring, Polarization::Te, 40);
        let bands = grid.bands_covered();
        assert!(bands.contains(&TelecomBand::S), "bands {bands:?}");
        assert!(bands.contains(&TelecomBand::C));
        assert!(bands.contains(&TelecomBand::L));
    }

    #[test]
    fn pair_lookup() {
        let ring = Microring::paper_device();
        let grid = CombGrid::from_ring(&ring, Polarization::Te, 5);
        assert_eq!(grid.pair(3).expect("exists").m, 3);
        assert!(grid.pair(0).is_none());
        assert!(grid.pair(6).is_none());
    }

    #[test]
    fn channel_spacing_is_fsr() {
        let ring = Microring::paper_device();
        let grid = CombGrid::from_ring(&ring, Polarization::Te, 3);
        let p1 = grid.pair(1).expect("pair");
        let spacing = p1.signal.frequency - grid.pump();
        assert!((spacing.ghz() - ring.fsr(Polarization::Te).ghz()).abs() < 0.01);
    }
}
