//! §II "pure single mode photons": spectral purity of the heralded
//! photons and their heralded autocorrelation, plus the quantum-memory
//! compatibility argument that motivates the narrow linewidth.

use serde::{Deserialize, Serialize};

use qfc_photonics::jsa::{JointSpectralAmplitude, PumpEnvelope};
use qfc_photonics::memory::{ring_memory_efficiency, MemoryProfile};
use qfc_photonics::waveguide::Polarization;
use qfc_quantum::fock::TwoModeSqueezedVacuum;

use crate::report::{Comparison, Expectation, ExperimentReport};
use crate::source::QfcSource;

/// Configuration of the purity analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurityConfig {
    /// Channel analyzed.
    pub m: u32,
    /// JSA discretization grid (n × n).
    pub grid: usize,
    /// JSA span in loaded linewidths around each resonance.
    pub span_linewidths: f64,
    /// Herald-arm efficiency used for the heralded g² estimate.
    pub herald_efficiency: f64,
}

impl PurityConfig {
    /// Paper conditions: channel 1, resonance-filtered pulsed drive.
    pub fn paper() -> Self {
        Self {
            m: 1,
            grid: 48,
            span_linewidths: 6.0,
            herald_efficiency: 0.105,
        }
    }
}

/// Results of the purity analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurityReport {
    /// Schmidt number of the joint spectral amplitude.
    pub schmidt_number: f64,
    /// Heralded-photon spectral purity `1/K`.
    pub heralded_purity: f64,
    /// Heralded g²(0) at the configured operating point.
    pub heralded_g2: f64,
    /// Acceptance efficiency into a 100-MHz atomic memory.
    pub memory_acceptance: f64,
}

impl PurityReport {
    /// Comparison rows: the §II qualitative claims made quantitative.
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§II photon purity & memory compatibility");
        r.push(Comparison::new(
            "P1",
            "heralded spectral purity 1/K",
            0.90,
            self.heralded_purity,
            "",
            Expectation::AtLeast,
        ));
        r.push(Comparison::new(
            "P2",
            "heralded g2(0) (single-photon character ≪ 0.5)",
            0.5,
            self.heralded_g2,
            "",
            Expectation::AtMost,
        ));
        r.push(Comparison::new(
            "P3",
            "acceptance into a 100-MHz atomic memory",
            0.40,
            self.memory_acceptance,
            "",
            Expectation::AtLeast,
        ));
        r
    }
}

/// Runs the purity analysis for a pulsed (resonance-filtered) drive.
///
/// # Panics
///
/// Panics if the source is not in the double-pulse regime (the purity
/// claim concerns the resonance-matched pulsed configuration).
pub fn run_purity_analysis(source: &QfcSource, config: &PurityConfig) -> PurityReport {
    let ring = source.ring();
    // The double pulses are spectrally filtered to one resonance by a
    // grating filter that is still far wider (GHz-class) than the
    // 110-MHz resonance — the cavity itself does the final shaping, which
    // is exactly the paper's "bandwidth intrinsically given by the
    // resonance" condition (see `qfc_photonics::jsa`).
    let pump = PumpEnvelope::Gaussian {
        fwhm: 20.0 * ring.linewidth().hz(),
    };
    let jsa = JointSpectralAmplitude::for_channel(
        ring,
        Polarization::Te,
        config.m,
        pump,
        config.grid,
        config.span_linewidths,
    );
    let mu = source.pairs_per_frame(config.m);
    let tmsv = TwoModeSqueezedVacuum::new(mu);
    PurityReport {
        schmidt_number: jsa.schmidt_number(),
        heralded_purity: jsa.heralded_purity(),
        heralded_g2: tmsv.heralded_g2(config.herald_efficiency),
        memory_acceptance: ring_memory_efficiency(ring, &MemoryProfile::atomic_100mhz()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_is_pure() {
        let source = QfcSource::paper_device_timebin();
        let report = run_purity_analysis(&source, &PurityConfig::paper());
        assert!(report.heralded_purity > 0.9, "P = {}", report.heralded_purity);
        assert!(report.schmidt_number < 1.15, "K = {}", report.schmidt_number);
        assert!(report.heralded_g2 < 0.2, "g2 = {}", report.heralded_g2);
        assert!(report.memory_acceptance > 0.4);
        assert!(report.to_report().all_pass());
    }

    #[test]
    fn purity_consistent_between_channels() {
        let source = QfcSource::paper_device_timebin();
        let mut cfg = PurityConfig::paper();
        let p1 = run_purity_analysis(&source, &cfg);
        cfg.m = 3;
        let p3 = run_purity_analysis(&source, &cfg);
        // All channels share the resonance-set bandwidth.
        assert!((p1.heralded_purity - p3.heralded_purity).abs() < 0.02);
    }

    #[test]
    fn g2_grows_with_pump() {
        // Heralded g² worsens at higher μ — the §V pump-boost trade.
        let source = QfcSource::paper_device_timebin();
        let cfg = PurityConfig::paper();
        let base = run_purity_analysis(&source, &cfg);
        let mu_boosted = source.pairs_per_frame(1) * 9.0;
        let g2_boosted = TwoModeSqueezedVacuum::new(mu_boosted).heralded_g2(cfg.herald_efficiency);
        assert!(g2_boosted > base.heralded_g2);
    }
}
