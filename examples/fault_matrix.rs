//! Fault matrix: drives all four experiments through the deterministic
//! stress fault schedule (one window of every fault kind) and prints the
//! degraded paper-vs-measured reports with their health sections — the
//! supervisor's recovery record of what broke and what it did about it.
//!
//! ```sh
//! cargo run --release --example fault_matrix          # fast_demo configs
//! cargo run --release --example fault_matrix -- 1234  # pick the fault seed
//! ```
//!
//! Exits non-zero if any driver fails to complete, so CI can use it as a
//! graceful-degradation smoke test. Degraded figures are expected — the
//! contract under fault injection is "finite and explained", not "on
//! paper spec".

use qfc::core::crosspol::{try_run_crosspol_experiment, CrossPolConfig};
use qfc::core::heralded::{try_run_heralded_experiment, HeraldedConfig};
use qfc::core::multiphoton::{try_run_multiphoton_experiment, MultiPhotonConfig};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{nominal_duration_s, try_run_timebin_experiment, TimeBinConfig};
use qfc::faults::FaultSchedule;

fn main() {
    let fault_seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("fault seed must be a u64"))
        .unwrap_or(20170327);
    let seed = 20170327; // physics seed: the conference dates

    println!("# Fault matrix (stress schedule, fault seed {fault_seed})");
    println!();

    let mut failures = 0u32;

    eprintln!("§II heralded photons under faults…");
    let cfg2 = HeraldedConfig::fast_demo();
    let sched2 = FaultSchedule::stress(fault_seed, cfg2.duration_s);
    match try_run_heralded_experiment(&QfcSource::paper_device(), &cfg2, seed, &sched2) {
        Ok(run) => println!("{}", run.to_report().render()),
        Err(e) => {
            println!("§II FAILED: {e}");
            failures += 1;
        }
    }

    eprintln!("§III cross-polarized pairs under faults…");
    let cfg3 = CrossPolConfig::fast_demo();
    let sched3 = FaultSchedule::stress(fault_seed.wrapping_add(1), cfg3.duration_s);
    match try_run_crosspol_experiment(&QfcSource::paper_device_type2(), &cfg3, seed, &sched3) {
        Ok(run) => println!("{}", run.to_report().render()),
        Err(e) => {
            println!("§III FAILED: {e}");
            failures += 1;
        }
    }

    eprintln!("§IV time-bin entanglement under faults…");
    let cfg4 = TimeBinConfig::fast_demo();
    let sched4 = FaultSchedule::stress(fault_seed.wrapping_add(2), nominal_duration_s(&cfg4));
    match try_run_timebin_experiment(&QfcSource::paper_device_timebin(), &cfg4, seed, &sched4) {
        Ok(run) => println!("{}", run.to_report().render()),
        Err(e) => {
            println!("§IV FAILED: {e}");
            failures += 1;
        }
    }

    eprintln!("§V multi-photon states under faults…");
    let cfg5 = MultiPhotonConfig::fast_demo();
    let sched5 = FaultSchedule::stress(
        fault_seed.wrapping_add(3),
        nominal_duration_s(&cfg5.timebin),
    );
    match try_run_multiphoton_experiment(&QfcSource::paper_device_timebin(), &cfg5, seed, &sched5) {
        Ok(run) => println!("{}", run.to_report().render()),
        Err(e) => {
            println!("§V FAILED: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("fault matrix: {failures} driver(s) failed");
        std::process::exit(1);
    }
    eprintln!("fault matrix: all drivers degraded gracefully");
}
