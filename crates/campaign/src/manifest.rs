//! Campaign manifests: the deterministic shard table plus the campaign
//! fingerprint that keys the checkpoint directory.
//!
//! The fingerprint covers the workload label, root seed, config JSON,
//! and the full shard table, so a checkpoint can never be replayed into
//! a campaign it does not belong to: changing the config, the seed, or
//! the decomposition changes the fingerprint, and stale checkpoints are
//! rejected at load.

use qfc_faults::{QfcError, QfcResult};
use qfc_obs::RunManifest;
use serde::{Deserialize, Serialize};

/// One shard of a campaign: a self-describing unit of work. `start`/
/// `len` carry the shot range for shot-range shards (mirroring
/// [`qfc_runtime::Shard`]) and the position/unit count for per-channel
/// shards; `seed` records the shard's independent split-seed lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Shard position in the campaign's fixed decomposition.
    pub index: u32,
    /// Human-readable shard label, e.g. `channel-3` or `linewidth-17`.
    pub label: String,
    /// First work-unit index covered by this shard.
    pub start: u64,
    /// Number of work units in this shard.
    pub len: u64,
    /// The shard's independent RNG lane (`split_seed` derived).
    pub seed: u64,
}

/// The deterministic decomposition of one driver run into shards, plus
/// the fingerprint that keys its checkpoint directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Workload label, e.g. `timebin`.
    pub label: String,
    /// Root RNG seed of the run.
    pub seed: u64,
    /// FNV-1a 64 digest of the driver config's JSON serialization.
    pub config_digest: String,
    /// 16-hex-digit fingerprint of (label, seed, config, shard table).
    pub campaign_id: String,
    /// The shard table, in index order.
    pub shards: Vec<ShardSpec>,
}

impl CampaignManifest {
    /// Builds the manifest and its fingerprint from a workload identity
    /// and its shard decomposition. Shards must arrive in index order
    /// with contiguous indices from 0 — the engine's payload slots are
    /// positional.
    ///
    /// # Errors
    ///
    /// [`QfcError::InvalidParameter`] for an empty or mis-indexed shard
    /// table; [`QfcError::Persistence`] when the shard table cannot be
    /// serialized for fingerprinting.
    pub fn new(
        label: &str,
        seed: u64,
        config_json: &str,
        shards: Vec<ShardSpec>,
    ) -> QfcResult<Self> {
        if shards.is_empty() {
            return Err(QfcError::invalid("campaign needs at least one shard"));
        }
        for (i, s) in shards.iter().enumerate() {
            if usize::try_from(s.index) != Ok(i) {
                return Err(QfcError::invalid(format!(
                    "shard table must be contiguous from 0: position {i} holds index {}",
                    s.index
                )));
            }
        }
        let config_digest = RunManifest::digest_hex(config_json.as_bytes());
        let table = serde_json::to_string(&shards)
            .map_err(|e| QfcError::persistence(format!("shard table serialization: {e}")))?;
        let campaign_id =
            RunManifest::digest_hex(format!("{label}\n{seed}\n{config_digest}\n{table}").as_bytes());
        Ok(Self {
            label: label.to_owned(),
            seed,
            config_digest,
            campaign_id,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(index: u32) -> ShardSpec {
        ShardSpec {
            index,
            label: format!("unit-{index}"),
            start: u64::from(index),
            len: 1,
            seed: 1000 + u64::from(index),
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_identity_and_table() {
        let base = CampaignManifest::new("demo", 7, "{\"x\":1}", vec![spec(0), spec(1)])
            .expect("manifest");
        assert_eq!(base.campaign_id.len(), 16);
        let other_seed = CampaignManifest::new("demo", 8, "{\"x\":1}", vec![spec(0), spec(1)])
            .expect("manifest");
        assert_ne!(base.campaign_id, other_seed.campaign_id);
        let other_config = CampaignManifest::new("demo", 7, "{\"x\":2}", vec![spec(0), spec(1)])
            .expect("manifest");
        assert_ne!(base.campaign_id, other_config.campaign_id);
        let other_table =
            CampaignManifest::new("demo", 7, "{\"x\":1}", vec![spec(0)]).expect("manifest");
        assert_ne!(base.campaign_id, other_table.campaign_id);
        // Same inputs → same fingerprint (the resume key).
        let again = CampaignManifest::new("demo", 7, "{\"x\":1}", vec![spec(0), spec(1)])
            .expect("manifest");
        assert_eq!(base.campaign_id, again.campaign_id);
    }

    #[test]
    fn mis_indexed_tables_are_rejected() {
        assert!(CampaignManifest::new("demo", 7, "{}", Vec::new()).is_err());
        let err = CampaignManifest::new("demo", 7, "{}", vec![spec(1), spec(0)])
            .expect_err("out of order");
        assert!(matches!(err, QfcError::InvalidParameter { .. }));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = CampaignManifest::new("demo", 7, "{\"x\":1}", vec![spec(0), spec(1)])
            .expect("manifest");
        let json = serde_json::to_string(&m).expect("serializes");
        let back: CampaignManifest = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, m);
    }
}
