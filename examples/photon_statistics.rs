//! Photon statistics of the comb arms: Hanbury Brown–Twiss g²(τ) of the
//! unheralded (thermal) arm, heralded g²(0) vs pump, and the spectral
//! purity behind the §II "pure single mode photons" claim.
//!
//! ```sh
//! cargo run --release --example photon_statistics
//! ```

use qfc::core::purity::{run_purity_analysis, PurityConfig};
use qfc::core::source::QfcSource;
use qfc::mathkit::rng::rng_from_seed;
use qfc::quantum::fock::TwoModeSqueezedVacuum;
use qfc::timetag::hbt::{measure_g2, thermal_stream};

fn main() {
    let source = QfcSource::paper_device_timebin();

    println!("== HBT autocorrelation of the unheralded arm ==");
    println!("(single comb line = single-mode thermal light, g2(0) → 2)\n");
    let mut rng = rng_from_seed(404);
    // One comb line with the ring coherence time, at a workable rate.
    let tau_c = source.ring().coincidence_decay_time();
    let stream = thermal_stream(&mut rng, 200_000.0, tau_c, 20.0);
    let g2 = measure_g2(&mut rng, &stream, 30_000, 500);
    println!("measured g2(0) = {:.2} (thermal expectation: 2.0)", g2.g2_zero);
    println!("g2(τ) profile around zero delay:");
    let bins = g2.g2.len();
    for (i, &v) in g2.g2.iter().enumerate() {
        if (i as i64 - bins as i64 / 2).abs() <= 8 {
            let tau_ns = g2.histogram.bin_center(i) / 1000.0;
            println!("  τ = {:>6.2} ns   g2 = {:>5.2}  {}", tau_ns, v, "#".repeat((v * 20.0) as usize));
        }
    }

    println!("\n== Heralded g2(0) vs pump (single-photon character) ==");
    println!("  μ/frame    heralded g2(0)");
    for factor in [0.5f64, 1.0, 2.0, 3.0, 5.0] {
        let mu = source.pairs_per_frame(1) * factor * factor;
        let g2h = TwoModeSqueezedVacuum::new(mu).heralded_g2(0.105);
        println!("  {:>7.4}      {:>6.4}", mu, g2h);
    }

    println!("\n== Spectral purity (§II) ==");
    let purity = run_purity_analysis(&source, &PurityConfig::paper());
    println!("Schmidt number K      : {:.3}", purity.schmidt_number);
    println!("heralded purity 1/K   : {:.3}", purity.heralded_purity);
    println!("heralded g2(0)        : {:.3}", purity.heralded_g2);
    println!("memory acceptance     : {:.3}", purity.memory_acceptance);
    println!("\n{}", purity.to_report().render());
}
