//! Workspace-level static-analysis gate, as a test: the whole tree must
//! be clean under `qfc-lint --deny` semantics, and the canonical report
//! must be byte-identical across runs (the same determinism bar the
//! simulations themselves are held to).

use std::path::Path;

use qfc_lint::report::to_json;
use qfc_lint::{find_workspace_root, run};

#[test]
fn workspace_is_lint_clean_at_deny_level() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = run(&root).expect("lint run");
    assert!(
        report.crates.iter().any(|c| c == "qfc-lint"),
        "qfc-lint must scan itself; scanned: {:?}",
        report.crates
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}:{} [{}] {}", f.file, f.line, f.col, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every allow directive must still be earning its keep.
    assert_eq!(
        report.allows_total, report.allows_used,
        "stale allow directives present"
    );
}

#[test]
fn lint_report_is_byte_identical_across_runs() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let first = to_json(&run(&root).expect("first run"));
    let second = to_json(&run(&root).expect("second run"));
    assert_eq!(first, second, "canonical JSON report is not deterministic");
    assert!(!first.contains(&root.display().to_string()), "report leaks absolute paths");
}
