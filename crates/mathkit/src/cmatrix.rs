//! Dense complex matrices (row-major).

use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::{Complex64, C_ONE, C_ZERO};
use crate::cvector::CVector;

/// Reusable packing buffer for [`CMatrix::matmul_packed_into`].
///
/// The packed GEMM stores the right-hand operand in transposed
/// (adjoint-layout, unconjugated) order so the inner `k` accumulation
/// reads both operands contiguously. The buffer grows to the largest
/// `k × n` shape it has seen and is reused across calls, so a hot loop
/// that multiplies same-shaped matrices performs no allocation after
/// the first iteration.
#[derive(Debug, Default, Clone)]
pub struct GemmScratch {
    packed: Vec<Complex64>,
}

impl GemmScratch {
    /// An empty scratch; the first `matmul_packed_into` call sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A dense complex matrix with row-major storage.
///
/// All quantum operators (density matrices, unitaries, projectors) and
/// discretized joint spectral amplitudes in the workspace use this type.
///
/// # Examples
///
/// ```
/// use qfc_mathkit::cmatrix::CMatrix;
///
/// let id = CMatrix::identity(2);
/// let m = &id * &id;
/// assert!(m.approx_eq(&id, 1e-15));
/// assert!((id.trace().re - 2.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C_ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C_ONE;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices of real values.
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&x| Complex64::real(x)));
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Builds a matrix element-wise from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Outer product `|a⟩⟨b|` (i.e. `a · b†`).
    pub fn outer(a: &CVector, b: &CVector) -> Self {
        Self::from_fn(a.dim(), b.dim(), |i, j| a[i] * b[j].conj())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Extracts row `i` as a vector.
    pub fn row(&self, i: usize) -> CVector {
        assert!(i < self.rows);
        CVector::from_vec(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> CVector {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copies row `i` into an existing vector — the scratch-space form
    /// of [`Self::row`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `out.dim() != self.cols()`.
    pub fn row_into(&self, i: usize, out: &mut CVector) {
        assert!(i < self.rows);
        assert_eq!(out.dim(), self.cols, "row_into output dimension mismatch");
        out.as_mut_slice()
            .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
    }

    /// Copies column `j` into an existing vector — the scratch-space
    /// form of [`Self::col`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `out.dim() != self.rows()`.
    pub fn col_into(&self, j: usize, out: &mut CVector) {
        assert!(j < self.cols);
        assert_eq!(out.dim(), self.rows, "col_into output dimension mismatch");
        let os = out.as_mut_slice();
        for (i, o) in os.iter_mut().enumerate() {
            *o = self.data[i * self.cols + j];
        }
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√Σ|aᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every entry by a real factor.
    pub fn scale(&self, s: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(s)).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale_c(&self, s: Complex64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * s).collect(),
        }
    }

    /// Matrix-vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()`.
    pub fn matvec(&self, v: &CVector) -> CVector {
        assert_eq!(v.dim(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)] * v[j])
                    .sum::<Complex64>()
            })
            .collect()
    }

    /// Matrix-vector product `A·v` written into an existing vector —
    /// the scratch-space form of [`Self::matvec`] for iteration hot
    /// loops. Bit-identical to `matvec`: each output element folds
    /// `aᵢⱼ·vⱼ` over ascending `j` from zero, exactly the per-row sum
    /// of the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()` or `out.dim() != self.rows()`.
    pub fn matvec_into(&self, v: &CVector, out: &mut CVector) {
        assert_eq!(v.dim(), self.cols, "matvec dimension mismatch");
        assert_eq!(
            out.dim(),
            self.rows,
            "matvec_into output dimension mismatch"
        );
        let vs = v.as_slice();
        let os = out.as_mut_slice();
        // qfc-lint: hot
        for (i, o) in os.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = C_ZERO;
            for (a, b) in row.iter().zip(vs) {
                acc += *a * *b;
            }
            *o = acc;
        }
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.approx_zero(0.0) {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix product `A·B` written into an existing buffer — the
    /// scratch-space form of [`Self::matmul`] for iteration hot loops.
    /// Bit-identical to `matmul`: the output is zeroed, then accumulated
    /// with the same skip-zero `i, k, j` loop in the same order.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        out.data.fill(C_ZERO);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.approx_zero(0.0) {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
    }

    /// Matrix product `A·B` through a packed right-hand side — the
    /// cache-friendly form of [`Self::matmul_into`] for large matrices.
    ///
    /// The RHS is first packed into `scratch` in transposed
    /// (adjoint-layout, unconjugated) order, so every output element is
    /// a dot product of two *contiguous* length-`k` runs instead of a
    /// row-major run against a column walked at stride `n`. On top of
    /// the packing, rows of `A` with no exact-zero entry take a
    /// branch-free inner loop the compiler can vectorize.
    ///
    /// **Bit-identical to [`Self::matmul`]/[`Self::matmul_into`]**: each
    /// output element accumulates `aᵢₖ·bₖⱼ` over ascending `k` starting
    /// from zero, with the same skip test on exactly-zero `aᵢₖ` — the
    /// same operations on the same values in the same order, so the IEEE
    /// result is equal bit for bit (a register accumulator initialized
    /// to zero is indistinguishable from accumulating into a zeroed
    /// output slot). Proven by proptest against `matmul_into` as oracle.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_packed_into(&self, other: &Self, out: &mut Self, scratch: &mut GemmScratch) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        let (kk, n) = (self.cols, other.cols);
        if scratch.packed.len() != kk * n {
            scratch.packed.resize(kk * n, C_ZERO);
        }
        // Pack Bᵀ: packed row `j` is column `j` of `other`, so the
        // k-run below is contiguous in both operands.
        for k in 0..kk {
            let brow = &other.data[k * n..(k + 1) * n];
            for (j, &b) in brow.iter().enumerate() {
                scratch.packed[j * kk + k] = b;
            }
        }
        // qfc-lint: hot
        for i in 0..self.rows {
            let arow = &self.data[i * kk..(i + 1) * kk];
            // Dense rows (the overwhelmingly common case for density
            // matrices) take the branch-free loop; the skip-zero branch
            // is only kept where it can actually fire, because skipping
            // a zero is *not* a no-op in IEEE arithmetic (−0 + 0 = +0).
            let dense = arow.iter().all(|z| !z.approx_zero(0.0));
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &scratch.packed[j * kk..(j + 1) * kk];
                let mut acc = C_ZERO;
                if dense {
                    for (a, b) in arow.iter().zip(brow) {
                        acc += *a * *b;
                    }
                } else {
                    for (a, b) in arow.iter().zip(brow) {
                        if a.approx_zero(0.0) {
                            continue;
                        }
                        acc += *a * *b;
                    }
                }
                *o = acc;
            }
        }
    }

    /// Trace of a product, `tr(A·B)`, without materializing the product
    /// matrix. Bit-identical to `self.matmul(other).trace()`: each
    /// diagonal entry accumulates over `k` in `matmul`'s order (with its
    /// skip-zero test), and the diagonal sums in `trace`'s order — but
    /// only the diagonal is computed, an O(n) memory / n-fold flop saving.
    ///
    /// # Panics
    ///
    /// Panics if the product is undefined or not square.
    pub fn trace_of_product(&self, other: &Self) -> Complex64 {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(self.rows == other.cols, "trace of non-square matrix");
        let mut tr = C_ZERO;
        for i in 0..self.rows {
            let mut d = C_ZERO;
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik.approx_zero(0.0) {
                    continue;
                }
                d += aik * other[(k, i)];
            }
            tr += d;
        }
        tr
    }

    /// In-place `self += other.scale(s)` — bit-identical to
    /// `&self + &other.scale(s)` (the same element-wise scale-then-add
    /// in data order) without allocating either temporary.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add_scaled_assign(&mut self, other: &Self, s: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b.scale(s);
        }
    }

    /// Rank-1 update `self += α · x·y†` (a *ger* kernel): adds
    /// `α·xᵢ·conj(yⱼ)` to every element, row-major, with `α` applied to
    /// `xᵢ` once per row. This is how the rank-1 tomography path
    /// accumulates `R` from outcome vectors without ever materializing
    /// the `d × d` outer-product projector.
    ///
    /// # Panics
    ///
    /// Panics if `x.dim() != self.rows()` or `y.dim() != self.cols()`.
    pub fn ger_assign(&mut self, alpha: f64, x: &CVector, y: &CVector) {
        assert_eq!(x.dim(), self.rows, "ger_assign row dimension mismatch");
        assert_eq!(y.dim(), self.cols, "ger_assign column dimension mismatch");
        let xs = x.as_slice();
        let ys = y.as_slice();
        // qfc-lint: hot
        for (i, &xi) in xs.iter().enumerate() {
            let xa = xi.scale(alpha);
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &yj) in row.iter_mut().zip(ys) {
                *o += xa * yj.conj();
            }
        }
    }

    /// In-place form of [`Self::scale`].
    pub fn scale_in_place(&mut self, s: f64) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(C_ZERO);
    }

    /// Overwrites `self` with `other`'s entries, keeping the allocation
    /// (no temporary, unlike `clone`) — the rollback-buffer kernel of
    /// the accelerated MLE iteration.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.copy_from_slice(&other.data);
    }

    /// In-place over-relaxation toward the identity:
    /// `self ← (1 − γ)·I + γ·self`.
    ///
    /// For a Hermitian `self` the result is Hermitian for every real
    /// `γ`, which is what lets the accelerated RρR update
    /// `ρ ← N[AρA]` with `A = (1 − γ)I + γR` stay inside the PSD cone
    /// at any step size: `AρA = (Aρ^{1/2})(Aρ^{1/2})† ⪰ 0`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn lerp_identity_in_place(&mut self, gamma: f64) {
        assert!(self.is_square(), "identity mix needs a square matrix");
        let c = 1.0 - gamma;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let mut z = self.data[i * self.cols + j].scale(gamma);
                if i == j {
                    z.re += c;
                }
                self.data[i * self.cols + j] = z;
            }
        }
    }

    /// Frobenius norm of the difference, `‖A − B‖_F` — bit-identical to
    /// `(&self - &other).frobenius_norm()` (element-wise differences in
    /// data order, then the same sum-of-squares fold) with no temporary.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn frobenius_distance(&self, other: &Self) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Kronecker (tensor) product `A ⊗ B`.
    pub fn kron(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Quadratic form `⟨x|A|y⟩ = x† A y`.
    ///
    /// Allocation-free and bit-identical to the two-step
    /// `x.dot(&self.matvec(y))` it replaces: each row's `Σⱼ aᵢⱼ·yⱼ` is
    /// fully accumulated (ascending `j`, from zero) before being folded
    /// into the dot accumulation as `conj(xᵢ)·(Ay)ᵢ` in ascending `i` —
    /// the exact operation order of `matvec` followed by `dot`, minus
    /// the intermediate vector. This is the O(d²) expectation kernel of
    /// the rank-1 tomography path.
    ///
    /// # Panics
    ///
    /// Panics if `y.dim() != self.cols()` or `x.dim() != self.rows()`.
    pub fn sandwich(&self, x: &CVector, y: &CVector) -> Complex64 {
        assert_eq!(y.dim(), self.cols, "matvec dimension mismatch");
        assert_eq!(x.dim(), self.rows, "dimension mismatch in dot");
        let xs = x.as_slice();
        let ys = y.as_slice();
        let mut acc = C_ZERO;
        // qfc-lint: hot
        for (i, &xi) in xs.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut ay = C_ZERO;
            for (a, b) in row.iter().zip(ys) {
                ay += *a * *b;
            }
            acc += xi.conj() * ay;
        }
        acc
    }

    /// Quadratic form `⟨x|A|y⟩` evaluated with four interleaved
    /// accumulator lanes per row: lane `l` gathers terms `j ≡ l (mod 4)`
    /// and the lanes combine as `(a₀+a₁)+(a₂+a₃)` (any tail elements
    /// fold into lanes 0..2 in order). This breaks the serial
    /// add-dependency chain that makes [`Self::sandwich`] latency-bound
    /// — the chain shrinks 4×, which is most of the large-`d` sweep
    /// time in the rank-1 tomography path.
    ///
    /// **Not** bit-identical to `sandwich` (the summation associates
    /// differently), but fully deterministic: the lane layout depends
    /// only on the dimensions, never on threads or data. Paths that pin
    /// golden bytes to the single-chain order must keep calling
    /// `sandwich`; the rank-1 tomography path owns its own baselines
    /// and takes the lanes.
    ///
    /// # Panics
    ///
    /// Panics if `y.dim() != self.cols()` or `x.dim() != self.rows()`.
    pub fn sandwich_lanes(&self, x: &CVector, y: &CVector) -> Complex64 {
        assert_eq!(y.dim(), self.cols, "matvec dimension mismatch");
        assert_eq!(x.dim(), self.rows, "dimension mismatch in dot");
        let xs = x.as_slice();
        let ys = y.as_slice();
        let mut acc = C_ZERO;
        // qfc-lint: hot
        for (i, &xi) in xs.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let (mut a0, mut a1, mut a2, mut a3) = (C_ZERO, C_ZERO, C_ZERO, C_ZERO);
            let mut rc = row.chunks_exact(4);
            let mut yc = ys.chunks_exact(4);
            for (r4, y4) in (&mut rc).zip(&mut yc) {
                a0 += r4[0] * y4[0];
                a1 += r4[1] * y4[1];
                a2 += r4[2] * y4[2];
                a3 += r4[3] * y4[3];
            }
            for (l, (a, b)) in rc.remainder().iter().zip(yc.remainder()).enumerate() {
                match l {
                    0 => a0 += *a * *b,
                    1 => a1 += *a * *b,
                    _ => a2 += *a * *b,
                }
            }
            let ay = (a0 + a1) + (a2 + a3);
            acc += xi.conj() * ay;
        }
        acc
    }

    /// Hermitian quadratic form `⟨x|A|x⟩` touching only the diagonal and
    /// strict upper triangle:
    /// `Σᵢ aᵢᵢ·|xᵢ|² + 2·Re Σᵢ conj(xᵢ)·(Σ_{j>i} aᵢⱼ·xⱼ)` — half the
    /// complex multiplies of [`Self::sandwich`], still contiguous (each
    /// row's tail) and allocation-free. The result is real by
    /// construction, which is exactly what a Hermitian form must be.
    ///
    /// **Contract:** `self` must be Hermitian — the lower triangle and
    /// the diagonal imaginary parts are never read, so on a
    /// non-Hermitian matrix this silently computes the form of the
    /// Hermitian matrix implied by the upper triangle. The rank-1
    /// tomography path keeps its iterates bitwise Hermitian (see
    /// [`Self::hermitianize_upper`]) and owns its own golden baselines.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `x.dim() != self.rows()`.
    pub fn quadratic_form_hermitian(&self, x: &CVector) -> f64 {
        assert!(self.is_square(), "quadratic form needs a square matrix");
        assert_eq!(x.dim(), self.rows, "matvec dimension mismatch");
        let xs = x.as_slice();
        let n = self.rows;
        let mut diag = 0.0;
        let mut cross = C_ZERO;
        // qfc-lint: hot
        for (i, &xi) in xs.iter().enumerate() {
            let row = &self.data[i * n..(i + 1) * n];
            diag += row[i].re * xi.norm_sqr();
            let mut t = C_ZERO;
            for (a, b) in row[i + 1..].iter().zip(&xs[i + 1..]) {
                t += *a * *b;
            }
            cross += xi.conj() * t;
        }
        diag + 2.0 * cross.re
    }

    /// [`Self::quadratic_form_hermitian`] for several vectors against
    /// the same matrix, blocked four at a time: each block makes one
    /// pass over the upper triangle instead of four, so the matrix
    /// traffic is amortized and the four accumulator chains run
    /// independently. Bitwise identical to calling the single-vector
    /// form per vector — every vector keeps its own accumulation
    /// order; the block only shares the matrix loads.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square, `xs.len() != out.len()`, or any
    /// vector's dimension does not match.
    pub fn quadratic_forms_hermitian(&self, xs: &[&CVector], out: &mut [f64]) {
        assert!(self.is_square(), "quadratic form needs a square matrix");
        assert_eq!(xs.len(), out.len(), "quadratic form output length mismatch");
        for x in xs {
            assert_eq!(x.dim(), self.rows, "matvec dimension mismatch");
        }
        let mut k = 0;
        while k + 4 <= xs.len() {
            let vals =
                self.quadratic_form_hermitian_x4([xs[k], xs[k + 1], xs[k + 2], xs[k + 3]]);
            out[k..k + 4].copy_from_slice(&vals);
            k += 4;
        }
        for (x, o) in xs[k..].iter().zip(&mut out[k..]) {
            *o = self.quadratic_form_hermitian(x);
        }
    }

    /// One four-vector block of [`Self::quadratic_forms_hermitian`]:
    /// dimensions are already checked by the caller.
    fn quadratic_form_hermitian_x4(&self, xs: [&CVector; 4]) -> [f64; 4] {
        let n = self.rows;
        let s = [
            xs[0].as_slice(),
            xs[1].as_slice(),
            xs[2].as_slice(),
            xs[3].as_slice(),
        ];
        let mut diag = [0.0f64; 4];
        let mut cross = [C_ZERO; 4];
        // qfc-lint: hot
        for i in 0..n {
            let row = &self.data[i * n..(i + 1) * n];
            let aii = row[i].re;
            let tail = &row[i + 1..];
            let (t0, t1, t2, t3) = (
                &s[0][i + 1..],
                &s[1][i + 1..],
                &s[2][i + 1..],
                &s[3][i + 1..],
            );
            let mut t = [C_ZERO; 4];
            // Exact-length zips: no index bounds checks in the kernel.
            for ((((&a, &b0), &b1), &b2), &b3) in
                tail.iter().zip(t0).zip(t1).zip(t2).zip(t3)
            {
                t[0] += a * b0;
                t[1] += a * b1;
                t[2] += a * b2;
                t[3] += a * b3;
            }
            diag[0] += aii * s[0][i].norm_sqr();
            diag[1] += aii * s[1][i].norm_sqr();
            diag[2] += aii * s[2][i].norm_sqr();
            diag[3] += aii * s[3][i].norm_sqr();
            cross[0] += s[0][i].conj() * t[0];
            cross[1] += s[1][i].conj() * t[1];
            cross[2] += s[2][i].conj() * t[2];
            cross[3] += s[3][i].conj() * t[3];
        }
        [
            diag[0] + 2.0 * cross[0].re,
            diag[1] + 2.0 * cross[1].re,
            diag[2] + 2.0 * cross[2].re,
            diag[3] + 2.0 * cross[3].re,
        ]
    }

    /// A batch of [`Self::ger_hermitian_upper`] updates, blocked four
    /// at a time: each block touches every accumulator element once for
    /// four rank-1 updates instead of four times, quartering the
    /// load/store traffic on `self`. Bitwise identical to applying the
    /// updates sequentially — per element the four contributions are
    /// added in batch order, exactly the association the sequential
    /// form produces.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or any vector's dimension does
    /// not match.
    pub fn ger_hermitian_upper_batch(&mut self, updates: &[(f64, &CVector)]) {
        assert!(self.is_square(), "ger_hermitian_upper needs a square matrix");
        for (_, x) in updates {
            assert_eq!(x.dim(), self.rows, "ger_assign row dimension mismatch");
        }
        let mut k = 0;
        while k + 4 <= updates.len() {
            self.ger_hermitian_upper_x4([
                updates[k],
                updates[k + 1],
                updates[k + 2],
                updates[k + 3],
            ]);
            k += 4;
        }
        for &(alpha, x) in &updates[k..] {
            self.ger_hermitian_upper(alpha, x);
        }
    }

    /// One four-update block of [`Self::ger_hermitian_upper_batch`]:
    /// dimensions are already checked by the caller.
    fn ger_hermitian_upper_x4(&mut self, updates: [(f64, &CVector); 4]) {
        let n = self.rows;
        let s = [
            updates[0].1.as_slice(),
            updates[1].1.as_slice(),
            updates[2].1.as_slice(),
            updates[3].1.as_slice(),
        ];
        let al = [updates[0].0, updates[1].0, updates[2].0, updates[3].0];
        // qfc-lint: hot
        for i in 0..n {
            let xa = [
                s[0][i].scale(al[0]),
                s[1][i].scale(al[1]),
                s[2][i].scale(al[2]),
                s[3][i].scale(al[3]),
            ];
            let row = &mut self.data[i * n + i..(i + 1) * n];
            let (y0, y1, y2, y3) = (&s[0][i..], &s[1][i..], &s[2][i..], &s[3][i..]);
            // Exact-length zips: no index bounds checks in the kernel.
            for ((((o, &b0), &b1), &b2), &b3) in
                row.iter_mut().zip(y0).zip(y1).zip(y2).zip(y3)
            {
                let mut z = *o;
                z += xa[0] * b0.conj();
                z += xa[1] * b1.conj();
                z += xa[2] * b2.conj();
                z += xa[3] * b3.conj();
                *o = z;
            }
        }
    }

    /// Hermitian rank-1 update `self += α·x·x†`, writing only the
    /// diagonal and strict upper triangle — half the work of
    /// [`Self::ger_assign`] on a Hermitian accumulator. Pair with
    /// [`Self::hermitianize_upper`] to materialize the lower triangle
    /// once after a batch of updates.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `x.dim() != self.rows()`.
    pub fn ger_hermitian_upper(&mut self, alpha: f64, x: &CVector) {
        assert!(self.is_square(), "ger_hermitian_upper needs a square matrix");
        assert_eq!(x.dim(), self.rows, "ger_assign row dimension mismatch");
        let xs = x.as_slice();
        let n = self.rows;
        // qfc-lint: hot
        for (i, &xi) in xs.iter().enumerate() {
            let xa = xi.scale(alpha);
            let row = &mut self.data[i * n + i..(i + 1) * n];
            for (o, &yj) in row.iter_mut().zip(&xs[i..]) {
                *o += xa * yj.conj();
            }
        }
    }

    /// Makes the matrix bitwise Hermitian from its upper triangle: every
    /// strictly-lower element becomes the conjugate of its upper mirror,
    /// and diagonal imaginary parts are zeroed. The upper triangle is
    /// the source of truth; this is the cheap (O(n²/2) copies, no
    /// arithmetic) companion of the `*_hermitian` kernels above.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square.
    pub fn hermitianize_upper(&mut self) {
        assert!(self.is_square(), "hermitianize needs a square matrix");
        let n = self.rows;
        for i in 0..n {
            self.data[i * n + i].im = 0.0;
            for j in i + 1..n {
                self.data[j * n + i] = self.data[i * n + j].conj();
            }
        }
    }

    /// `true` if `‖A − A†‖∞ ≤ tol` element-wise.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if `A†A ≈ I` within `tol` element-wise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let p = self.adjoint().matmul(self);
        p.approx_eq(&Self::identity(self.rows), tol)
    }

    /// `true` if every element is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Largest element-wise modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: Self) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: Self) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: Self) -> CMatrix {
        self.matmul(rhs)
    }
}

impl Mul<&CVector> for &CMatrix {
    type Output = CVector;
    fn mul(self, rhs: &CVector) -> CVector {
        self.matvec(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_I;
    use proptest::prelude::*;

    #[test]
    fn identity_and_trace() {
        let id = CMatrix::identity(3);
        assert_eq!(id.trace().re, 3.0);
        assert!(id.is_hermitian(0.0));
        assert!(id.is_unitary(1e-15));
    }

    #[test]
    fn indexing_row_major() {
        let m = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)].re, 2.0);
        assert_eq!(m[(1, 0)].re, 3.0);
        assert_eq!(m.row(1), CVector::from_real(&[3.0, 4.0]));
        assert_eq!(m.col(0), CVector::from_real(&[1.0, 3.0]));
    }

    #[test]
    fn matmul_known_product() {
        let a = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = CMatrix::from_real_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        let expect = CMatrix::from_real_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!(c.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex64::new(i as f64, j as f64));
        assert!(a.matmul(&CMatrix::identity(3)).approx_eq(&a, 0.0));
        assert!(CMatrix::identity(3).matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let m = CMatrix::from_vec(1, 2, vec![C_I, Complex64::new(1.0, 2.0)]);
        let a = m.adjoint();
        assert_eq!(a.rows(), 2);
        assert_eq!(a[(0, 0)], -C_I);
        assert_eq!(a[(1, 0)], Complex64::new(1.0, -2.0));
    }

    #[test]
    fn pauli_y_is_hermitian_and_unitary() {
        let y = CMatrix::from_vec(2, 2, vec![C_ZERO, -C_I, C_I, C_ZERO]);
        assert!(y.is_hermitian(0.0));
        assert!(y.is_unitary(1e-15));
        // Y² = I
        assert!(y.matmul(&y).approx_eq(&CMatrix::identity(2), 1e-15));
    }

    #[test]
    fn kron_of_identities() {
        let k = CMatrix::identity(2).kron(&CMatrix::identity(3));
        assert!(k.approx_eq(&CMatrix::identity(6), 0.0));
    }

    #[test]
    fn kron_trace_is_product_of_traces() {
        let a = CMatrix::from_real_rows(&[&[1.0, 5.0], &[0.0, 2.0]]);
        let b = CMatrix::from_real_rows(&[&[3.0, 1.0], &[1.0, 4.0]]);
        let k = a.kron(&b);
        assert!((k.trace() - a.trace() * b.trace()).approx_zero(1e-12));
    }

    #[test]
    fn outer_product_is_rank_one_projector() {
        let v = CVector::from_real(&[1.0, 0.0]).normalized();
        let p = CMatrix::outer(&v, &v);
        assert!(p.matmul(&p).approx_eq(&p, 1e-14));
        assert!((p.trace().re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = CVector::from_real(&[1.0, -1.0]);
        let r = m.matvec(&v);
        assert_eq!(r, CVector::from_real(&[-1.0, -1.0]));
    }

    #[test]
    fn sandwich_expectation() {
        let z = CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let plus = CVector::from_real(&[1.0, 1.0]).normalized();
        assert!(z.sandwich(&plus, &plus).approx_zero(1e-14));
        let zero = CVector::basis(2, 0);
        assert!((z.sandwich(&zero, &zero).re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn diag_and_from_fn() {
        let d = CMatrix::diag(&[C_ONE, C_I]);
        assert_eq!(d[(1, 1)], C_I);
        assert_eq!(d[(0, 1)], C_ZERO);
        let f = CMatrix::from_fn(2, 2, |i, j| Complex64::real((i + j) as f64));
        assert_eq!(f[(1, 1)].re, 2.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = CMatrix::from_real_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Deterministic pseudo-random test matrix (no RNG dependency).
    fn scrambled_rect(rows: usize, cols: usize, salt: u64) -> CMatrix {
        CMatrix::from_fn(rows, cols, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add(salt);
            let x = (h ^ (h >> 31)) as f64 / u64::MAX as f64;
            let y = (h.wrapping_mul(0xBF58_476D_1CE4_E5B9) >> 11) as f64 / (1u64 << 53) as f64;
            Complex64::new(x - 0.5, y - 0.5)
        })
    }

    fn scrambled(n: usize, salt: u64) -> CMatrix {
        scrambled_rect(n, n, salt)
    }

    fn bits_eq(a: &CMatrix, b: &CMatrix) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
    }

    #[test]
    fn matmul_into_bit_identical_to_matmul() {
        for n in [1, 2, 4, 7] {
            let a = scrambled(n, 1);
            let b = scrambled(n, 2);
            let mut out = CMatrix::from_fn(n, n, |_, _| C_I); // pre-dirtied
            a.matmul_into(&b, &mut out);
            assert!(bits_eq(&out, &a.matmul(&b)), "n = {n}");
        }
        // Sparse LHS exercises the skip-zero path.
        let mut a = scrambled(5, 3);
        for k in 0..5 {
            a[(2, k)] = C_ZERO;
            a[(k, 4)] = C_ZERO;
        }
        let b = scrambled(5, 4);
        let mut out = CMatrix::zeros(5, 5);
        a.matmul_into(&b, &mut out);
        assert!(bits_eq(&out, &a.matmul(&b)));
    }

    #[test]
    fn trace_of_product_bit_identical() {
        for n in [1, 2, 4, 16] {
            let a = scrambled(n, 5);
            let b = scrambled(n, 6);
            let full = a.matmul(&b).trace();
            let fast = a.trace_of_product(&b);
            assert_eq!(full.re.to_bits(), fast.re.to_bits(), "n = {n}");
            assert_eq!(full.im.to_bits(), fast.im.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn add_scaled_assign_bit_identical() {
        let a = scrambled(6, 7);
        let b = scrambled(6, 8);
        let s = 0.731;
        let mut fast = a.clone();
        fast.add_scaled_assign(&b, s);
        assert!(bits_eq(&fast, &(&a + &b.scale(s))));
    }

    #[test]
    fn scale_in_place_and_fill_zero() {
        let a = scrambled(4, 9);
        let mut fast = a.clone();
        fast.scale_in_place(-1.75);
        assert!(bits_eq(&fast, &a.scale(-1.75)));
        fast.fill_zero();
        assert!(bits_eq(&fast, &CMatrix::zeros(4, 4)));
    }

    #[test]
    fn frobenius_distance_bit_identical() {
        let a = scrambled(6, 10);
        let b = scrambled(6, 11);
        assert_eq!(
            a.frobenius_distance(&b).to_bits(),
            (&a - &b).frobenius_norm().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_rejects_bad_shape() {
        let a = CMatrix::identity(2);
        let mut out = CMatrix::zeros(3, 3);
        a.matmul_into(&a.clone(), &mut out);
    }

    #[test]
    fn copy_from_is_bitwise() {
        let src = scrambled(5, 3);
        let mut dst = CMatrix::zeros(5, 5);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        // Overwrites, not accumulates.
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn copy_from_rejects_shape_mismatch() {
        let src = CMatrix::identity(3);
        let mut dst = CMatrix::zeros(2, 2);
        dst.copy_from(&src);
    }

    #[test]
    fn lerp_identity_endpoints_and_midpoint() {
        let a = scrambled(4, 7);

        // γ = 1 is the identity map on the matrix.
        let mut g1 = a.clone();
        g1.lerp_identity_in_place(1.0);
        assert_eq!(g1, a);

        // γ = 0 collapses to the identity matrix.
        let mut g0 = a.clone();
        g0.lerp_identity_in_place(0.0);
        assert!(g0.approx_eq(&CMatrix::identity(4), 0.0));

        // Generic γ matches the two-temporary formula elementwise.
        let gamma = 2.5;
        let mut gm = a.clone();
        gm.lerp_identity_in_place(gamma);
        let expect = &CMatrix::identity(4).scale(1.0 - gamma) + &a.scale(gamma);
        assert!(gm.approx_eq(&expect, 0.0));
    }

    #[test]
    fn lerp_identity_preserves_hermiticity() {
        let s = scrambled(4, 13);
        let herm = &s + &s.adjoint();
        let mut mixed = herm.clone();
        mixed.lerp_identity_in_place(3.0);
        assert!(mixed.is_hermitian(0.0));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn lerp_identity_rejects_rectangular() {
        let mut m = CMatrix::zeros(2, 3);
        m.lerp_identity_in_place(1.5);
    }

    fn vbits_eq(a: &CVector, b: &CVector) -> bool {
        a.dim() == b.dim()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
    }

    #[test]
    fn packed_gemm_bit_identical_square_and_rect() {
        let mut scratch = GemmScratch::new();
        for (m, k, n) in [
            (1, 1, 1),
            (2, 3, 4),
            (5, 1, 7),
            (1, 8, 1),
            (16, 16, 16),
            (64, 64, 64),
            (64, 3, 17),
        ] {
            let a = scrambled_rect(m, k, 101);
            let b = scrambled_rect(k, n, 202);
            let mut oracle = CMatrix::zeros(m, n);
            a.matmul_into(&b, &mut oracle);
            let mut fast = CMatrix::from_fn(m, n, |_, _| C_I); // pre-dirtied
            a.matmul_packed_into(&b, &mut fast, &mut scratch);
            assert!(bits_eq(&fast, &oracle), "{m}x{k} · {k}x{n}");
        }
    }

    #[test]
    fn packed_gemm_bit_identical_sparse_rows() {
        // Zeros in the LHS exercise the skip-zero branch, which must
        // skip in exactly the same places as `matmul_into` (skipping a
        // zero is not an IEEE no-op: −0 + 0 = +0).
        let mut a = scrambled_rect(6, 5, 301);
        for k in 0..5 {
            a[(2, k)] = C_ZERO;
        }
        a[(0, 3)] = C_ZERO;
        a[(4, 0)] = C_ZERO;
        let b = scrambled_rect(5, 6, 302);
        let mut oracle = CMatrix::zeros(6, 6);
        a.matmul_into(&b, &mut oracle);
        let mut fast = CMatrix::zeros(6, 6);
        let mut scratch = GemmScratch::new();
        a.matmul_packed_into(&b, &mut fast, &mut scratch);
        assert!(bits_eq(&fast, &oracle));
    }

    #[test]
    fn packed_gemm_handles_empty_shapes() {
        let mut scratch = GemmScratch::new();
        for (m, k, n) in [(0, 0, 0), (0, 3, 2), (2, 0, 3), (3, 2, 0)] {
            let a = scrambled_rect(m, k, 401);
            let b = scrambled_rect(k, n, 402);
            let mut oracle = CMatrix::zeros(m, n);
            a.matmul_into(&b, &mut oracle);
            let mut fast = CMatrix::zeros(m, n);
            a.matmul_packed_into(&b, &mut fast, &mut scratch);
            assert!(bits_eq(&fast, &oracle), "{m}x{k} · {k}x{n}");
        }
    }

    #[test]
    fn packed_gemm_scratch_reuse_across_shapes() {
        // One scratch carried across different shapes must not leak
        // stale packed entries between calls.
        let mut scratch = GemmScratch::new();
        for (n, salt) in [(8, 11), (3, 12), (8, 13), (5, 14)] {
            let a = scrambled(n, salt);
            let b = scrambled(n, salt + 100);
            let mut oracle = CMatrix::zeros(n, n);
            a.matmul_into(&b, &mut oracle);
            let mut fast = CMatrix::zeros(n, n);
            a.matmul_packed_into(&b, &mut fast, &mut scratch);
            assert!(bits_eq(&fast, &oracle), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn packed_gemm_rejects_bad_output_shape() {
        let a = CMatrix::identity(2);
        let b = CMatrix::identity(2);
        let mut out = CMatrix::zeros(3, 3);
        a.matmul_packed_into(&b, &mut out, &mut GemmScratch::new());
    }

    #[test]
    fn matvec_into_bit_identical_to_matvec() {
        for (m, n) in [(1, 1), (3, 5), (5, 3), (16, 16)] {
            let a = scrambled_rect(m, n, 501);
            let v: CVector = (0..n)
                .map(|j| Complex64::new(j as f64 - 1.5, 0.25 * j as f64))
                .collect();
            let mut out = CVector::from_vec(vec![C_I; m]); // pre-dirtied
            a.matvec_into(&v, &mut out);
            assert!(vbits_eq(&out, &a.matvec(&v)), "{m}x{n}");
        }
    }

    #[test]
    #[should_panic(expected = "output dimension mismatch")]
    fn matvec_into_rejects_bad_output_dim() {
        let a = CMatrix::identity(2);
        let v = CVector::from_real(&[1.0, 2.0]);
        let mut out = CVector::from_real(&[0.0; 3]);
        a.matvec_into(&v, &mut out);
    }

    #[test]
    fn ger_assign_matches_outer_accumulation() {
        let x: CVector = (0..4).map(|i| Complex64::new(0.5 * i as f64, -0.25)).collect();
        let y: CVector = (0..3).map(|j| Complex64::new(-0.125, 0.75 * j as f64)).collect();
        let alpha = 0.731;
        let mut fast = scrambled_rect(4, 3, 601);
        let mut slow = fast.clone();
        fast.ger_assign(alpha, &x, &y);
        slow.add_scaled_assign(&CMatrix::outer(&x, &y), alpha);
        // Same math, different association (α·x vs α·(x·y†)): equal to
        // rounding, not bit-for-bit.
        assert!(fast.approx_eq(&slow, 1e-15));
        // Exact contract: each element gains (α·xᵢ)·conj(yⱼ).
        let mut manual = scrambled_rect(4, 3, 601);
        for i in 0..4 {
            for j in 0..3 {
                let d = x[i].scale(alpha) * y[j].conj();
                let s = manual[(i, j)] + d;
                manual[(i, j)] = s;
            }
        }
        assert!(bits_eq(&fast, &manual));
    }

    #[test]
    #[should_panic(expected = "ger_assign row dimension mismatch")]
    fn ger_assign_rejects_bad_shape() {
        let mut m = CMatrix::zeros(2, 2);
        let x = CVector::from_real(&[1.0, 2.0, 3.0]);
        let y = CVector::from_real(&[1.0, 2.0]);
        m.ger_assign(1.0, &x, &y);
    }

    #[test]
    fn row_col_into_bit_identical() {
        let m = scrambled_rect(4, 6, 701);
        let mut r = CVector::from_vec(vec![C_I; 6]);
        let mut c = CVector::from_vec(vec![C_I; 4]);
        for i in 0..4 {
            m.row_into(i, &mut r);
            assert!(vbits_eq(&r, &m.row(i)), "row {i}");
        }
        for j in 0..6 {
            m.col_into(j, &mut c);
            assert!(vbits_eq(&c, &m.col(j)), "col {j}");
        }
    }

    #[test]
    fn sandwich_bit_identical_to_two_step_form() {
        for n in [1, 2, 5, 16] {
            let a = scrambled(n, 801);
            let x: CVector = (0..n)
                .map(|i| Complex64::new(0.3 * i as f64 - 0.7, 0.1 * i as f64))
                .collect();
            let y: CVector = (0..n)
                .map(|i| Complex64::new(-0.2 * i as f64, 0.6 - 0.05 * i as f64))
                .collect();
            let fused = a.sandwich(&x, &y);
            let two_step = x.dot(&a.matvec(&y));
            assert_eq!(fused.re.to_bits(), two_step.re.to_bits(), "n = {n}");
            assert_eq!(fused.im.to_bits(), two_step.im.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn sandwich_lanes_matches_sandwich_approximately() {
        // Lane association differs from the single chain, so agreement
        // is to rounding, not bitwise — including every tail length
        // (dims 1..=9 cover all `mod 4` remainders).
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 16, 33, 64] {
            let a = scrambled(n, 407);
            let x: CVector = (0..n)
                .map(|i| Complex64::new(0.4 * i as f64 - 0.9, 0.07 * i as f64))
                .collect();
            let y: CVector = (0..n)
                .map(|i| Complex64::new(0.5 - 0.03 * i as f64, 0.11 * i as f64))
                .collect();
            let chain = a.sandwich(&x, &y);
            let lanes = a.sandwich_lanes(&x, &y);
            let scale = chain.abs().max(1.0);
            assert!(
                (chain - lanes).abs() <= 1e-12 * scale,
                "n = {n}: {chain:?} vs {lanes:?}"
            );
            // Deterministic: the lane layout depends only on shape.
            let again = a.sandwich_lanes(&x, &y);
            assert_eq!(lanes.re.to_bits(), again.re.to_bits(), "n = {n}");
            assert_eq!(lanes.im.to_bits(), again.im.to_bits(), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn sandwich_lanes_rejects_bad_y_dim() {
        let a = scrambled(3, 1);
        let x = CVector::zeros(3);
        let y = CVector::zeros(2);
        let _ = a.sandwich_lanes(&x, &y);
    }

    /// Hermitian version of `scrambled`: `(A + A†)/2`.
    fn scrambled_hermitian(n: usize, salt: u64) -> CMatrix {
        let a = scrambled(n, salt);
        CMatrix::from_fn(n, n, |i, j| (a[(i, j)] + a[(j, i)].conj()).scale(0.5))
    }

    #[test]
    fn quadratic_form_hermitian_matches_sandwich() {
        // Upper-triangle association differs from the full sandwich,
        // so agreement is to rounding, not bitwise.
        for n in [1usize, 2, 3, 4, 5, 7, 9, 16, 64] {
            let h = scrambled_hermitian(n, 611);
            let x: CVector = (0..n)
                .map(|i| Complex64::new(0.3 * i as f64 - 0.7, 0.09 * i as f64 - 0.2))
                .collect();
            let full = h.sandwich(&x, &x);
            let half = h.quadratic_form_hermitian(&x);
            let scale = full.abs().max(1.0);
            assert!((full.re - half).abs() <= 1e-12 * scale, "n = {n}: {full:?} vs {half}");
            // Deterministic: same inputs, same bits.
            let again = h.quadratic_form_hermitian(&x);
            assert_eq!(half.to_bits(), again.to_bits(), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn quadratic_form_hermitian_rejects_bad_dim() {
        let h = scrambled_hermitian(3, 2);
        let _ = h.quadratic_form_hermitian(&CVector::zeros(4));
    }

    #[test]
    fn ger_hermitian_upper_plus_mirror_matches_full_ger() {
        for n in [1usize, 2, 3, 5, 8, 16, 33] {
            let h = scrambled_hermitian(n, 709);
            let x: CVector = (0..n)
                .map(|i| Complex64::new(0.2 * i as f64 - 0.5, 0.5 - 0.13 * i as f64))
                .collect();
            let mut full = h.clone();
            full.ger_assign(0.75, &x, &x);
            let mut half = h.clone();
            half.ger_hermitian_upper(0.75, &x);
            half.hermitianize_upper();
            assert!(half.approx_eq(&full, 1e-13), "n = {n}");
            // The strict upper triangle runs the exact same product
            // order as the full ger — bitwise equal there. Diagonals
            // agree bitwise in re; the mirror zeroes the round-off im
            // that the full ger leaves behind.
            for i in 0..n {
                let (a, b) = (half[(i, i)], full[(i, i)]);
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "n = {n} diag ({i})");
                assert_eq!(a.im.to_bits(), 0.0f64.to_bits(), "n = {n} diag im ({i})");
                assert!(
                    b.im.abs() <= 1e-14 * (1.0 + b.re.abs()),
                    "n = {n} diag im ({i}): {}",
                    b.im
                );
                for j in i + 1..n {
                    let (a, b) = (half[(i, j)], full[(i, j)]);
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "n = {n} ({i},{j})");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n = {n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ger_assign row dimension mismatch")]
    fn ger_hermitian_upper_rejects_bad_dim() {
        let mut h = scrambled_hermitian(3, 3);
        h.ger_hermitian_upper(1.0, &CVector::zeros(2));
    }

    #[test]
    fn quadratic_forms_hermitian_batch_bitwise_matches_single() {
        // Lengths 0..=9 cover every block-of-4 remainder.
        for m in 0..=9usize {
            let h = scrambled_hermitian(16, 911);
            let vecs: Vec<CVector> = (0..m)
                .map(|k| {
                    (0..16)
                        .map(|i| {
                            Complex64::new(
                                0.1 * (i + k) as f64 - 0.6,
                                0.23 - 0.05 * (i * (k + 1)) as f64,
                            )
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&CVector> = vecs.iter().collect();
            let mut out = vec![0.0f64; m];
            h.quadratic_forms_hermitian(&refs, &mut out);
            for (k, x) in refs.iter().enumerate() {
                let single = h.quadratic_form_hermitian(x);
                assert_eq!(out[k].to_bits(), single.to_bits(), "m = {m}, k = {k}");
            }
        }
    }

    #[test]
    fn ger_hermitian_upper_batch_bitwise_matches_sequential() {
        for m in 0..=9usize {
            let h = scrambled_hermitian(16, 1013);
            let vecs: Vec<CVector> = (0..m)
                .map(|k| {
                    (0..16)
                        .map(|i| {
                            Complex64::new(
                                0.07 * (2 * i + k) as f64 - 0.4,
                                0.3 - 0.04 * (i + 2 * k) as f64,
                            )
                        })
                        .collect()
                })
                .collect();
            let updates: Vec<(f64, &CVector)> =
                vecs.iter().enumerate().map(|(k, v)| (0.5 + 0.1 * k as f64, v)).collect();
            let mut batched = h.clone();
            batched.ger_hermitian_upper_batch(&updates);
            let mut sequential = h.clone();
            for &(alpha, x) in &updates {
                sequential.ger_hermitian_upper(alpha, x);
            }
            for i in 0..16 {
                for j in i..16 {
                    let (a, b) = (batched[(i, j)], sequential[(i, j)]);
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "m = {m} ({i},{j})");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "m = {m} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn hermitianize_upper_mirrors_and_preserves_upper() {
        let a = scrambled(5, 811);
        let mut m = a.clone();
        m.hermitianize_upper();
        for i in 0..5 {
            assert_eq!(m[(i, i)].im.to_bits(), 0.0f64.to_bits(), "diag im ({i})");
            assert_eq!(m[(i, i)].re.to_bits(), a[(i, i)].re.to_bits(), "diag re ({i})");
            for j in i + 1..5 {
                // Upper untouched, lower the exact conjugate.
                assert_eq!(m[(i, j)].re.to_bits(), a[(i, j)].re.to_bits());
                assert_eq!(m[(i, j)].im.to_bits(), a[(i, j)].im.to_bits());
                assert_eq!(m[(j, i)].re.to_bits(), m[(i, j)].re.to_bits());
                assert_eq!(m[(j, i)].im.to_bits(), (-m[(i, j)].im).to_bits());
            }
        }
        assert!(m.is_hermitian(0.0));
    }

    proptest! {
        /// `matmul_packed_into` equals `matmul_into` bit for bit across
        /// arbitrary square and non-square shapes — including degenerate
        /// 1-dim and empty operands — and arbitrary sparsity patterns
        /// (zeroed entries exercise the skip-zero branch).
        #[test]
        fn packed_gemm_equals_naive_gemm_bitwise(
            m in 0usize..25,
            k in 0usize..25,
            n in 0usize..25,
            salt in 0u64..1000,
            zero_mask in 0u64..8u64,
        ) {
            let mut a = scrambled_rect(m, k, salt);
            // Sprinkle exact zeros so the skip-zero path fires.
            for i in 0..m {
                for j in 0..k {
                    if (i as u64 + j as u64 + salt) % 8 < zero_mask {
                        a[(i, j)] = C_ZERO;
                    }
                }
            }
            let b = scrambled_rect(k, n, salt.wrapping_add(7));
            let mut oracle = CMatrix::zeros(m, n);
            a.matmul_into(&b, &mut oracle);
            let mut fast = CMatrix::from_fn(m, n, |_, _| C_I);
            let mut scratch = GemmScratch::new();
            a.matmul_packed_into(&b, &mut fast, &mut scratch);
            prop_assert!(bits_eq(&fast, &oracle));
        }

        /// Large-shape spot check at the bench-relevant d = 64 corner
        /// (fewer cases, run through the same oracle).
        #[test]
        fn packed_gemm_equals_naive_gemm_large(seed in 0u64..8) {
            let a = scrambled_rect(64, 64, seed);
            let b = scrambled_rect(64, 33, seed.wrapping_add(3));
            let mut oracle = CMatrix::zeros(64, 33);
            a.matmul_into(&b, &mut oracle);
            let mut fast = CMatrix::zeros(64, 33);
            let mut scratch = GemmScratch::new();
            a.matmul_packed_into(&b, &mut fast, &mut scratch);
            prop_assert!(bits_eq(&fast, &oracle));
        }
    }

    #[test]
    fn arithmetic_ops() {
        let a = CMatrix::identity(2);
        let b = a.scale(2.0);
        assert_eq!((&a + &a), b);
        assert!((&b - &a).approx_eq(&a, 0.0));
        assert!((-&a).approx_eq(&a.scale(-1.0), 0.0));
        let c = b.scale_c(C_I);
        assert_eq!(c[(0, 0)], Complex64::new(0.0, 2.0));
    }
}
