//@ crate: qfc-core
// Imports and type mentions are quiet since v2: the rule fires in *use*
// position only (ident followed by `::`, `(`, `!`, or `<`).
use std::collections::HashMap;
use std::time::Instant;

pub struct Span {
    started: Instant,
}

pub fn stamp() {
    let _t0 = Instant::now(); //~ ERROR determinism
}

pub fn ambient_entropy() {
    let _rng = thread_rng(); //~ ERROR determinism
}

pub fn unordered_map() {
    let m: HashMap<u64, u64> = HashMap::new(); //~ ERROR determinism
    //~^ ERROR determinism
    let _ = m;
}

pub fn ordered_is_fine() {
    let _m: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
}
