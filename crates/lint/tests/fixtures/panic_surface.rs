//@ crate: qfc-quantum
pub fn boom() {
    panic!("bad"); //~ ERROR panic-surface
}

pub fn not_yet() {
    todo!() //~ ERROR panic-surface
}

pub fn never(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!("exhaustive"), //~ ERROR panic-surface
    }
}

pub fn wrapped() {
    panic!("documented"); // qfc-lint: allow(panic-surface) — fixture: documented panicking wrapper
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_panics_are_free() {
        panic!("tests may panic");
    }
}
