//! Substrate micro-benchmarks: the numerical kernels every experiment
//! rides on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::hermitian::{eigh, sqrtm_psd, svd};
use qfc_mathkit::rng::{normal, rng_from_seed};
use qfc_photonics as _;
use qfc_timetag::coincidence::{count_coincidences, cross_correlation_histogram};
use qfc_timetag::events::TagStream;

fn random_hermitian(n: usize, seed: u64) -> CMatrix {
    let mut rng = rng_from_seed(seed);
    let mut m = CMatrix::zeros(n, n);
    for i in 0..n {
        m[(i, i)] = Complex64::real(normal(&mut rng, 0.0, 1.0));
        for j in (i + 1)..n {
            let z = Complex64::new(normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0));
            m[(i, j)] = z;
            m[(j, i)] = z.conj();
        }
    }
    m
}

fn random_stream(n: usize, span_ps: i64, seed: u64) -> TagStream {
    use rand::Rng;
    let mut rng = rng_from_seed(seed);
    (0..n)
        .map(|_| (rng.gen::<f64>() * span_ps as f64) as i64)
        .collect()
}

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_linalg");
    for &n in &[4usize, 16, 64] {
        let a = random_hermitian(n, 1);
        let b = random_hermitian(n, 2);
        g.bench_function(format!("matmul_{n}x{n}"), |bench| {
            bench.iter(|| black_box(&a) * black_box(&b))
        });
        g.bench_function(format!("eigh_{n}x{n}"), |bench| {
            bench.iter(|| eigh(black_box(&a)))
        });
    }
    let psd = {
        let a = random_hermitian(16, 3);
        &a.adjoint() * &a
    };
    g.bench_function("sqrtm_psd_16x16", |bench| {
        bench.iter(|| sqrtm_psd(black_box(&psd)))
    });
    let rect = CMatrix::from_fn(48, 48, |i, j| {
        Complex64::new((i as f64 * 0.3).sin(), (j as f64 * 0.7).cos())
    });
    g.bench_function("svd_48x48", |bench| {
        bench.iter(|| svd(black_box(&rect), 1e-10))
    });
    g.finish();
}

fn bench_coincidence(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_coincidence");
    let a = random_stream(100_000, 1_000_000_000_000, 4);
    let b = random_stream(100_000, 1_000_000_000_000, 5);
    g.bench_function("count_100k_events", |bench| {
        bench.iter(|| count_coincidences(black_box(&a), black_box(&b), 1000, 0))
    });
    let a2 = random_stream(20_000, 1_000_000_000, 6);
    let b2 = random_stream(20_000, 1_000_000_000, 7);
    g.bench_function("histogram_20k_events", |bench| {
        bench.iter_batched(
            || (a2.clone(), b2.clone()),
            |(x, y)| cross_correlation_histogram(&x, &y, 15_000, 250),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fft_lle(c: &mut Criterion) {
    use qfc_mathkit::fft::{fft, ifft};
    use qfc_photonics::lle::{LleParameters, LleSimulator};
    let mut g = c.benchmark_group("substrate_fft_lle");
    let data: Vec<Complex64> = (0..1024)
        .map(|k| Complex64::new((k as f64 * 0.11).sin(), (k as f64 * 0.07).cos()))
        .collect();
    g.bench_function("fft_1024", |bench| {
        bench.iter_batched(
            || data.clone(),
            |mut d| {
                fft(&mut d);
                ifft(&mut d);
                d
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("lle_1000_steps", |bench| {
        bench.iter_batched(
            || LleSimulator::new(LleParameters::above_threshold()),
            |mut sim| {
                sim.run(1000);
                sim.state().mean_intensity()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_linalg, bench_coincidence, bench_fft_lle);
criterion_main!(benches);
