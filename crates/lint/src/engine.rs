//! The per-file rule engine: test-region masking, allow directives, the
//! token-pattern matchers for each line rule, and the glue that merges
//! semantic (call-graph) findings with the per-file directive layer.
//!
//! Since v2 the engine runs in two phases: [`analyze_source`] produces
//! a per-file [`Analysis`] (tokens, resolved symbols, raw line-rule
//! findings, directives), and [`finalize_file`] merges in the semantic
//! findings for that file, applies allow-directive suppression, and
//! emits `unused-allow` for stale directives. [`lint_source`] composes
//! both over a single file (with a single-file call graph), which keeps
//! fixture tests and doctests self-contained; the workspace runner
//! composes them over every file at once so cross-file reachability is
//! visible.

use std::collections::BTreeSet;

use crate::callgraph::{build, FileCtx};
use crate::lexer::{lex, TokKind, Token};
use crate::resolve::{is_keyword_before_bracket, resolve_file};
use crate::rules::{
    rule_applies, rule_by_name, Profile, ENTROPY_IDENTS, NUMERIC_TYPES, RNG_LANE_IDENTS,
    WALLCLOCK_IDENTS,
};
use crate::semantic;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed source line the finding points at.
    pub snippet: String,
}

/// Result of linting a single file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings after allow-directive suppression, in source order.
    pub findings: Vec<Finding>,
    /// Advisory findings (relaxed-profile downgrades), in source order.
    /// Advisories never fail `--deny` and are not allow-suppressible.
    pub advisories: Vec<Finding>,
    /// Number of slice/array indexing expressions outside test code —
    /// the panic-surface *audit* metric (informational, not a finding).
    pub index_audit: u64,
    /// Total allow directives seen outside test code.
    pub allows_total: u64,
    /// Allow directives that suppressed at least one finding.
    pub allows_used: u64,
}

/// A parsed `// qfc-lint: allow(rule, …) — justification` directive.
#[derive(Debug, Clone)]
pub(crate) struct Directive {
    pub(crate) rules: Vec<String>,
    pub(crate) line: u32,
    pub(crate) target_line: u32,
    pub(crate) used: bool,
}

/// Phase-1 output for one file: everything the semantic pass and the
/// finalizer need.
#[derive(Debug)]
pub(crate) struct Analysis {
    /// Identity, tokens, and resolved symbols (consumed by the call
    /// graph and the semantic pass).
    pub(crate) ctx: FileCtx,
    /// Raw line-rule findings, pre-suppression.
    pub(crate) raw: Vec<Finding>,
    /// Advisory line findings (relaxed-profile downgrades).
    pub(crate) advisories: Vec<Finding>,
    /// Parsed allow directives.
    pub(crate) directives: Vec<Directive>,
    /// Slice/array indexing count outside tests.
    pub(crate) index_audit: u64,
    /// Source lines (snippet rendering for semantic findings).
    pub(crate) lines: Vec<String>,
}

impl Analysis {
    /// Target lines of directives allowing `panic-reachability` (the
    /// semantic pass matches them against fn declaration lines).
    pub(crate) fn fn_allow_lines(&self) -> BTreeSet<u32> {
        self.directives
            .iter()
            .filter(|d| d.rules.iter().any(|r| r == "panic-reachability"))
            .map(|d| d.target_line)
            .collect()
    }
}

/// Lints one file's source text in the context of `crate_name`, under
/// the strict profile, with a call graph confined to this file.
///
/// `rel_path` is only used to label findings; no I/O happens here, which
/// is what makes the engine trivially testable against fixture snippets.
/// Cross-file reachability requires the workspace runner ([`crate::run`]).
pub fn lint_source(crate_name: &str, rel_path: &str, text: &str) -> FileReport {
    let analysis = analyze_source(crate_name, rel_path, text, Profile::Strict);
    let ctxs = std::slice::from_ref(&analysis.ctx);
    let graph = build(ctxs);
    let fn_allows = vec![analysis.fn_allow_lines()];
    let sem = semantic::analyze(ctxs, &graph, &fn_allows);
    let mut sem_findings = sem.findings;
    let mut sem_advisories = sem.advisories;
    let mut used_fn = sem.used_fn_allows;
    finalize_file(
        analysis,
        sem_findings.pop().unwrap_or_default(),
        sem_advisories.pop().unwrap_or_default(),
        &used_fn.pop().unwrap_or_default(),
    )
}

/// Phase 1: lexes, resolves, and runs every line rule over one file.
pub(crate) fn analyze_source(
    crate_name: &str,
    rel_path: &str,
    text: &str,
    profile: Profile,
) -> Analysis {
    let tokens = lex(text);
    let in_test = test_region_mask(&tokens);
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    let snippet = |line: u32| -> String {
        let idx = usize::try_from(line).unwrap_or(1).saturating_sub(1);
        let s = lines.get(idx).map(String::as_str).unwrap_or("").trim();
        let mut out: String = s.chars().take(160).collect();
        if s.chars().count() > 160 {
            out.push('…');
        }
        out
    };

    let mut raw: Vec<Finding> = Vec::new();
    let mut advisories: Vec<Finding> = Vec::new();
    let mut index_audit = 0u64;
    let directives = collect_directives(crate_name, rel_path, &tokens, &in_test, &mut raw, &snippet);
    let in_hot = hot_region_mask(rel_path, &tokens, &in_test, &mut raw, &snippet);

    // Indices of code tokens (non-comment, outside test regions) for the
    // pattern matchers; comments must not split a pattern like `as f64`.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !in_test[i] && !matches!(tokens[i].kind, TokKind::LineComment | TokKind::BlockComment)
        })
        .collect();

    let mut push = |rule: &'static str, tok: &Token, message: String, advisory: bool| {
        if rule_applies(rule, crate_name) {
            let f = Finding {
                rule,
                file: rel_path.to_string(),
                line: tok.line,
                col: tok.col,
                message,
                snippet: snippet(tok.line),
            };
            if advisory {
                advisories.push(f);
            } else {
                raw.push(f);
            }
        }
    };
    let relaxed = profile == Profile::Relaxed;

    for (j, &ti) in code.iter().enumerate() {
        let tok = &tokens[ti];
        let next = code.get(j + 1).map(|&k| &tokens[k]);
        match tok.kind {
            TokKind::Ident => {
                let name = tok.text.as_str();
                let next_is = |c: &str| {
                    next.map(|t| t.kind == TokKind::Punct && t.text == c)
                        .unwrap_or(false)
                };
                let code_at = |k: usize| code.get(k).map(|&m| &tokens[m]);
                let punct_at = |k: usize, c: &str| {
                    code_at(k)
                        .map(|t| t.kind == TokKind::Punct && t.text == c)
                        .unwrap_or(false)
                };
                if in_hot[ti] {
                    // `Vec::new`, `vec![`, `.clone()` — the three
                    // allocation shapes banned inside hot shot kernels.
                    if name == "Vec"
                        && punct_at(j + 1, ":")
                        && punct_at(j + 2, ":")
                        && code_at(j + 3)
                            .map(|t| t.kind == TokKind::Ident && t.text == "new")
                            .unwrap_or(false)
                    {
                        push(
                            "hot-loop-alloc",
                            tok,
                            "`Vec::new` inside a `qfc-lint: hot` region — hoist the \
                             buffer out of the shot loop"
                                .to_string(),
                            false,
                        );
                    } else if name == "vec" && next_is("!") {
                        push(
                            "hot-loop-alloc",
                            tok,
                            "`vec![…]` inside a `qfc-lint: hot` region — hoist the \
                             buffer out of the shot loop"
                                .to_string(),
                            false,
                        );
                    } else if name == "clone" && j > 0 && punct_at(j - 1, ".") && next_is("(") {
                        push(
                            "hot-loop-alloc",
                            tok,
                            "`.clone()` inside a `qfc-lint: hot` region — borrow or \
                             reuse a scratch buffer instead"
                                .to_string(),
                            false,
                        );
                    }
                }
                // Determinism idents fire only in *use* position — when
                // followed by `::`, `(`, `!`, or `<` — so imports, field
                // types, and return types stay quiet; the use site is
                // where the nondeterminism actually enters.
                let use_position =
                    next_is(":") || next_is("(") || next_is("!") || next_is("<");
                if name == "as" {
                    if let Some(n) = next {
                        if n.kind == TokKind::Ident && NUMERIC_TYPES.contains(&n.text.as_str()) {
                            push(
                                "lossy-cast",
                                tok,
                                format!(
                                    "`as {}` numeric cast — use qfc_mathkit::cast, \
                                     From/try_from, to_bits, or total_cmp",
                                    n.text
                                ),
                                relaxed,
                            );
                        }
                    }
                } else if WALLCLOCK_IDENTS.contains(&name) && use_position {
                    push(
                        "determinism",
                        tok,
                        format!(
                            "`{name}` reads the wall clock — results must be a pure \
                             function of explicit seeds"
                        ),
                        relaxed,
                    );
                } else if ENTROPY_IDENTS.contains(&name) && use_position {
                    push(
                        "determinism",
                        tok,
                        format!(
                            "`{name}` injects ambient entropy or unordered iteration — \
                             results must be a pure function of explicit seeds"
                        ),
                        false,
                    );
                } else if RNG_LANE_IDENTS.contains(&name) {
                    push(
                        "rng-lane",
                        tok,
                        format!(
                            "`{name}` bypasses the split_seed lane discipline — derive \
                             RNGs with qfc_mathkit::rng::rng_from_seed(split_seed(..))"
                        ),
                        false,
                    );
                } else if name == "pub" {
                    if let Some(f) = check_error_taxonomy(&tokens, &code, j) {
                        push("error-taxonomy", f.0, f.1, relaxed);
                    }
                }
            }
            // Indexing audit: `expr[...]` — `[` directly after an
            // identifier, `)` or `]` is an index expression, not an
            // array literal, attribute, or slice type.
            TokKind::Punct if tok.text == "[" && j > 0 => {
                let prev = &tokens[code[j - 1]];
                let indexing = prev.kind == TokKind::Ident
                    && !is_keyword_before_bracket(&prev.text)
                    || (prev.kind == TokKind::Punct && (prev.text == ")" || prev.text == "]"));
                if indexing {
                    index_audit += 1;
                }
            }
            _ => {}
        }
    }

    let symbols = resolve_file(&tokens, &in_test);
    Analysis {
        ctx: FileCtx {
            crate_name: crate_name.to_string(),
            file: rel_path.to_string(),
            profile,
            tokens,
            in_test,
            symbols,
        },
        raw,
        advisories,
        directives,
        index_audit,
        lines,
    }
}

/// Phase 2: merges semantic findings into one file's analysis, applies
/// allow-directive suppression, and reports stale directives.
///
/// `used_fn_lines` carries the fn-level `panic-reachability` directives
/// (by target line) that the semantic pass proved load-bearing.
pub(crate) fn finalize_file(
    analysis: Analysis,
    sem_findings: Vec<Finding>,
    sem_advisories: Vec<Finding>,
    used_fn_lines: &BTreeSet<u32>,
) -> FileReport {
    let Analysis {
        ctx,
        raw,
        advisories,
        mut directives,
        index_audit,
        lines,
    } = analysis;
    let rel_path = ctx.file;
    let snippet = |line: u32| -> String {
        let idx = usize::try_from(line).unwrap_or(1).saturating_sub(1);
        let s = lines.get(idx).map(String::as_str).unwrap_or("").trim();
        let mut out: String = s.chars().take(160).collect();
        if s.chars().count() > 160 {
            out.push('…');
        }
        out
    };
    let fill = |mut f: Finding| -> Finding {
        if f.snippet.is_empty() {
            f.snippet = snippet(f.line);
        }
        f
    };

    let mut report = FileReport {
        index_audit,
        ..FileReport::default()
    };

    // Fn-level panic-reachability allows proved load-bearing by the
    // semantic pass count as used even though no finding lands on their
    // target line.
    for d in directives.iter_mut() {
        if d.rules.iter().any(|r| r == "panic-reachability")
            && used_fn_lines.contains(&d.target_line)
        {
            d.used = true;
        }
    }

    let mut kept = Vec::new();
    for f in raw.into_iter().chain(sem_findings.into_iter().map(fill)) {
        let mut suppressed = false;
        if rule_by_name(f.rule).map(|r| r.allowable).unwrap_or(false) {
            for d in directives.iter_mut() {
                if d.target_line == f.line && d.rules.iter().any(|r| r == f.rule) {
                    d.used = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for d in &directives {
        report.allows_total += 1;
        if d.used {
            report.allows_used += 1;
        } else {
            kept.push(Finding {
                rule: "unused-allow",
                file: rel_path.clone(),
                line: d.line,
                col: 1,
                message: format!(
                    "allow({}) suppresses nothing on its target line — remove the \
                     stale directive",
                    d.rules.join(", ")
                ),
                snippet: snippet(d.line),
            });
        }
    }
    let sort_key = |f: &Finding| (f.line, f.col, f.rule, f.message.clone());
    kept.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    report.findings = kept;

    let mut adv: Vec<Finding> = advisories
        .into_iter()
        .chain(sem_advisories.into_iter().map(fill))
        .collect();
    adv.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    adv.dedup();
    report.advisories = adv;
    report
}

/// Marks every token covered by a `#[cfg(test)]`-gated item (plus the
/// attribute itself). Rules do not apply inside test code: tests may use
/// casts, panics, and ad-hoc errors freely.
pub(crate) fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !matches!(tokens[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let is = |j: usize, kind: TokKind, text: &str| {
        code.get(j)
            .map(|&ti| tokens[ti].kind == kind && tokens[ti].text == text)
            .unwrap_or(false)
    };
    let mut j = 0usize;
    while j < code.len() {
        // Match `# [ cfg ( test ) ]`.
        let hit = is(j, TokKind::Punct, "#")
            && is(j + 1, TokKind::Punct, "[")
            && is(j + 2, TokKind::Ident, "cfg")
            && is(j + 3, TokKind::Punct, "(")
            && is(j + 4, TokKind::Ident, "test")
            && is(j + 5, TokKind::Punct, ")")
            && is(j + 6, TokKind::Punct, "]");
        if !hit {
            j += 1;
            continue;
        }
        let start = code[j];
        let mut k = j + 7;
        // Skip any further attributes on the same item.
        while is(k, TokKind::Punct, "#") && is(k + 1, TokKind::Punct, "[") {
            let mut depth = 0usize;
            k += 1;
            while k < code.len() {
                let t = &tokens[code[k]];
                if t.kind == TokKind::Punct {
                    if t.text == "[" {
                        depth += 1;
                    } else if t.text == "]" {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                }
                k += 1;
            }
        }
        // The item body: ends at the first top-level `;`, or spans the
        // balanced `{ … }` block if one opens first.
        let mut depth = 0i64;
        let mut end = code.len().saturating_sub(1);
        while k < code.len() {
            let t = &tokens[code[k]];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        end = k;
                        break;
                    }
                    "{" if depth == 0 => {
                        let mut brace = 0i64;
                        while k < code.len() {
                            let b = &tokens[code[k]];
                            if b.kind == TokKind::Punct {
                                if b.text == "{" {
                                    brace += 1;
                                } else if b.text == "}" {
                                    brace -= 1;
                                    if brace == 0 {
                                        break;
                                    }
                                }
                            }
                            k += 1;
                        }
                        end = k.min(code.len() - 1);
                        break;
                    }
                    _ => {}
                }
            }
            end = k;
            k += 1;
        }
        let end_ti = code.get(end).copied().unwrap_or(tokens.len() - 1);
        for m in mask.iter_mut().take(end_ti + 1).skip(start) {
            *m = true;
        }
        j = end + 1;
    }
    mask
}

/// Extracts allow directives from comments; malformed ones become
/// `bad-directive` findings immediately.
fn collect_directives(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    raw: &mut Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
) -> Vec<Directive> {
    let _ = crate_name;
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if in_test[i] || tok.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments (`///`, `//!`) never carry directives — they may
        // legitimately *describe* the directive grammar.
        if tok.text.starts_with('/') || tok.text.starts_with('!') {
            continue;
        }
        let body = tok.text.trim_start();
        if !body.starts_with("qfc-lint") {
            continue;
        }
        // `// qfc-lint: hot` markers are region openers, not allow
        // directives; they are consumed by `collect_hot_regions`.
        if is_hot_marker(body) {
            continue;
        }
        match parse_directive(body) {
            Ok(rules) => {
                // Trailing directive (code earlier on the same line) covers
                // its own line; a standalone comment covers the next code line.
                let trailing = tokens[..i].iter().any(|t| {
                    t.line == tok.line
                        && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                });
                let target_line = if trailing {
                    tok.line
                } else {
                    tokens[i + 1..]
                        .iter()
                        .find(|t| {
                            !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                                && t.line > tok.line
                        })
                        .map(|t| t.line)
                        .unwrap_or(0)
                };
                out.push(Directive {
                    rules,
                    line: tok.line,
                    target_line,
                    used: false,
                });
            }
            Err(why) => raw.push(Finding {
                rule: "bad-directive",
                file: rel_path.to_string(),
                line: tok.line,
                col: tok.col,
                message: why,
                snippet: snippet(tok.line),
            }),
        }
    }
    out
}

/// `true` when a comment body (starting at `qfc-lint`) is the hot-region
/// marker `qfc-lint: hot`.
fn is_hot_marker(body: &str) -> bool {
    body.strip_prefix("qfc-lint")
        .and_then(|r| r.trim_start().strip_prefix(':'))
        .map(|r| r.trim() == "hot")
        .unwrap_or(false)
}

/// Marks every token inside a `// qfc-lint: hot` region: from the first
/// code token after the marker through the matching `}` of the first
/// `{` that follows. A marker with no block after it is a
/// `bad-directive` finding.
fn hot_region_mask(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    raw: &mut Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    for (i, tok) in tokens.iter().enumerate() {
        if in_test[i]
            || tok.kind != TokKind::LineComment
            || tok.text.starts_with('/')
            || tok.text.starts_with('!')
            || !is_hot_marker(tok.text.trim_start())
        {
            continue;
        }
        // Find the opening brace of the marked block, then span it.
        let mut start: Option<usize> = None;
        let mut open: Option<usize> = None;
        for (k, t) in tokens.iter().enumerate().skip(i + 1) {
            if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            start.get_or_insert(k);
            if t.kind == TokKind::Punct && t.text == "{" {
                open = Some(k);
                break;
            }
        }
        let Some(open) = open else {
            raw.push(Finding {
                rule: "bad-directive",
                file: rel_path.to_string(),
                line: tok.line,
                col: tok.col,
                message: "`qfc-lint: hot` marker must precede a block".to_string(),
                snippet: snippet(tok.line),
            });
            continue;
        };
        let mut depth = 0i64;
        let mut end = tokens.len() - 1;
        for (k, t) in tokens.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    depth += 1;
                } else if t.text == "}" {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
            }
        }
        let first = start.unwrap_or(open);
        for m in mask.iter_mut().take(end + 1).skip(first) {
            *m = true;
        }
    }
    mask
}

/// Parses the text of a directive starting at `qfc-lint`. Grammar:
///
/// ```text
/// qfc-lint: allow(<rule>[, <rule>]*) — <non-empty justification>
/// ```
///
/// The separator before the justification may be `—`, `–`, `-`, or `:`.
fn parse_directive(body: &str) -> Result<Vec<String>, String> {
    let rest = body
        .strip_prefix("qfc-lint")
        .and_then(|r| r.trim_start().strip_prefix(':'))
        .ok_or_else(|| "directive must start with `qfc-lint:`".to_string())?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow").ok_or_else(|| {
        "directive must be `qfc-lint: allow(<rule>) — <justification>`".to_string()
    })?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed rule list in allow directive".to_string())?;
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        match rule_by_name(name) {
            Some(r) if r.allowable => rules.push(name.to_string()),
            Some(_) => return Err(format!("rule `{name}` cannot be allow-suppressed")),
            None => return Err(format!("unknown rule `{name}` in allow directive")),
        }
    }
    if rules.is_empty() {
        return Err("allow directive names no rules".to_string());
    }
    let just = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':', ' '])
        .trim();
    if just.is_empty() {
        return Err("allow directive requires a justification after the rule list".to_string());
    }
    Ok(rules)
}

/// `error-taxonomy`: starting from `pub` at code index `j`, decide
/// whether this is a `pub fn` whose return type mentions `Result` without
/// `QfcError`/`QfcResult`. Returns the fn-name token and a message.
fn check_error_taxonomy<'t>(
    tokens: &'t [Token],
    code: &[usize],
    j: usize,
) -> Option<(&'t Token, String)> {
    let tok = |k: usize| code.get(k).map(|&ti| &tokens[ti]);
    let mut k = j + 1;
    // `pub(crate)` / `pub(super)` are not public API.
    if tok(k).map(|t| t.kind == TokKind::Punct && t.text == "(") == Some(true) {
        return None;
    }
    // Skip qualifiers: `const`, `async`, `unsafe`, `extern "C"`.
    while let Some(t) = tok(k) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "const" | "async" | "unsafe" | "extern") | (TokKind::StrLit, _) => {
                k += 1
            }
            _ => break,
        }
    }
    if tok(k).map(|t| t.kind == TokKind::Ident && t.text == "fn") != Some(true) {
        return None;
    }
    k += 1;
    let name_tok = tok(k)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let fn_name = name_tok.text.clone();
    k += 1;
    // Generics: consume a balanced `<…>` group, treating `->` arrows as
    // atomic so the `>` does not unbalance the angle count.
    if tok(k).map(|t| t.kind == TokKind::Punct && t.text == "<") == Some(true) {
        let mut angle = 0i64;
        while let Some(t) = tok(k) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    "-" if tok(k + 1).map(|n| n.text == ">") == Some(true) => k += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
    }
    // Parameter list.
    if tok(k).map(|t| t.kind == TokKind::Punct && t.text == "(") != Some(true) {
        return None;
    }
    let mut paren = 0i64;
    while let Some(t) = tok(k) {
        if t.kind == TokKind::Punct {
            if t.text == "(" {
                paren += 1;
            } else if t.text == ")" {
                paren -= 1;
                if paren == 0 {
                    k += 1;
                    break;
                }
            }
        }
        k += 1;
    }
    // Return type, if any.
    if !(tok(k).map(|t| t.text == "-") == Some(true)
        && tok(k + 1).map(|t| t.text == ">") == Some(true))
    {
        return None;
    }
    k += 2;
    let mut depth = 0i64;
    let mut ret_idents: Vec<String> = Vec::new();
    while let Some(t) = tok(k) {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" => depth -= 1,
                "-" if tok(k + 1).map(|n| n.text == ">") == Some(true) => k += 1,
                ">" => depth -= 1,
                "{" | ";" if depth <= 0 => break,
                _ => {}
            },
            TokKind::Ident => {
                if t.text == "where" && depth <= 0 {
                    break;
                }
                ret_idents.push(t.text.clone());
            }
            _ => {}
        }
        k += 1;
    }
    let has = |n: &str| ret_idents.iter().any(|i| i == n);
    if has("Result") && !has("QfcResult") && !has("QfcError") {
        Some((
            name_tok,
            format!(
                "public fallible fn `{fn_name}` returns a non-QfcError Result — \
                 the workspace error taxonomy requires QfcError/QfcResult"
            ),
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<(&'static str, u32)> {
        lint_source("qfc-core", "test.rs", src)
            .findings
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn cast_in_test_module_is_ignored() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(n: usize) -> f64 { n as f64 }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn trailing_and_standalone_directives_cover_the_right_line() {
        let src = "\
fn f(n: usize) -> f64 {
    // qfc-lint: allow(lossy-cast) — exact below 2^53
    n as f64
}
fn g(n: usize) -> f64 {
    n as f64 // qfc-lint: allow(lossy-cast) — exact below 2^53
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unjustified_directive_is_a_finding() {
        let src = "// qfc-lint: allow(lossy-cast)\nfn f(n: usize) -> f64 { n as f64 }\n";
        let got = run(src);
        assert!(got.contains(&("bad-directive", 1)), "{got:?}");
        // The malformed directive suppresses nothing.
        assert!(got.contains(&("lossy-cast", 2)), "{got:?}");
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// qfc-lint: allow(determinism) — nothing here\nlet x = 1;\n";
        assert_eq!(run(src), vec![("unused-allow", 1)]);
    }

    #[test]
    fn error_taxonomy_flags_foreign_results_only() {
        let src = "\
pub fn bad(x: u8) -> Result<u8, String> { Ok(x) }
pub fn good(x: u8) -> QfcResult<u8> { Ok(x) }
pub fn also_good(x: u8) -> Result<u8, QfcError> { Ok(x) }
pub(crate) fn internal(x: u8) -> Result<u8, String> { Ok(x) }
fn private(x: u8) -> Result<u8, String> { Ok(x) }
pub fn infallible(x: u8) -> u8 { x }
pub fn generic<F: Fn(f64) -> f64>(f: F) -> Result<f64, QfcError> { Ok(f(0.0)) }
";
        assert_eq!(run(src), vec![("error-taxonomy", 1)]);
    }

    #[test]
    fn index_audit_counts_only_index_expressions() {
        let r = lint_source(
            "qfc-core",
            "t.rs",
            "fn f(xs: &[f64]) -> f64 { let a = [0; 4]; xs[0] + a[1] }\n",
        );
        assert_eq!(r.index_audit, 2);
    }

    #[test]
    fn determinism_fires_in_use_position_only() {
        // Imports, field types, and return types are quiet; the call is
        // the finding.
        let src = "\
use std::time::Instant;
struct S { started: Instant }
fn now() -> Instant { Instant::now() }
fn m() { let h = HashMap::new(); let _ = h; }
";
        let got = run(src);
        assert_eq!(got, vec![("determinism", 3), ("determinism", 4)], "{got:?}");
    }

    #[test]
    fn panic_reachability_requires_a_public_path() {
        // A panic in a private fn that nothing public reaches is fine.
        let src = "fn helper() { panic!(\"boom\") }\n";
        assert!(run(src).is_empty());
        // The same panic reachable from a pub fn is a finding at the site.
        let src = "pub fn run() { helper() }\nfn helper() { panic!(\"boom\") }\n";
        assert_eq!(run(src), vec![("panic-reachability", 2)]);
        // Direct panic in a pub fn is a finding.
        let src = "pub fn f() { panic!(\"boom\") }\n";
        assert_eq!(run(src), vec![("panic-reachability", 1)]);
    }

    #[test]
    fn fn_level_allow_excuses_the_subtree_and_registers_as_used() {
        let src = "\
// qfc-lint: allow(panic-reachability) — validated legacy wrapper, panics on contract violation
pub fn run() { helper() }
fn helper() { other.unwrap() }
";
        let r = lint_source("qfc-core", "t.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!((r.allows_total, r.allows_used), (1, 1));
    }

    #[test]
    fn par_merge_order_flags_captured_accumulators() {
        let src = "\
fn f(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    par_map(xs, |x| { total += x; 0.0 });
    total
}
";
        assert_eq!(run(src), vec![("par-merge-order", 3)]);
        // A closure-local accumulator is fine.
        let src = "\
fn f(xs: &[f64]) {
    par_map(xs, |x| { let mut acc = 0.0; acc += x; acc });
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn rng_lane_flow_catches_laundered_seeds() {
        let src = "\
fn helper(x: u64, seed: u64) -> u64 {
    let mut rng = rng_from_seed(seed);
    x
}
pub fn sweep(xs: &[u64], seed: u64) {
    par_map(xs, |x| helper(*x, seed));
}
";
        let got = run(src);
        assert!(
            got.contains(&("rng-lane-flow", 6)),
            "expected a finding at the par_map call site: {got:?}"
        );
        // Splitting at the boundary is clean.
        let src = "\
fn helper(x: u64, seed: u64) -> u64 {
    let mut rng = rng_from_seed(seed);
    x
}
pub fn sweep(xs: &[u64], seed: u64) {
    par_map(xs, |x| helper(*x, split_seed(seed, *x)));
}
";
        let got = run(src);
        assert!(
            !got.iter().any(|(r, _)| *r == "rng-lane-flow"),
            "split_seed lane must be clean: {got:?}"
        );
    }
}
