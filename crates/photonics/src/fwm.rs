//! Four-wave mixing in the microring: the pair-generation engine.
//!
//! Spontaneous FWM (SFWM) annihilates two pump photons and creates a
//! signal/idler pair on resonances symmetric about the pump. On resonance
//! the process is parametrized by the single-pass parametric gain of the
//! *circulating* pump, `ξ = γ·P_circ·L` — the two-mode squeeze amplitude
//! per cavity mode. The generated flux per channel pair is `|ξ|²·δν`
//! (pairs per second within one loaded linewidth), modulated by the
//! spectral envelope set by the triple-resonance energy mismatch of the
//! dispersion-shifted mode grid.
//!
//! Type-II SFWM (§III) uses one TE and one TM pump photon and emits a
//! cross-polarized pair; its resonance bookkeeping and the suppression of
//! the competing *stimulated* process by the TE/TM grid offset are
//! implemented here.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::special::lorentzian;

use crate::ring::Microring;
use crate::units::{Frequency, Power};
use crate::waveguide::Polarization;

/// Circulating pump power inside the ring when `input` is on resonance.
pub fn circulating_power(ring: &Microring, input: Power) -> Power {
    input * ring.field_enhancement_power()
}

/// Single-pass parametric gain of the circulating pump,
/// `ξ = γ·P_circ·L` (dimensionless).
///
/// This is the two-mode squeeze amplitude per cavity mode in the
/// low-gain regime and the round-trip gain that must beat the round-trip
/// loss at the OPO threshold.
pub fn parametric_gain(ring: &Microring, input: Power) -> f64 {
    let gamma = ring
        .waveguide()
        .nonlinear_parameter(ring.resonance(Polarization::Te, 0).wavelength());
    gamma * circulating_power(ring, input).w() * ring.circumference()
}

/// Spectral envelope (0‥1) of pair generation on channel pair `m`,
/// from the triple-resonance energy mismatch `ν_{+m} + ν_{−m} − 2ν_0 =
/// m²·dFSR/dm` weighed against the loaded linewidth.
pub fn spectral_envelope(ring: &Microring, pol: Polarization, m: u32) -> f64 {
    let mismatch = ring.resonance(pol, cast::u32_to_i32(m)).hz()
        + ring.resonance(pol, -cast::u32_to_i32(m)).hz()
        - 2.0 * ring.resonance(pol, 0).hz();
    lorentzian(mismatch, 0.0, ring.linewidth().hz())
}

/// Generated pair flux (pairs/s) on channel pair `m` for a CW pump of
/// on-chip power `input`, degenerate type-0 SFWM on one polarization.
///
/// `R = |ξ|²·δν·envelope(m)` — at the paper's 15 mW this is O(100 Hz)
/// per channel before collection losses, consistent with the detected
/// rates of §II.
///
/// # Panics
///
/// Panics if `m == 0` (the pump mode itself cannot be a pair channel).
pub fn pair_rate_cw(ring: &Microring, pol: Polarization, input: Power, m: u32) -> f64 {
    assert!(m > 0, "pair channel must differ from the pump mode");
    let xi = parametric_gain(ring, input);
    xi * xi * ring.linewidth().hz() * spectral_envelope(ring, pol, m)
}

/// Mean photon-pair number per pulse on channel pair `m`, for a pulsed
/// pump whose bandwidth is matched to the ring resonance (the §IV–V
/// configuration: the double pulses are filtered to a single resonance).
///
/// In the resonance-matched regime the pulse builds up the same
/// enhancement as CW at its peak power and interacts for one cavity
/// lifetime, giving `μ = ξ_peak² · envelope(m)`.
pub fn mean_pairs_per_pulse(ring: &Microring, pol: Polarization, peak: Power, m: u32) -> f64 {
    assert!(m > 0, "pair channel must differ from the pump mode");
    let xi = parametric_gain(ring, peak);
    xi * xi * spectral_envelope(ring, pol, m)
}

/// Signal/idler resonance frequencies of the type-II process on channel
/// `m`: signal on the TE family at `+m`, idler on the TM family at `−m`.
pub fn type2_signal_idler(ring: &Microring, m: u32) -> (Frequency, Frequency) {
    (
        ring.resonance(Polarization::Te, cast::u32_to_i32(m)),
        ring.resonance(Polarization::Tm, -cast::u32_to_i32(m)),
    )
}

/// Energy mismatch of the type-II process on channel `m`:
/// `ν_s^TE + ν_i^TM − ν_p^TE − ν_p^TM`.
///
/// With matched TE/TM free spectral ranges this stays well inside a
/// linewidth for the inner channels — the §III energy-conservation
/// requirement.
pub fn type2_energy_mismatch(ring: &Microring, m: u32) -> Frequency {
    let (fs, fi) = type2_signal_idler(ring, m);
    let pte = ring.resonance(Polarization::Te, 0);
    let ptm = ring.resonance(Polarization::Tm, 0);
    Frequency::from_hz(fs.hz() + fi.hz() - pte.hz() - ptm.hz())
}

/// Generated cross-polarized pair flux (pairs/s) on channel `m` for the
/// bichromatic orthogonal pump of §III.
///
/// `R = (γ·L)²·P_TE·P_TM·FE⁴·δν·envelope`, i.e. the two degenerate pump
/// photons of type-0 SFWM are replaced by one TE and one TM photon.
pub fn type2_pair_rate(ring: &Microring, p_te: Power, p_tm: Power, m: u32) -> f64 {
    assert!(m > 0, "pair channel must differ from the pump mode");
    let lambda = ring.resonance(Polarization::Te, 0).wavelength();
    let gamma = ring.waveguide().nonlinear_parameter(lambda);
    let fe = ring.field_enhancement_power();
    let xi2 = (gamma * ring.circumference()).powi(2)
        * (fe * p_te.w())
        * (fe * p_tm.w());
    let mismatch = type2_energy_mismatch(ring, m).hz();
    xi2 * ring.linewidth().hz() * lorentzian(mismatch, 0.0, ring.linewidth().hz())
}

/// Where the *stimulated* (classical) FWM product of the two pumps would
/// appear: `2ν_p^TE − ν_p^TM` (and symmetrically `2ν_p^TM − ν_p^TE`).
pub fn stimulated_fwm_frequencies(ring: &Microring) -> (Frequency, Frequency) {
    let pte = ring.resonance(Polarization::Te, 0).hz();
    let ptm = ring.resonance(Polarization::Tm, 0).hz();
    (
        Frequency::from_hz(2.0 * pte - ptm),
        Frequency::from_hz(2.0 * ptm - pte),
    )
}

/// Suppression of the stimulated FWM process by the TE/TM grid offset:
/// the best (largest) cavity power response available to either
/// stimulated product over both mode families. `1` means fully resonant
/// (no suppression); the §III design pushes this far below 1.
pub fn stimulated_suppression(ring: &Microring) -> f64 {
    let (f1, f2) = stimulated_fwm_frequencies(ring);
    let mut best: f64 = 0.0;
    for f in [f1, f2] {
        for pol in [Polarization::Te, Polarization::Tm] {
            let (m, _) = ring.nearest_resonance(pol, f);
            best = best.max(ring.power_response(pol, m, f));
        }
    }
    best
}

/// Summary of a channel's SFWM figures at a given pump power, convenient
/// for reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelSfwm {
    /// Channel-pair index `m`.
    pub m: u32,
    /// Generated pair flux, pairs/s.
    pub pair_rate_hz: f64,
    /// Spectral envelope factor (0‥1).
    pub envelope: f64,
}

/// Computes SFWM figures for channel pairs `1..=max_m` at a CW pump power.
pub fn comb_sfwm(ring: &Microring, pol: Polarization, input: Power, max_m: u32) -> Vec<ChannelSfwm> {
    (1..=max_m)
        .map(|m| ChannelSfwm {
            m,
            pair_rate_hz: pair_rate_cw(ring, pol, input, m),
            envelope: spectral_envelope(ring, pol, m),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{Microring, MicroringBuilder};
    use crate::waveguide::Waveguide;

    fn ring() -> Microring {
        Microring::paper_device()
    }

    fn offset_ring(offset_ghz: f64) -> Microring {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.radius_for_fsr(Frequency::from_ghz(200.0))
            .te_tm_offset(Frequency::from_ghz(offset_ghz));
        b.coupling_for_linewidth(Frequency::from_hz(110e6));
        b.build()
    }

    #[test]
    fn circulating_power_enhanced() {
        let p = circulating_power(&ring(), Power::from_mw(15.0));
        // FE² ≈ 500–600 → several watts circulating.
        assert!(p.w() > 4.0 && p.w() < 12.0, "P_circ = {p}");
    }

    #[test]
    fn parametric_gain_small_below_threshold() {
        let xi = parametric_gain(&ring(), Power::from_mw(15.0));
        assert!(xi > 1e-4 && xi < 1e-2, "ξ = {xi}");
    }

    #[test]
    fn pair_rate_scales_quadratically_with_power() {
        let r = ring();
        let r1 = pair_rate_cw(&r, Polarization::Te, Power::from_mw(5.0), 1);
        let r2 = pair_rate_cw(&r, Polarization::Te, Power::from_mw(10.0), 1);
        assert!((r2 / r1 - 4.0).abs() < 1e-9, "ratio {}", r2 / r1);
    }

    #[test]
    fn pair_rate_at_paper_power_order_of_magnitude() {
        // O(100 Hz) generated per inner channel at 15 mW on-chip.
        let rate = pair_rate_cw(&ring(), Polarization::Te, Power::from_mw(15.0), 1);
        assert!(rate > 30.0 && rate < 3000.0, "rate = {rate}");
    }

    #[test]
    fn envelope_decreases_with_channel_index() {
        let r = ring();
        let e1 = spectral_envelope(&r, Polarization::Te, 1);
        let e10 = spectral_envelope(&r, Polarization::Te, 10);
        let e40 = spectral_envelope(&r, Polarization::Te, 40);
        assert!(e1 > e10 && e10 > e40, "{e1} {e10} {e40}");
        assert!(e1 > 0.99, "inner channel nearly perfectly matched");
    }

    #[test]
    #[should_panic(expected = "pump mode")]
    fn pair_rate_rejects_m0() {
        let _ = pair_rate_cw(&ring(), Polarization::Te, Power::from_mw(1.0), 0);
    }

    #[test]
    fn mean_pairs_per_pulse_low_gain() {
        let mu = mean_pairs_per_pulse(&ring(), Polarization::Te, Power::from_mw(2.0), 1);
        assert!(mu > 0.0 && mu < 0.1, "μ = {mu}");
    }

    #[test]
    fn type2_energy_mismatch_small_for_inner_channels() {
        let r = offset_ring(1.5);
        for m in 1..=3 {
            let mism = type2_energy_mismatch(&r, m).hz().abs();
            assert!(
                mism < 3.0 * r.linewidth().hz(),
                "m={m} mismatch {mism}"
            );
        }
    }

    #[test]
    fn type2_pair_rate_bilinear_in_pump_powers() {
        let r = offset_ring(1.5);
        let base = type2_pair_rate(&r, Power::from_mw(1.0), Power::from_mw(1.0), 1);
        let double_te = type2_pair_rate(&r, Power::from_mw(2.0), Power::from_mw(1.0), 1);
        let double_both = type2_pair_rate(&r, Power::from_mw(2.0), Power::from_mw(2.0), 1);
        assert!((double_te / base - 2.0).abs() < 0.05);
        assert!((double_both / base - 4.0).abs() < 0.1);
    }

    #[test]
    fn stimulated_suppression_improves_with_offset() {
        // No offset: the stimulated product is resonant (no suppression).
        let aligned = stimulated_suppression(&offset_ring(0.0));
        assert!(aligned > 0.9, "aligned response {aligned}");
        // Half-FSR-scale offset: product falls between resonances.
        let offset = stimulated_suppression(&offset_ring(47.0));
        assert!(offset < 1e-4, "suppressed response {offset}");
        assert!(offset < aligned);
    }

    #[test]
    fn stimulated_frequencies_bracket_the_pumps() {
        let r = offset_ring(1.5);
        let (f1, f2) = stimulated_fwm_frequencies(&r);
        let pte = r.resonance(Polarization::Te, 0);
        let ptm = r.resonance(Polarization::Tm, 0);
        // 2ν_TE − ν_TM mirrors ν_TM about ν_TE.
        assert!(((f1.hz() - pte.hz()) + (ptm.hz() - pte.hz())).abs() < 1.0);
        assert!(((f2.hz() - ptm.hz()) + (pte.hz() - ptm.hz())).abs() < 1.0);
    }

    #[test]
    fn comb_sfwm_covers_requested_channels() {
        let figures = comb_sfwm(&ring(), Polarization::Te, Power::from_mw(15.0), 5);
        assert_eq!(figures.len(), 5);
        assert!(figures.windows(2).all(|w| w[0].pair_rate_hz >= w[1].pair_rate_hz));
    }
}
