//! Paper-configuration assertions: the headline numbers at the full
//! published operating points. These are heavier than the `fast_demo`
//! integration tests; the heaviest are `#[ignore]`d by default — run
//! them with `cargo test --release -- --ignored`.

use qfc::core::crosspol::{run_crosspol_experiment, run_power_sweep, CrossPolConfig};
use qfc::core::heralded::{
    run_heralded_experiment, run_stability_experiment, HeraldedConfig, StabilityConfig,
};
use qfc::core::multiphoton::{run_multiphoton_experiment, MultiPhotonConfig};
use qfc::core::purity::{run_purity_analysis, PurityConfig};
use qfc::core::source::QfcSource;
use qfc::core::timebin::{run_timebin_experiment, TimeBinConfig};

const SEED: u64 = 20170327;

#[test]
fn f5_opo_threshold_and_exponents() {
    let source = QfcSource::paper_device_type2();
    let sweep = run_power_sweep(&source, 16);
    assert!((sweep.threshold_w * 1e3 - 14.0).abs() < 3.0, "P_th {}", sweep.threshold_w);
    assert!((sweep.below_exponent - 2.0).abs() < 0.05);
    assert!((sweep.above_exponent - 1.0).abs() < 0.05);
}

#[test]
fn f3_stability_under_5_percent() {
    let source = QfcSource::paper_device();
    let report = run_stability_experiment(&source, &StabilityConfig::paper(), SEED);
    assert!(
        report.relative_fluctuation < 0.05,
        "fluctuation {}",
        report.relative_fluctuation
    );
}

#[test]
fn purity_and_memory_claims() {
    let source = QfcSource::paper_device_timebin();
    let report = run_purity_analysis(&source, &PurityConfig::paper());
    assert!(report.heralded_purity > 0.9);
    assert!(report.heralded_g2 < 0.2);
    assert!(report.memory_acceptance > 0.4);
}

#[test]
#[ignore = "full §II Monte-Carlo (runs in seconds under --release)"]
fn t1_f1_f2_full_heralded_run() {
    let source = QfcSource::paper_device();
    let report = run_heralded_experiment(&source, &HeraldedConfig::paper(), SEED);
    let (car_lo, car_hi) = report.car_range();
    assert!(car_lo > 5.0 && car_hi < 60.0, "CAR range {car_lo}..{car_hi}");
    let (r_lo, r_hi) = report.rate_range();
    assert!(r_lo > 7.0 && r_hi < 60.0, "rate range {r_lo}..{r_hi}");
    assert!(report.matrix_contrast() > 5.0);
    assert!((report.linewidth.linewidth_hz - 110e6).abs() / 110e6 < 0.15);
}

#[test]
#[ignore = "full §III Monte-Carlo (runs in seconds under --release)"]
fn f4_full_crosspol_run() {
    let source = QfcSource::paper_device_type2();
    let report = run_crosspol_experiment(&source, &CrossPolConfig::paper(), SEED);
    assert!(report.car > 5.0 && report.car < 25.0, "CAR {}", report.car);
    assert!(report.stimulated_response < 1e-4);
}

#[test]
#[ignore = "full §IV run (runs in seconds under --release)"]
fn f7_t2_full_timebin_run() {
    let source = QfcSource::paper_device_timebin();
    let report = run_timebin_experiment(&source, &TimeBinConfig::paper(), SEED);
    assert!((report.mean_visibility() - 0.83).abs() < 0.06);
    assert_eq!(report.channels_violating(), 5);
}

#[test]
#[ignore = "full §V run incl. 4-qubit MLE (runs in ~a minute under --release)"]
fn f8_t4_full_multiphoton_run() {
    let source = QfcSource::paper_device_timebin();
    let report = run_multiphoton_experiment(&source, &MultiPhotonConfig::paper(), SEED);
    assert!((report.fringe.visibility - 0.89).abs() < 0.08, "V4 {}", report.fringe.visibility);
    assert!(
        (report.tomography.fidelity - 0.64).abs() < 0.08,
        "F4 {}",
        report.tomography.fidelity
    );
    for b in &report.bell {
        assert!(b.fidelity > 0.85);
        assert!(b.concurrence > 0.7);
    }
}
