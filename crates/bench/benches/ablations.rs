//! Ablation benches for the design choices called out in DESIGN.md §6:
//! Jacobi pivot strategies, MLE vs linear-inversion tomography, and the
//! coincidence-window choice behind every CAR number.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::hermitian::{eigh_with, JacobiStrategy};
use qfc_mathkit::rng::{normal, rng_from_seed};
use qfc_quantum::bell::werner_state;
use qfc_tomography::counts::simulate_counts;
use qfc_tomography::reconstruct::{linear_reconstruction, mle_reconstruction, MleOptions};
use qfc_tomography::settings::all_settings;
use qfc_timetag::coincidence::measure_car;
use qfc_timetag::events::TagStream;

fn random_hermitian(n: usize, seed: u64) -> CMatrix {
    let mut rng = rng_from_seed(seed);
    let mut m = CMatrix::zeros(n, n);
    for i in 0..n {
        m[(i, i)] = Complex64::real(normal(&mut rng, 0.0, 1.0));
        for j in (i + 1)..n {
            let z = Complex64::new(normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0));
            m[(i, j)] = z;
            m[(j, i)] = z.conj();
        }
    }
    m
}

/// Cyclic vs threshold Jacobi sweeps on the 16×16 matrices of four-qubit
/// tomography.
fn ablation_eigen(c: &mut Criterion) {
    let m = random_hermitian(16, 7);
    let mut g = c.benchmark_group("ablation_eigen");
    g.bench_function("cyclic", |b| {
        b.iter(|| eigh_with(black_box(&m), JacobiStrategy::Cyclic))
    });
    g.bench_function("threshold", |b| {
        b.iter(|| eigh_with(black_box(&m), JacobiStrategy::Threshold))
    });
    g.finish();
}

/// MLE (paper pipeline) vs linear inversion at low counts.
fn ablation_tomography(c: &mut Criterion) {
    let truth = werner_state(0.83, 0.0);
    let settings = all_settings(2);
    let mut rng = rng_from_seed(8);
    let data = simulate_counts(&mut rng, &truth, &settings, 200);
    let mut g = c.benchmark_group("ablation_tomography");
    g.bench_function("linear_inversion", |b| {
        b.iter(|| linear_reconstruction(black_box(&data)))
    });
    g.bench_function("mle_rho_r", |b| {
        b.iter(|| mle_reconstruction(black_box(&data), &MleOptions::default()))
    });
    g.finish();
}

/// CAR extraction cost vs coincidence-window width.
fn ablation_car_window(c: &mut Criterion) {
    use rand::Rng;
    let mut rng = rng_from_seed(9);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for _ in 0..20_000 {
        let t = (rng.gen::<f64>() * 1e13) as i64;
        a.push(t);
        b.push(t + (rng.gen::<f64>() * 2000.0) as i64 - 1000);
    }
    for _ in 0..20_000 {
        a.push((rng.gen::<f64>() * 1e13) as i64);
        b.push((rng.gen::<f64>() * 1e13) as i64);
    }
    let sa = TagStream::from_unsorted(a);
    let sb = TagStream::from_unsorted(b);
    let mut g = c.benchmark_group("ablation_car_window");
    for window in [500i64, 2000, 8000, 32_000] {
        g.bench_function(format!("window_{window}ps"), |bench| {
            bench.iter(|| measure_car(black_box(&sa), black_box(&sb), window, 200_000, 10))
        });
    }
    g.finish();
}

criterion_group!(benches, ablation_eigen, ablation_tomography, ablation_car_window);
criterion_main!(benches);
