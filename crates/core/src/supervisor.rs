//! Experiment supervision: turns scheduled faults into recovery actions.
//!
//! The supervisor owns the three degradation policies of the pipeline:
//!
//! * **pump re-lock** — each [`FaultKind::PumpLockLoss`] window costs its
//!   own outage plus an exponential-backoff re-acquisition sequence;
//! * **channel quarantine** — a multiplexed channel whose detectors are
//!   dead for too large a fraction of the run is dropped from the
//!   analysis instead of poisoning it;
//! * **estimator fallback** — a diverging MLE reconstruction falls back
//!   to linear inversion + physical projection.
//!
//! Everything here is deterministic in the run seed: re-lock attempt
//! draws come from the dedicated fault seed domain
//! ([`FAULT_SEED_DOMAIN`]), split per lock-loss event, so results are
//! identical at any thread count.
//!
//! [`FaultKind::PumpLockLoss`]: qfc_faults::FaultKind::PumpLockLoss

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_faults::{
    Arm, FaultSchedule, HealthReport, QfcError, QfcResult, FAULT_SEED_DOMAIN,
};
use qfc_mathkit::rng::{bernoulli, rng_from_seed, split_seed};
use qfc_tomography::counts::TomographyData;
use qfc_tomography::reconstruct::{
    try_linear_reconstruction, try_mle_reconstruction, MleOptions, MleResult,
};

/// The seed of fault-handling lane `lane` of a run seeded with `seed`.
///
/// All supervisor randomness (re-lock attempts, …) lives in the
/// [`FAULT_SEED_DOMAIN`] sub-tree of the run seed, so an empty fault
/// schedule leaves every physics RNG stream untouched and fault handling
/// itself is thread-count invariant.
pub fn fault_stream(seed: u64, lane: u64) -> u64 {
    split_seed(split_seed(seed, FAULT_SEED_DOMAIN), lane)
}

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorPolicy {
    /// Maximum pump re-lock attempts before the run is abandoned.
    pub max_relock_attempts: u32,
    /// Outage cost of the first re-lock attempt, s; attempt `k` costs
    /// `relock_base_s · 2^(k−1)` (exponential backoff).
    pub relock_base_s: f64,
    /// Per-attempt re-lock success probability.
    pub relock_success_prob: f64,
    /// A channel whose signal or idler detector is dead for at least this
    /// fraction of the run is quarantined.
    pub quarantine_dead_fraction: f64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            max_relock_attempts: 6,
            relock_base_s: 0.02,
            relock_success_prob: 0.7,
            quarantine_dead_fraction: 0.5,
        }
    }
}

/// One recovered pump-lock loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelockOutcome {
    /// When the lock was lost, s into the run.
    pub start_s: f64,
    /// Length of the scheduled lock-loss window, s.
    pub fault_duration_s: f64,
    /// Re-lock attempts needed.
    pub attempts: u32,
    /// Integration time spent backing off between attempts, s.
    pub backoff_s: f64,
}

impl RelockOutcome {
    /// Total integration time lost to this event, s.
    pub fn total_outage_s(&self) -> f64 {
        self.fault_duration_s + self.backoff_s
    }
}

/// Records every scheduled fault overlapping `[0, duration_s)` in the
/// health report (drivers call this once, up front).
pub fn record_schedule_faults(
    schedule: &FaultSchedule,
    duration_s: f64,
    health: &mut HealthReport,
) {
    for e in schedule.overlapping(0.0, duration_s) {
        health.record_fault(e.kind.label(), e.start_s, e.duration_s);
    }
}

/// Plans the recovery of every pump lock-loss window in the schedule:
/// each event draws re-lock attempts (success probability
/// [`SupervisorPolicy::relock_success_prob`] per attempt, exponential
/// backoff) from its own [`fault_stream`] lane, and the outages are
/// recorded in `health`.
///
/// # Errors
///
/// [`QfcError::LockReacquisitionFailed`] when any event exhausts
/// [`SupervisorPolicy::max_relock_attempts`].
pub fn plan_pump_relocks(
    schedule: &FaultSchedule,
    duration_s: f64,
    policy: &SupervisorPolicy,
    seed: u64,
    health: &mut HealthReport,
) -> QfcResult<Vec<RelockOutcome>> {
    let events = schedule.lock_loss_events(duration_s);
    let mut outcomes = Vec::with_capacity(events.len());
    for (k, e) in events.iter().enumerate() {
        // Lane 0 is reserved; lock-loss event k uses lane k + 1.
        let mut rng = rng_from_seed(fault_stream(seed, cast::usize_to_u64(k) + 1));
        let mut attempts = 0u32;
        let mut backoff_s = 0.0;
        loop {
            if attempts >= policy.max_relock_attempts {
                return Err(QfcError::LockReacquisitionFailed { attempts });
            }
            attempts += 1;
            backoff_s += policy.relock_base_s * f64::from(1u32 << (attempts - 1).min(20));
            if bernoulli(&mut rng, policy.relock_success_prob) {
                break;
            }
        }
        let outcome = RelockOutcome {
            start_s: e.start_s,
            fault_duration_s: e.overlap_s(0.0, duration_s),
            attempts,
            backoff_s,
        };
        health.record_relock(attempts, outcome.total_outage_s());
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// Live-time fraction of the run after the planned outages (clamped to a
/// small positive floor so rate normalizations stay finite).
pub fn live_fraction(outcomes: &[RelockOutcome], duration_s: f64) -> f64 {
    if duration_s <= 0.0 {
        return 1.0;
    }
    let lost: f64 = outcomes.iter().map(RelockOutcome::total_outage_s).sum();
    (1.0 - lost / duration_s).clamp(1e-3, 1.0)
}

/// Partitions channels `1..=channels` into survivors and quarantined:
/// a channel is quarantined when either arm's detector is dead for at
/// least [`SupervisorPolicy::quarantine_dead_fraction`] of the run.
///
/// # Errors
///
/// [`QfcError::ChannelsExhausted`] when no channel survives.
pub fn partition_channels(
    schedule: &FaultSchedule,
    channels: u32,
    duration_s: f64,
    policy: &SupervisorPolicy,
    context: &str,
    health: &mut HealthReport,
) -> QfcResult<Vec<u32>> {
    let mut survivors = Vec::with_capacity(cast::u32_to_usize(channels));
    for m in 1..=channels {
        let dead_sig = schedule.dead_fraction(m, Arm::Signal, 0.0, duration_s);
        let dead_idl = schedule.dead_fraction(m, Arm::Idler, 0.0, duration_s);
        let worst = dead_sig.max(dead_idl);
        if worst >= policy.quarantine_dead_fraction {
            let arm = if dead_sig >= dead_idl { "signal" } else { "idler" };
            health.record_quarantine(
                m,
                format!("{arm} detector dead for {:.0} % of the run", worst * 100.0),
            );
        } else {
            survivors.push(m);
        }
    }
    if survivors.is_empty() {
        return Err(QfcError::ChannelsExhausted {
            context: context.to_owned(),
        });
    }
    Ok(survivors)
}

/// An MLE run whose last RρR update is still at least this large (or
/// non-finite) after exhausting its iteration budget is diverging rather
/// than merely converging slowly: slow convergence leaves updates
/// orders of magnitude below this while still missing a tight tolerance,
/// and those reconstructions are perfectly usable.
pub const MLE_DIVERGENCE_UPDATE: f64 = 1e-4;

/// MLE reconstruction with the divergence fallback: when the RρR
/// iteration *diverges* (its final update is non-finite or still above
/// [`MLE_DIVERGENCE_UPDATE`] when the iteration budget runs out) or
/// errors out on degenerate data (all-dark counts, a trace-annihilating
/// or non-finite update), the supervisor swaps in linear inversion +
/// physical projection and records the fallback. A run that merely
/// misses a tight tolerance is returned as-is with `converged: false`.
///
/// # Errors
///
/// Propagates the linear-inversion error when the fallback itself cannot
/// produce a state (informationally incomplete or structurally invalid
/// data — those degeneracies defeat linear inversion too).
pub fn reconstruct_with_fallback(
    data: &TomographyData,
    options: &MleOptions,
    health: &mut HealthReport,
) -> QfcResult<MleResult> {
    let (iterations, final_update) = match try_mle_reconstruction(data, options) {
        Ok(mle) => {
            let settled = mle.converged
                || (mle.final_update.is_finite() && mle.final_update < MLE_DIVERGENCE_UPDATE);
            if settled {
                return Ok(mle);
            }
            (mle.iterations, mle.final_update)
        }
        // Degenerate data never reached a usable iterate; report zero
        // effective progress and let linear inversion decide whether the
        // data supports any reconstruction at all.
        Err(_) => (0, f64::INFINITY),
    };
    health.record_fallback("MLE", "linear inversion");
    let rho = try_linear_reconstruction(data)?;
    Ok(MleResult {
        rho,
        iterations,
        final_update,
        converged: false,
        accelerated_steps: 0,
    })
}

/// Drops clicks that exceed an active TDC saturation cap: within each
/// saturation window, only the earliest `cap · window` clicks survive.
/// Pure (no RNG), so it preserves determinism and is an exact no-op for
/// schedules without saturation events.
pub fn apply_tdc_saturation(
    stream: qfc_timetag::events::TagStream,
    schedule: &FaultSchedule,
) -> qfc_timetag::events::TagStream {
    let windows: Vec<(f64, f64, f64)> = schedule
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            qfc_faults::FaultKind::TdcSaturation { max_rate_hz } => {
                Some((e.start_s, e.end_s(), max_rate_hz))
            }
            _ => None,
        })
        .collect();
    if windows.is_empty() {
        return stream;
    }
    let mut kept = Vec::with_capacity(stream.len());
    let mut counts = vec![0usize; windows.len()];
    'clicks: for &t in stream.as_slice() {
        let t_s = cast::to_f64(t) * 1e-12;
        for (w, &(a, b, cap)) in windows.iter().enumerate() {
            if t_s >= a && t_s < b {
                let allowed = cast::f64_to_usize(((b - a) * cap.max(0.0)).floor());
                if counts[w] >= allowed {
                    continue 'clicks;
                }
                counts[w] += 1;
            }
        }
        kept.push(t);
    }
    qfc_timetag::events::TagStream::from_sorted(kept)
}

/// Runs `f` up to `max_attempts` times, recording a retry in `health`
/// for every failed attempt that is retried; returns the first success
/// or the last error.
pub fn with_retries<T>(
    stage: &str,
    max_attempts: u32,
    health: &mut HealthReport,
    mut f: impl FnMut(u32) -> QfcResult<T>,
) -> QfcResult<T> {
    let mut last: Option<QfcError> = None;
    for attempt in 0..max_attempts.max(1) {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt + 1 < max_attempts {
                    health.record_retry(stage);
                }
                last = Some(e);
            }
        }
    }
    Err(last.unwrap_or_else(|| {
        QfcError::invalid(format!("{stage}: retry loop made no attempts"))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_faults::{FaultEvent, FaultKind};

    fn lock_loss_schedule(n: usize) -> FaultSchedule {
        let mut s = FaultSchedule::empty();
        for k in 0..n {
            s = s.with(FaultEvent::new(
                1.0 + k as f64,
                0.2,
                FaultKind::PumpLockLoss,
            ));
        }
        s
    }

    #[test]
    fn relocks_are_deterministic_and_recorded() {
        let schedule = lock_loss_schedule(3);
        let policy = SupervisorPolicy::default();
        let mut h1 = HealthReport::pristine();
        let out1 = plan_pump_relocks(&schedule, 10.0, &policy, 99, &mut h1)
            .expect("relocks succeed");
        let mut h2 = HealthReport::pristine();
        let out2 = plan_pump_relocks(&schedule, 10.0, &policy, 99, &mut h2)
            .expect("relocks succeed");
        assert_eq!(out1, out2);
        assert_eq!(h1, h2);
        assert_eq!(out1.len(), 3);
        assert!(h1.outage_s > 0.0);
        assert_eq!(h1.recovery_actions.len(), 3);
        for o in &out1 {
            assert!(o.attempts >= 1 && o.attempts <= policy.max_relock_attempts);
            assert!(o.backoff_s >= policy.relock_base_s);
        }
    }

    #[test]
    fn impossible_relock_fails_with_taxonomy_error() {
        let schedule = lock_loss_schedule(1);
        let policy = SupervisorPolicy {
            relock_success_prob: 0.0,
            ..SupervisorPolicy::default()
        };
        let mut h = HealthReport::pristine();
        let err = plan_pump_relocks(&schedule, 10.0, &policy, 7, &mut h)
            .expect_err("cannot relock");
        assert!(matches!(err, QfcError::LockReacquisitionFailed { .. }));
        assert!(err.to_string().contains("reacquisition failed"));
    }

    /// Replays the supervisor's own draw protocol — one dedicated
    /// `fault_stream` lane per lock-loss event, one bernoulli per
    /// attempt — and demands `plan_pump_relocks` land on exactly the
    /// replayed attempt counts and the exact closed-form backoff ladder
    /// `Σ_{j=1..n} base·2^(j−1) = base·(2^n − 1)`, bit for bit.
    #[test]
    fn relock_backoff_follows_the_exact_deterministic_ladder() {
        let seed = 20177;
        let policy = SupervisorPolicy::default();
        let schedule = lock_loss_schedule(4);
        let mut health = HealthReport::pristine();
        let outcomes =
            plan_pump_relocks(&schedule, 10.0, &policy, seed, &mut health).expect("relocks");
        assert_eq!(outcomes.len(), 4);
        for (k, outcome) in outcomes.iter().enumerate() {
            // Independent replay of event k's dedicated lane (k + 1;
            // lane 0 is reserved).
            let mut rng = rng_from_seed(fault_stream(seed, cast::usize_to_u64(k) + 1));
            let mut expected_attempts = 0u32;
            while !bernoulli(&mut rng, policy.relock_success_prob) {
                expected_attempts += 1;
                assert!(expected_attempts < policy.max_relock_attempts, "replay diverged");
            }
            expected_attempts += 1;
            assert_eq!(outcome.attempts, expected_attempts, "event {k} attempts");
            let expected_backoff: f64 = (1..=expected_attempts)
                .map(|j| policy.relock_base_s * f64::from(1u32 << (j - 1)))
                .sum();
            assert_eq!(
                outcome.backoff_s.to_bits(),
                expected_backoff.to_bits(),
                "event {k}: backoff {} ≠ ladder {expected_backoff}",
                outcome.backoff_s
            );
            // Closed form of the same ladder.
            let closed = policy.relock_base_s
                * (f64::from(1u32 << expected_attempts) - 1.0);
            assert!((outcome.backoff_s - closed).abs() < 1e-15);
        }
        // Planning is a pure function of (schedule, seed): replanning
        // reproduces identical outcomes.
        let mut h2 = HealthReport::pristine();
        let again =
            plan_pump_relocks(&schedule, 10.0, &policy, seed, &mut h2).expect("relocks");
        assert_eq!(outcomes, again);
    }

    /// The fault-handling draws live in their own seed domain: no
    /// `fault_stream` lane may collide with a physics lane
    /// (`split_seed(seed, d)` for the small domain indices the drivers
    /// use), so planning relocks can never perturb a physics stream.
    #[test]
    fn fault_stream_lanes_are_disjoint_from_physics_lanes() {
        for seed in [0u64, 7, 20177, u64::MAX] {
            for lane in 0..16u64 {
                let fault_seed = fault_stream(seed, lane);
                for domain in 0..64u64 {
                    assert_ne!(
                        fault_seed,
                        split_seed(seed, domain),
                        "fault lane {lane} collides with physics domain {domain} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn live_fraction_accounts_for_outages() {
        let outcomes = [RelockOutcome {
            start_s: 1.0,
            fault_duration_s: 1.0,
            attempts: 1,
            backoff_s: 0.5,
        }];
        let f = live_fraction(&outcomes, 10.0);
        assert!((f - 0.85).abs() < 1e-12, "f = {f}");
        assert_eq!(live_fraction(&[], 10.0), 1.0);
    }

    #[test]
    fn quarantine_partitions_channels() {
        // Channel 2's idler dead for 80 % of a 10 s run.
        let schedule = FaultSchedule::empty().with(FaultEvent::new(
            1.0,
            8.0,
            FaultKind::DetectorDropout {
                channel: 2,
                arm: Arm::Idler,
            },
        ));
        let policy = SupervisorPolicy::default();
        let mut h = HealthReport::pristine();
        let survivors =
            partition_channels(&schedule, 3, 10.0, &policy, "test", &mut h)
                .expect("survivors remain");
        assert_eq!(survivors, vec![1, 3]);
        assert_eq!(h.quarantined_channels, vec![2]);
        assert!(h.is_degraded());
    }

    #[test]
    fn all_channels_dead_is_an_error() {
        let mut schedule = FaultSchedule::empty();
        for m in 1..=2 {
            schedule = schedule.with(FaultEvent::new(
                0.0,
                10.0,
                FaultKind::DetectorDropout {
                    channel: m,
                    arm: Arm::Signal,
                },
            ));
        }
        let mut h = HealthReport::pristine();
        let err = partition_channels(
            &schedule,
            2,
            10.0,
            &SupervisorPolicy::default(),
            "heralded",
            &mut h,
        )
        .expect_err("nothing survives");
        assert!(matches!(err, QfcError::ChannelsExhausted { .. }));
        assert!(err.to_string().contains("heralded"));
    }

    #[test]
    fn diverging_mle_falls_back_to_linear_inversion() {
        use qfc_quantum::bell::bell_phi;
        use qfc_quantum::density::DensityMatrix;
        use qfc_tomography::counts::simulate_counts_seeded;
        use qfc_tomography::settings::all_settings;

        let rho = DensityMatrix::from_pure(&bell_phi(0.0));
        let data =
            simulate_counts_seeded(&rho, &all_settings(2), 400, 11);
        // A one-iteration budget with an unreachable tolerance diverges.
        let opts = MleOptions {
            max_iterations: 1,
            tolerance: 1e-30,
            ..MleOptions::default()
        };
        let mut h = HealthReport::pristine();
        let res = reconstruct_with_fallback(&data, &opts, &mut h)
            .expect("fallback succeeds");
        assert!(!res.converged);
        assert!(h.is_degraded());
        assert!(h
            .recovery_actions
            .iter()
            .any(|a| matches!(a, qfc_faults::RecoveryAction::Fallback { .. })));
        // The fallback state is still a valid density matrix near the
        // target.
        let f = qfc_quantum::fidelity::fidelity_with_pure(&res.rho, &bell_phi(0.0));
        assert!(f > 0.8, "fallback fidelity {f}");
    }

    #[test]
    fn with_retries_records_and_recovers() {
        let mut h = HealthReport::pristine();
        let result = with_retries("linewidth fit", 3, &mut h, |attempt| {
            if attempt < 2 {
                Err(QfcError::invalid("flaky"))
            } else {
                Ok(attempt)
            }
        })
        .expect("third attempt succeeds");
        assert_eq!(result, 2);
        assert_eq!(h.recovery_actions.len(), 2);

        let mut h2 = HealthReport::pristine();
        let err = with_retries("always fails", 2, &mut h2, |_| {
            Err::<(), _>(QfcError::invalid("broken"))
        })
        .expect_err("exhausted");
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn empty_schedule_is_a_no_op() {
        let mut h = HealthReport::pristine();
        let policy = SupervisorPolicy::default();
        let out = plan_pump_relocks(&FaultSchedule::empty(), 10.0, &policy, 1, &mut h)
            .expect("nothing to relock");
        assert!(out.is_empty());
        let survivors =
            partition_channels(&FaultSchedule::empty(), 5, 10.0, &policy, "x", &mut h)
                .expect("all survive");
        assert_eq!(survivors, vec![1, 2, 3, 4, 5]);
        record_schedule_faults(&FaultSchedule::empty(), 10.0, &mut h);
        assert!(h.is_pristine());
    }
}
