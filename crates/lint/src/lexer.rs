//! A minimal Rust lexer: just enough to classify identifiers, literals,
//! lifetimes, comments, and punctuation with line/column positions.
//!
//! The lint rules only need a *token* view of the source — no parse tree.
//! What the lexer must get right is the stuff that breaks naive regex
//! scanning: string and char literals (so `"as f64"` inside a message is
//! not a cast), raw strings, nested block comments, and the lifetime
//! (`'a`) versus char-literal (`'a'`) ambiguity.

/// Classification of a single token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`as`, `fn`, `HashMap`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// A numeric literal, including any type suffix (`1_000u64`, `0.5e-3`).
    Number,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`).
    StrLit,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A `//` comment; `text` holds everything after the two slashes.
    LineComment,
    /// A `/* … */` comment (nesting handled); `text` holds the body.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Identifier name, comment body, or punctuation character;
    /// empty for literals (the rules never inspect literal contents).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// Lexes `src` into a token stream. Never fails: unrecognizable bytes
/// are emitted as single-character punctuation tokens.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                self.bump();
                self.string_body();
                self.push(TokKind::StrLit, String::new(), line, col);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed(line, col);
            } else {
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(TokKind::BlockComment, text, line, col);
    }

    /// Body of a non-raw string literal; the opening quote is consumed.
    fn string_body(&mut self) {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
    }

    /// Raw string body after the `r`/`br` prefix: `hashes` `#`s, then a
    /// quote, then content until a quote followed by the same `#` run.
    fn raw_string_body(&mut self, hashes: usize) {
        for _ in 0..=hashes {
            self.bump(); // the '#'s and the opening '"'
        }
        loop {
            match self.bump() {
                Some('"') => {
                    if (0..hashes).all(|k| self.peek(k) == Some('#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                None => break,
                Some(_) => {}
            }
        }
    }

    /// A `'`: lifetime/label (`'a`) or char literal (`'a'`, `'\n'`).
    fn quote(&mut self, line: u32, col: u32) {
        let one = self.peek(1);
        let two = self.peek(2);
        if let Some(c1) = one {
            if is_ident_start(c1) && two != Some('\'') {
                // Lifetime or loop label: consume the quote and the ident.
                self.bump();
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line, col);
                return;
            }
        }
        // Char literal: consume until the closing quote, honoring escapes.
        self.bump();
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('\'') | None => break,
                Some(_) => {}
            }
        }
        self.push(TokKind::CharLit, String::new(), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O'));
        let mut prev = '\0';
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                prev = c;
                self.bump();
            } else if c == '.'
                && !seen_dot
                && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
            {
                seen_dot = true;
                prev = '.';
                self.bump();
            } else if (c == '+' || c == '-') && matches!(prev, 'e' | 'E') && !radix_prefixed {
                prev = c;
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, String::new(), line, col);
    }

    /// An identifier, possibly a raw-string/byte prefix (`r"…"`, `br#"…"#`,
    /// `b'…'`) or a raw identifier (`r#type`).
    fn ident_or_prefixed(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let next = self.peek(0);
        match (name.as_str(), next) {
            ("r" | "br" | "rb", Some('"')) => {
                self.raw_string_body(0);
                self.push(TokKind::StrLit, String::new(), line, col);
            }
            ("r" | "br" | "rb", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.raw_string_body(hashes);
                    self.push(TokKind::StrLit, String::new(), line, col);
                } else if name == "r" {
                    // Raw identifier `r#type`: emit the bare ident.
                    self.bump(); // '#'
                    let mut raw = String::new();
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            raw.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, raw, line, col);
                } else {
                    self.push(TokKind::Ident, name, line, col);
                }
            }
            ("b", Some('"')) => {
                self.bump();
                self.string_body();
                self.push(TokKind::StrLit, String::new(), line, col);
            }
            ("b", Some('\'')) => {
                self.bump();
                loop {
                    match self.bump() {
                        Some('\\') => {
                            self.bump();
                        }
                        Some('\'') | None => break,
                        Some(_) => {}
                    }
                }
                self.push(TokKind::CharLit, String::new(), line, col);
            }
            _ => self.push(TokKind::Ident, name, line, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("let x = y as f64;");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokKind::Ident, "y".into()));
        assert_eq!(toks[4], (TokKind::Ident, "as".into()));
        assert_eq!(toks[5], (TokKind::Ident, "f64".into()));
        assert_eq!(toks[6], (TokKind::Punct, ";".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x as f64"; t"#);
        assert!(toks.iter().all(|(_, t)| t != "as"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::StrLit));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let s = r#"panic! as f64 "#; r#as"##);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(),
            1
        );
        // `r#as` is a raw identifier spelled `as` — it is still the `as`
        // token textually, but appears after the string, proving the raw
        // string body was skipped correctly.
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("as"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(),
            1
        );
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let c = '\''; let d = '\n'; let e = '\u{1F600}';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(),
            3
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner as f64 */ still comment */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn line_comment_text_is_captured() {
        let toks = kinds("x // qfc-lint: allow(lossy-cast) — reason\ny");
        assert_eq!(toks[1].0, TokKind::LineComment);
        assert!(toks[1].1.contains("qfc-lint: allow(lossy-cast)"));
    }

    #[test]
    fn numeric_literals_with_suffixes_and_exponents() {
        let toks = kinds("0xFF_u64 1.5e-3 1_000usize 0.5 7f64 0..10");
        let numbers = toks.iter().filter(|(k, _)| *k == TokKind::Number).count();
        // `0..10` is two numbers and two dots.
        assert_eq!(numbers, 7);
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Punct && t == ".")
                .count(),
            2
        );
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let toks = kinds("x.0.abs()");
        assert_eq!(toks[0], (TokKind::Ident, "x".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2].0, TokKind::Number);
        assert_eq!(toks[4], (TokKind::Ident, "abs".into()));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"b"as f64" b'\'' x"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(),
            1
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(),
            1
        );
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
    }
}
