//! Radix-2 fast Fourier transform.
//!
//! Used by the Lugiato–Lefever comb simulator
//! (`qfc_photonics::lle`) for its split-step spectral method.

use crate::cast;
use crate::complex::Complex64;

/// In-place forward FFT (`X_k = Σ_n x_n e^{−2πikn/N}`).
///
/// # Panics
///
/// Panics unless the length is a power of two ≥ 2.
pub fn fft(data: &mut [Complex64]) {
    transform(data, -1.0);
}

/// In-place inverse FFT (includes the `1/N` normalization so that
/// `ifft(fft(x)) == x`).
///
/// # Panics
///
/// Panics unless the length is a power of two ≥ 2.
pub fn ifft(data: &mut [Complex64]) {
    transform(data, 1.0);
    let n = cast::to_f64(data.len());
    for z in data.iter_mut() {
        *z = z.scale(1.0 / n);
    }
}

fn transform(data: &mut [Complex64], sign: f64) {
    let n = data.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "FFT length must be a power of two ≥ 2"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Danielson–Lanczos butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / cast::to_f64(len);
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::real(1.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Angular frequency of FFT bin `k` for `n` samples at spacing `dx`
/// (standard FFT ordering: positive frequencies first, then negative).
pub fn fft_frequency(k: usize, n: usize, dx: f64) -> f64 {
    let kf = if k <= n / 2 {
        cast::to_f64(k)
    } else {
        cast::to_f64(k) - cast::to_f64(n)
    };
    2.0 * std::f64::consts::PI * kf / (cast::to_f64(n) * dx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        a.approx_eq(b, 1e-9)
    }

    #[test]
    fn roundtrip() {
        let original: Vec<Complex64> = (0..64)
            .map(|k| Complex64::new((k as f64 * 0.3).sin(), (k as f64 * 0.7).cos()))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn delta_transforms_to_flat() {
        let mut data = vec![Complex64::real(0.0); 16];
        data[0] = Complex64::real(1.0);
        fft(&mut data);
        for z in &data {
            assert!(close(*z, Complex64::real(1.0)));
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 128;
        let tone = 5;
        let mut data: Vec<Complex64> = (0..n)
            .map(|k| Complex64::cis(2.0 * std::f64::consts::PI * tone as f64 * k as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            if k == tone {
                assert!((z.abs() - n as f64).abs() < 1e-6);
            } else {
                assert!(z.abs() < 1e-6, "bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval() {
        let data: Vec<Complex64> = (0..32)
            .map(|k| Complex64::new((k as f64).sin(), (k as f64 * 1.3).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = data.clone();
        fft(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn fft_frequency_ordering() {
        // 8 samples, dx = 1: bins 0..4 positive, 5..7 negative.
        assert_eq!(fft_frequency(0, 8, 1.0), 0.0);
        assert!(fft_frequency(1, 8, 1.0) > 0.0);
        assert!(fft_frequency(7, 8, 1.0) < 0.0);
        assert!((fft_frequency(7, 8, 1.0) + fft_frequency(1, 8, 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex64::real(0.0); 12];
        fft(&mut data);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..16).map(|k| Complex64::real(k as f64)).collect();
        let b: Vec<Complex64> = (0..16).map(|k| Complex64::imag((k * k) as f64)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let (mut fa, mut fb, mut fs) = (a.clone(), b.clone(), sum.clone());
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fs);
        for i in 0..16 {
            assert!(close(fs[i], fa[i] + fb[i]));
        }
    }
}
