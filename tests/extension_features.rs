//! Integration tests of the extension features: DWDM filtering, gated
//! detection, comb spectra, qudit states, QKD feasibility, and purity —
//! exercised together through the public API.

use qfc::core::purity::{run_purity_analysis, PurityConfig};
use qfc::core::source::QfcSource;
use qfc::mathkit::rng::rng_from_seed;
use qfc::photonics::filter::Demultiplexer;
use qfc::photonics::memory::{filtering_penalty_db, MemoryProfile};
use qfc::photonics::spectrum::comb_spectrum;
use qfc::photonics::units::{Frequency, Power};
use qfc::photonics::waveguide::Polarization;
use qfc::quantum::qudit::{cglmp_value, BipartiteQudit, CGLMP_CLASSICAL_BOUND};
use qfc::timetag::gated::GatedDetector;

#[test]
fn demux_matches_comb_grid() {
    // Build a demux from the actual comb channel frequencies and check
    // its isolation supports the F1 diagonal-only claim.
    let source = QfcSource::paper_device();
    let comb = source.comb(5);
    let mut centers: Vec<Frequency> = comb.pairs().iter().map(|p| p.signal.frequency).collect();
    centers.extend(comb.pairs().iter().map(|p| p.idler.frequency));
    let demux = Demultiplexer::new(&centers);
    assert_eq!(demux.ports(), 10);
    assert!(
        demux.worst_adjacent_isolation_db() > 25.0,
        "isolation {}",
        demux.worst_adjacent_isolation_db()
    );
}

#[test]
fn gated_detection_improves_effective_darks() {
    let gated = GatedDetector::ingaas_paper();
    assert!(gated.effective_dark_rate_hz() < gated.base.dark_count_rate_hz / 10.0);

    // A frame-synchronized photon stream survives the gate — spacing the
    // photons beyond the detector dead time (10 µs ≫ the 100-ns gate
    // period, so a photon every gate would saturate the detector).
    let mut rng = rng_from_seed(201);
    let arrivals: Vec<i64> = (0..1000)
        .map(|k| k * 200 * gated.gate_period_ps + 500)
        .collect();
    let out = gated.detect(&mut rng, &arrivals, 1_000_000_000_000);
    // η = 0.15 → ≈ 150 detected, all inside gates.
    assert!(out.len() > 100, "detected {}", out.len());
    assert!(out.as_slice().iter().all(|&t| gated.in_gate(t)));
}

#[test]
fn comb_spectrum_consistent_with_opo_threshold() {
    let source = QfcSource::paper_device();
    let ring = source.ring();
    let below = comb_spectrum(ring, Power::from_mw(12.0), 10);
    let above = comb_spectrum(ring, Power::from_mw(16.0), 10);
    assert!(!below.above_threshold);
    assert!(above.above_threshold);
    assert!(above.total_power_w() > below.total_power_w() * 100.0);
}

#[test]
fn qudit_from_actual_channel_rates() {
    let source = QfcSource::paper_device_timebin();
    let weights: Vec<f64> = (1..=4).map(|m| source.pairs_per_frame(m)).collect();
    let state = BipartiteQudit::from_channel_weights(&weights);
    // Nearly flat comb → entropy close to 2 bits.
    let e = state.entanglement_entropy_bits();
    assert!(e > 1.9 && e <= 2.0, "E = {e}");
    // The §IV visibility budget violates CGLMP in every dimension.
    for d in 2..=6 {
        assert!(cglmp_value(d, 0.83) > CGLMP_CLASSICAL_BOUND, "d = {d}");
    }
}

#[test]
fn purity_analysis_supports_memory_claim() {
    let source = QfcSource::paper_device_timebin();
    let report = run_purity_analysis(&source, &PurityConfig::paper());
    assert!(report.heralded_purity > 0.9);
    // The ring beats a 1-THz SPDC source by > 30 dB for memory matching.
    let ring_penalty = filtering_penalty_db(
        source.ring().linewidth(),
        &MemoryProfile::atomic_100mhz(),
    );
    let spdc_penalty =
        filtering_penalty_db(Frequency::from_thz(1.0), &MemoryProfile::atomic_100mhz());
    assert!(spdc_penalty - ring_penalty > 30.0);
}

#[test]
fn comb_grid_lines_match_ring_resonances() {
    let source = QfcSource::paper_device();
    let ring = source.ring();
    let spectrum = comb_spectrum(ring, Power::from_mw(10.0), 5);
    for line in &spectrum.lines {
        let (m, det) = ring.nearest_resonance(Polarization::Te, line.frequency);
        assert_eq!(m, line.index);
        assert!(det.hz().abs() < 1.0);
    }
}
