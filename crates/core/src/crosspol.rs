//! §III — Generation of cross-polarized photon pairs via type-II SFWM.
//!
//! Reproduces:
//!
//! * **F4** — the coincidence peak between orthogonally polarized photons
//!   behind a polarizing beam splitter, CAR ≈ 10 at 2 mW;
//! * **F5** — the pump-power transfer curve: quadratic below the OPO
//!   threshold at 14 mW, linear above;
//! * **F6** — suppression of the *stimulated* FWM process by the TE/TM
//!   resonance-grid offset (the device-design ablation).

use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_faults::{Arm, FaultSchedule, HealthReport, QfcError, QfcResult};
use qfc_mathkit::fit::fit_power_law;
use qfc_mathkit::rng::{exponential, poisson, rng_from_seed};
use qfc_photonics::fwm;
use qfc_photonics::opo;
use qfc_photonics::ring::MicroringBuilder;
use qfc_photonics::units::{Frequency, Power};
use qfc_photonics::waveguide::Waveguide;
use qfc_timetag::coincidence::measure_car;
use qfc_timetag::detector::SinglePhotonDetector;

use crate::report::{Comparison, Expectation, ExperimentReport};
use crate::source::QfcSource;
use crate::supervisor::{self, SupervisorPolicy};

/// Configuration of the §III type-II coincidence run (F4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossPolConfig {
    /// Integration time, s.
    pub duration_s: f64,
    /// Coincidence window, ps.
    pub coincidence_window_ps: i64,
    /// Detector model per polarization arm.
    pub detector: SinglePhotonDetector,
    /// Passive collection efficiency per arm (PBS, filters, fibers).
    pub collection_efficiency: f64,
    /// Uncorrelated background photons reaching each detector (leaked
    /// pump, spontaneous Raman in the fibers), Hz.
    pub background_rate_hz: f64,
    /// Polarization extinction of the PBS: fraction of each photon
    /// leaking into the wrong output port.
    pub pbs_leakage: f64,
}

impl CrossPolConfig {
    /// The published F4 conditions (2 mW total bichromatic pump, gated
    /// InGaAs detection, realistic background) tuned to the CAR ≈ 10
    /// operating point.
    pub fn paper() -> Self {
        Self {
            duration_s: 3600.0,
            // Window spans the 1.45-ns correlation envelope.
            coincidence_window_ps: 8000,
            detector: SinglePhotonDetector {
                efficiency: 0.15,
                dark_count_rate_hz: 300.0,
                jitter_sigma_ps: 100.0,
                dead_time_ps: 10_000_000,
            },
            collection_efficiency: 0.7,
            background_rate_hz: 900.0,
            pbs_leakage: 0.01,
        }
    }

    /// High-efficiency, short run for tests and demos.
    pub fn fast_demo() -> Self {
        Self {
            duration_s: 60.0,
            coincidence_window_ps: 8000,
            detector: SinglePhotonDetector {
                efficiency: 0.8,
                dark_count_rate_hz: 200.0,
                jitter_sigma_ps: 50.0,
                dead_time_ps: 50_000,
            },
            collection_efficiency: 0.8,
            background_rate_hz: 300.0,
            pbs_leakage: 0.01,
        }
    }
}

/// Results of the F4 type-II coincidence run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossPolReport {
    /// Generated cross-polarized pair rate, Hz.
    pub generated_pair_rate_hz: f64,
    /// TE-arm singles rate, Hz.
    pub te_singles_hz: f64,
    /// TM-arm singles rate, Hz.
    pub tm_singles_hz: f64,
    /// Detected coincidence rate, Hz.
    pub coincidence_rate_hz: f64,
    /// Coincidence-to-accidental ratio.
    pub car: f64,
    /// Suppression of the stimulated FWM product (cavity power response
    /// at the stimulated frequency, 1 = unsuppressed).
    pub stimulated_response: f64,
}

impl CrossPolReport {
    /// Comparison rows (paper: CAR ≈ 10 at 2 mW; stimulated FWM
    /// "suppressed completely").
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§III cross-polarized photon pairs (F4/F6)");
        r.push(Comparison::new(
            "F4",
            "type-II CAR at 2 mW (paper ≈ 10)",
            10.0,
            self.car,
            "",
            Expectation::InRange { lo: 5.0, hi: 20.0 },
        ));
        r.push(Comparison::new(
            "F6",
            "stimulated-FWM cavity response (1 = unsuppressed)",
            1e-4,
            self.stimulated_response,
            "",
            Expectation::AtMost,
        ));
        r
    }
}

/// A completed §III run: the physics report plus its health record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossPolRun {
    /// The physics results.
    pub report: CrossPolReport,
    /// Faults injected and recovery actions taken.
    pub health: HealthReport,
}

impl CrossPolRun {
    /// Comparison rows with the health section attached.
    pub fn to_report(&self) -> ExperimentReport {
        self.report.to_report().with_health(self.health.clone())
    }
}

/// Runs the F4 virtual experiment: type-II pairs split on a PBS,
/// detected, and counted.
///
/// # Panics
///
/// Panics if the source is not bichromatically pumped.
pub fn run_crosspol_experiment(
    source: &QfcSource,
    config: &CrossPolConfig,
    seed: u64,
) -> CrossPolReport {
    match try_run_crosspol_experiment(source, config, seed, &FaultSchedule::empty()) {
        Ok(run) => run.report,
        Err(e) => panic!("{e}"), // qfc-lint: allow(panic-reachability) — documented panicking wrapper over the try_* twin (`# Panics` contract)
    }
}

/// Fallible, fault-aware form of [`run_crosspol_experiment`]: the TE arm
/// maps onto the channel-1 signal detector and the TM arm onto the
/// channel-1 idler detector of the fault schedule.
///
/// # Errors
///
/// [`QfcError::InvalidParameter`] for a bad configuration,
/// [`QfcError::RegimeMismatch`] when the source is not bichromatically
/// pumped, [`QfcError::ChannelsExhausted`] when both arms are
/// quarantined, and [`QfcError::LockReacquisitionFailed`] when the pump
/// cannot be re-locked.
pub fn try_run_crosspol_experiment(
    source: &QfcSource,
    config: &CrossPolConfig,
    seed: u64,
    schedule: &FaultSchedule,
) -> QfcResult<CrossPolRun> {
    if config.duration_s.is_nan() || config.duration_s <= 0.0 {
        return Err(QfcError::invalid("duration must be positive"));
    }
    if config.background_rate_hz.is_nan() || config.background_rate_hz < 0.0 {
        return Err(QfcError::invalid("background rate must be ≥ 0"));
    }
    if !(0.0..=1.0).contains(&config.pbs_leakage) {
        return Err(QfcError::invalid("PBS leakage must be in [0, 1]"));
    }
    if !(0.0..=1.0).contains(&config.collection_efficiency) {
        return Err(QfcError::invalid("collection efficiency must be in [0, 1]"));
    }
    config.detector.try_validate()?;
    let _driver_span = qfc_obs::span("driver.crosspol");
    crate::report::record_manifest(seed, config, schedule);

    let source_span = qfc_obs::span("driver.crosspol.source");
    let mut health = HealthReport::pristine();
    let policy = SupervisorPolicy::default();
    supervisor::record_schedule_faults(schedule, config.duration_s, &mut health);
    let relocks =
        supervisor::plan_pump_relocks(schedule, config.duration_s, &policy, seed, &mut health)?;
    let live = supervisor::live_fraction(&relocks, config.duration_s);
    supervisor::partition_channels(
        schedule,
        1,
        config.duration_s,
        &policy,
        "crosspol experiment",
        &mut health,
    )?;

    let mut rng = rng_from_seed(seed);
    let linewidth_hz = source.ring().linewidth().hz();
    let rate = source.try_type2_pair_rate(1)?
        * schedule.mean_pump_rate_factor(0.0, config.duration_s, linewidth_hz)
        * live;
    let tau = source.ring().coincidence_decay_time();
    let duration_ps = cast::f64_to_i64(config.duration_s * 1e12);

    drop(source_span);
    // True pair arrivals; PBS routes TE → arm A, TM → arm B with a small
    // leakage probability that swaps the routing.
    let timetag_span = qfc_obs::span("driver.crosspol.timetag");
    let n = poisson(&mut rng, rate * config.duration_s);
    qfc_obs::counter_add("shots_simulated", n);
    let mut te_true = Vec::new();
    let mut tm_true = Vec::new();
    for _ in 0..n {
        let t = rng.gen::<f64>() * config.duration_s;
        let dt = exponential(&mut rng, 1.0 / tau);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        let (a, b) = (cast::f64_to_i64(t * 1e12), cast::f64_to_i64((t + sign * dt) * 1e12));
        if rng.gen::<f64>() < config.pbs_leakage {
            te_true.push(b);
            tm_true.push(a);
        } else {
            te_true.push(a);
            tm_true.push(b);
        }
    }
    // Uncorrelated background photons on each arm.
    let n_bg = poisson(&mut rng, config.background_rate_hz * config.duration_s);
    for _ in 0..n_bg {
        te_true.push(cast::f64_to_i64(rng.gen::<f64>() * config.duration_s * 1e12));
    }
    let n_bg = poisson(&mut rng, config.background_rate_hz * config.duration_s);
    for _ in 0..n_bg {
        tm_true.push(cast::f64_to_i64(rng.gen::<f64>() * config.duration_s * 1e12));
    }
    te_true.sort_unstable();
    tm_true.sort_unstable();
    // Sub-quarantine dropout windows kill arrivals (pure filter, no RNG).
    te_true.retain(|&t| !schedule.detector_dead_at(1, Arm::Signal, cast::to_f64(t) * 1e-12));
    tm_true.retain(|&t| !schedule.detector_dead_at(1, Arm::Idler, cast::to_f64(t) * 1e-12));

    let mut arm = config.detector;
    arm.efficiency *= config.collection_efficiency;
    arm.dark_count_rate_hz *= schedule.mean_dark_multiplier(1, 0.0, config.duration_s);
    let te_stream =
        supervisor::apply_tdc_saturation(arm.detect(&mut rng, &te_true, duration_ps), schedule);
    let tm_stream =
        supervisor::apply_tdc_saturation(arm.detect(&mut rng, &tm_true, duration_ps), schedule);
    drop(timetag_span);

    let analysis_span = qfc_obs::span("driver.crosspol.analysis");
    let car_result = measure_car(
        &te_stream,
        &tm_stream,
        config.coincidence_window_ps,
        50_000,
        10,
    );
    let car = if car_result.car.is_finite() {
        car_result.car
    } else {
        cast::to_f64(car_result.coincidences)
    };
    drop(analysis_span);

    let _report_span = qfc_obs::span("driver.crosspol.report");
    Ok(CrossPolRun {
        report: CrossPolReport {
            generated_pair_rate_hz: rate,
            te_singles_hz: te_stream.rate_hz(config.duration_s),
            tm_singles_hz: tm_stream.rate_hz(config.duration_s),
            coincidence_rate_hz: cast::to_f64(car_result.coincidences) / config.duration_s,
            car,
            stimulated_response: fwm::stimulated_suppression(source.ring()),
        },
        health,
    })
}

/// Results of the F5 power sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerSweepReport {
    /// Model OPO threshold, W.
    pub threshold_w: f64,
    /// Fitted log-log slope below threshold.
    pub below_exponent: f64,
    /// Fitted log-log slope of output vs excess pump above threshold.
    pub above_exponent: f64,
    /// The sweep points (pump W, output W).
    pub curve: Vec<(f64, f64)>,
}

impl PowerSweepReport {
    /// Comparison rows (paper: quadratic → linear, threshold 14 mW).
    pub fn to_report(&self) -> ExperimentReport {
        let mut r = ExperimentReport::new("§III OPO power transfer (F5)");
        r.push(Comparison::new(
            "F5",
            "OPO threshold",
            14e-3,
            self.threshold_w,
            "W",
            Expectation::Within { rel_tol: 0.25 },
        ));
        r.push(Comparison::new(
            "F5",
            "below-threshold power-law exponent",
            2.0,
            self.below_exponent,
            "",
            Expectation::Within { rel_tol: 0.1 },
        ));
        r.push(Comparison::new(
            "F5",
            "above-threshold power-law exponent",
            1.0,
            self.above_exponent,
            "",
            Expectation::Within { rel_tol: 0.1 },
        ));
        r
    }
}

/// Runs the F5 power sweep on the source's ring.
pub fn run_power_sweep(source: &QfcSource, points_per_branch: usize) -> PowerSweepReport {
    let ring = source.ring();
    let p_th = opo::threshold(ring);
    let below = opo::transfer_curve(
        ring,
        Power::from_w(p_th.w() * 0.05),
        Power::from_w(p_th.w() * 0.85),
        points_per_branch,
    );
    let above = opo::transfer_curve(
        ring,
        Power::from_w(p_th.w() * 1.3),
        Power::from_w(p_th.w() * 3.0),
        points_per_branch,
    );
    let bx: Vec<f64> = below.iter().map(|p| p.pump_w).collect();
    let by: Vec<f64> = below.iter().map(|p| p.output_w).collect();
    let ax: Vec<f64> = above.iter().map(|p| p.pump_w - p_th.w()).collect();
    let ay: Vec<f64> = above.iter().map(|p| p.output_w).collect();
    let mut curve: Vec<(f64, f64)> = below.iter().map(|p| (p.pump_w, p.output_w)).collect();
    curve.extend(above.iter().map(|p| (p.pump_w, p.output_w)));
    PowerSweepReport {
        threshold_w: p_th.w(),
        below_exponent: fit_power_law(&bx, &by).exponent,
        above_exponent: fit_power_law(&ax, &ay).exponent,
        curve,
    }
}

/// One point of the F6 suppression-vs-offset ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuppressionPoint {
    /// TE/TM grid offset, Hz.
    pub offset_hz: f64,
    /// Cavity power response available to the stimulated product.
    pub stimulated_response: f64,
    /// Spontaneous type-II rate at this offset (should stay flat), Hz.
    pub spontaneous_rate_hz: f64,
}

/// Sweeps the TE/TM offset and records stimulated-FWM suppression vs the
/// (unaffected) spontaneous type-II rate — the F6 design ablation.
pub fn run_suppression_sweep(offsets_ghz: &[f64]) -> Vec<SuppressionPoint> {
    offsets_ghz
        .iter()
        .map(|&off| {
            let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
            b.anchor(Frequency::from_thz(193.4))
                .radius_for_fsr(Frequency::from_ghz(200.0))
                .te_tm_offset(Frequency::from_ghz(off));
            b.coupling_for_linewidth(Frequency::from_hz(110e6));
            let ring = b.build();
            SuppressionPoint {
                offset_hz: off * 1e9,
                stimulated_response: fwm::stimulated_suppression(&ring),
                spontaneous_rate_hz: fwm::type2_pair_rate(
                    &ring,
                    Power::from_mw(1.0),
                    Power::from_mw(1.0),
                    1,
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_demo_produces_car_peak() {
        let src = QfcSource::paper_device_type2();
        let report = run_crosspol_experiment(&src, &CrossPolConfig::fast_demo(), 11);
        assert!(report.coincidence_rate_hz > 0.0);
        assert!(report.car > 2.0, "CAR {}", report.car);
    }

    #[test]
    fn stimulated_process_suppressed_on_paper_device() {
        let src = QfcSource::paper_device_type2();
        let report = run_crosspol_experiment(&src, &CrossPolConfig::fast_demo(), 12);
        assert!(report.stimulated_response < 1e-4, "{}", report.stimulated_response);
    }

    #[test]
    fn power_sweep_shape() {
        let src = QfcSource::paper_device_type2();
        let report = run_power_sweep(&src, 12);
        assert!((report.below_exponent - 2.0).abs() < 0.05, "{}", report.below_exponent);
        assert!((report.above_exponent - 1.0).abs() < 0.05, "{}", report.above_exponent);
        assert!((report.threshold_w - 14e-3).abs() < 4e-3, "{}", report.threshold_w);
        assert_eq!(report.curve.len(), 24);
    }

    #[test]
    fn suppression_sweep_monotone_toward_half_fsr() {
        let pts = run_suppression_sweep(&[0.0, 1.0, 10.0, 47.0]);
        assert!(pts[0].stimulated_response > 0.9, "aligned grids resonant");
        assert!(pts[3].stimulated_response < 1e-4);
        // Spontaneous rate unaffected within 20 %.
        let s0 = pts[0].spontaneous_rate_hz;
        for p in &pts {
            assert!((p.spontaneous_rate_hz - s0).abs() / s0 < 0.2);
        }
    }

    #[test]
    fn report_rows() {
        let src = QfcSource::paper_device_type2();
        let report = run_crosspol_experiment(&src, &CrossPolConfig::fast_demo(), 13);
        assert_eq!(report.to_report().comparisons.len(), 2);
        let sweep = run_power_sweep(&src, 8).to_report();
        assert!(sweep.all_pass(), "{}", sweep.render());
    }

    #[test]
    fn empty_schedule_matches_legacy_run() {
        let src = QfcSource::paper_device_type2();
        let cfg = CrossPolConfig::fast_demo();
        let legacy = run_crosspol_experiment(&src, &cfg, 14);
        let run = try_run_crosspol_experiment(&src, &cfg, 14, &FaultSchedule::empty())
            .expect("clean run");
        assert!(run.health.is_pristine());
        assert_eq!(
            serde_json::to_string(&legacy).expect("json"),
            serde_json::to_string(&run.report).expect("json"),
        );
    }

    #[test]
    fn stress_schedule_survives_with_finite_car() {
        let src = QfcSource::paper_device_type2();
        let cfg = CrossPolConfig::fast_demo();
        let schedule = FaultSchedule::stress(5, cfg.duration_s);
        let run = try_run_crosspol_experiment(&src, &cfg, 14, &schedule)
            .expect("run survives the stress schedule");
        assert!(!run.health.is_pristine());
        assert!(run.report.car.is_finite());
        assert!(run.report.coincidence_rate_hz.is_finite());
    }

    #[test]
    fn wrong_regime_is_a_taxonomy_error() {
        // The CW paper device is not bichromatically pumped.
        let err = try_run_crosspol_experiment(
            &QfcSource::paper_device(),
            &CrossPolConfig::fast_demo(),
            1,
            &FaultSchedule::empty(),
        )
        .expect_err("regime mismatch");
        assert!(matches!(err, QfcError::RegimeMismatch { .. }));
    }
}
