//! Offline vendored stand-in for `serde`.
//!
//! The workspace builds hermetically (no registry access), so this crate
//! provides the exact serialization surface the workspace relies on:
//!
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the vendored
//!   `serde_derive` proc-macro crate);
//! * `serde::Serialize` / `serde::Deserialize` trait bounds;
//! * `serde::de::DeserializeOwned` (used by generic round-trip helpers).
//!
//! Unlike upstream serde's visitor architecture, this implementation
//! serializes through an in-memory [`Value`] tree which the vendored
//! `serde_json` then prints/parses. The JSON layout (externally tagged
//! enums, structs as objects, newtypes transparent) matches upstream
//! serde's defaults for the shapes used in this workspace, and all
//! round-trips are exact — including `f64` payloads, which print with
//! shortest-round-trip formatting.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, ordered JSON-like value tree.
///
/// Objects preserve insertion order (association list, not a hash map)
/// so serialization output — and therefore the bitwise determinism the
/// parallel engine guarantees — never depends on hasher state.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by key.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an externally tagged enum variant:
    /// an object with exactly one entry.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }

    /// Short human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted to a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type out of `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers, mirroring upstream's `serde::de` module.
pub mod de {
    /// Owned deserialization marker, blanket-implemented for every
    /// [`Deserialize`](crate::Deserialize) type.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 && v > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(x) => Ok(*x as f64),
            Value::U64(x) => Ok(*x as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected f64, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                        if items.len() != LEN {
                            return Err(Error::custom(format!(
                                "expected tuple of length {LEN}, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for x in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [-5i64, 0, i64::MAX] {
            assert_eq!(i64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [0.5f64, -1e-300, f64::INFINITY] {
            assert_eq!(f64::from_value(&x.to_value()).unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![(1.5f64, 2u64), (3.0, 4)];
        assert_eq!(Vec::<(f64, u64)>::from_value(&v.to_value()).unwrap(), v);
        let a = [[1u64, 2, 3], [4, 5, 6]];
        assert_eq!(<[[u64; 3]; 2]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn object_field_access() {
        let v = Value::Object(vec![("a".into(), Value::I64(1))]);
        assert!(v.get_field("a").is_ok());
        assert!(v.get_field("b").is_err());
    }
}
