//! Fuzz-style hardening for the lexer: pathological inputs that break
//! naive scanners. The lexer's contract is total — `lex` never panics,
//! never loops forever, and always yields tokens with sane 1-based
//! positions in non-decreasing source order — for *any* input, not just
//! well-formed Rust.

use qfc_lint::lexer::{lex, TokKind, Token};

/// Structural invariants every token stream must satisfy.
fn check_invariants(src: &str, toks: &[Token]) {
    let lines = u32::try_from(src.lines().count().max(1)).unwrap_or(u32::MAX);
    let mut prev = (0u32, 0u32);
    for t in toks {
        assert!(t.line >= 1 && t.col >= 1, "position not 1-based: {t:?}");
        assert!(
            t.line <= lines,
            "token line {} past end of {}-line input",
            t.line,
            lines
        );
        assert!(
            (t.line, t.col) > prev,
            "tokens out of source order: {:?} after {:?}",
            (t.line, t.col),
            prev
        );
        prev = (t.line, t.col);
    }
}

/// A tiny deterministic LCG — no ambient entropy in tests either.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn fuzz_soup_never_panics_and_keeps_positions_sane() {
    // An alphabet biased toward the lexer's dangerous characters: quote
    // kinds, raw-string prefixes, comment openers/closers, escapes.
    let alphabet: Vec<char> = "\"'#rb/*\\\n ezx0._-+!:<>()[]{}\u{e9}\u{1F600}"
        .chars()
        .collect();
    let mut rng = Lcg(0x5eed_cafe);
    for case in 0..500 {
        let len = (rng.next() % 120) as usize;
        let src: String = (0..len)
            .map(|_| alphabet[(rng.next() as usize) % alphabet.len()])
            .collect();
        let toks = lex(&src);
        check_invariants(&src, &toks);
        // Lexing must be a pure function of the input.
        let again = lex(&src);
        assert_eq!(toks.len(), again.len(), "case {case}: nondeterministic lex");
    }
}

#[test]
fn deeply_nested_block_comments_stay_one_token() {
    let depth = 1000;
    let src = format!("{}as f64{} x", "/*".repeat(depth), "*/".repeat(depth));
    let toks = lex(&src);
    check_invariants(&src, &toks);
    assert_eq!(toks.len(), 2, "comment nesting leaked tokens: {toks:?}");
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert_eq!((toks[1].kind, toks[1].text.as_str()), (TokKind::Ident, "x"));
}

#[test]
fn unterminated_constructs_at_eof_do_not_hang_or_panic() {
    for src in [
        "/* never closed",
        "/* outer /* inner */ still open",
        "\"no closing quote",
        "\"trailing escape \\",
        "'",
        "'\\",
        "b'",
        "r#\"raw never closed",
        "r###\"short close\"##",
        "br##\"also open\"#",
        "// line comment at eof",
        "0x",
        "1e",
    ] {
        let toks = lex(src);
        check_invariants(src, &toks);
        assert!(!toks.is_empty(), "input {src:?} lexed to nothing");
    }
}

#[test]
fn raw_strings_with_many_hashes_round_trip() {
    for hashes in [1usize, 2, 8, 64, 200] {
        let h = "#".repeat(hashes);
        // The body contains a closing quote with *fewer* hashes, which
        // must not terminate the literal early.
        let inner_close = format!("\"{}", "#".repeat(hashes.saturating_sub(1)));
        let src = format!("let s = r{h}\"as f64 {inner_close} panic!\"{h}; tail");
        let toks = lex(&src);
        check_invariants(&src, &toks);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::StrLit).count(),
            1,
            "hashes={hashes}: {toks:?}"
        );
        assert!(
            toks.iter().all(|t| t.text != "as" && t.text != "panic"),
            "hashes={hashes}: raw string body leaked tokens"
        );
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("tail"));
    }
}

#[test]
fn lifetime_char_ambiguity_under_pressure() {
    // `'_` and labels are lifetimes; `'x'`, escapes, and byte chars are
    // char literals; a lifetime immediately before a generic close must
    // not swallow the `>`.
    let src = "fn f<'a, '_>(x: &'a str) -> char { 'b: loop { break 'b 'x'; } }";
    let toks = lex(src);
    check_invariants(src, &toks);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'_", "'a", "'b", "'b"]);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::CharLit).count(), 1);
    assert!(toks.iter().any(|t| t.kind == TokKind::Punct && t.text == ">"));
}

#[test]
fn byte_literals_and_crlf_positions() {
    let src = "b\"bytes\"\r\nb'\\''\r\nident";
    let toks = lex(src);
    check_invariants(src, &toks);
    assert_eq!(toks[0].kind, TokKind::StrLit);
    assert_eq!((toks[1].kind, toks[1].line), (TokKind::CharLit, 2));
    assert_eq!(
        (toks[2].kind, toks[2].text.as_str(), toks[2].line, toks[2].col),
        (TokKind::Ident, "ident", 3, 1)
    );
}

#[test]
fn multibyte_columns_count_characters_not_bytes() {
    // é is 2 bytes, 1 char; the emoji is 4 bytes, 1 char.
    let src = "é🦀 x";
    let toks = lex(src);
    check_invariants(src, &toks);
    let x = toks.iter().find(|t| t.text == "x").expect("x token");
    assert_eq!((x.line, x.col), (1, 4));
}
