//! State fidelity and trace distance.

use qfc_mathkit::hermitian::{eigh, sqrtm_psd};

use crate::density::DensityMatrix;
use crate::state::PureState;

/// Uhlmann fidelity `F(ρ, σ) = (Tr √(√ρ·σ·√ρ))²`, in `[0, 1]`.
///
/// This is the quantity the paper reports for tomography (64 % for the
/// four-photon state).
///
/// # Panics
///
/// Panics on dimension mismatch.
///
/// ```
/// use qfc_quantum::density::DensityMatrix;
/// use qfc_quantum::bell::bell_phi_plus;
/// use qfc_quantum::fidelity::state_fidelity;
///
/// let rho = DensityMatrix::from_pure(&bell_phi_plus());
/// assert!((state_fidelity(&rho, &rho) - 1.0).abs() < 1e-9);
/// ```
pub fn state_fidelity(rho: &DensityMatrix, sigma: &DensityMatrix) -> f64 {
    assert_eq!(rho.dim(), sigma.dim(), "fidelity dimension mismatch");
    let sq = sqrtm_psd(rho.as_matrix());
    let inner = &(&sq * sigma.as_matrix()) * &sq;
    let root = sqrtm_psd(&inner);
    let f = root.trace().re.powi(2);
    f.clamp(0.0, 1.0 + 1e-9).min(1.0)
}

/// Fidelity of a density matrix with a pure target:
/// `F = ⟨ψ|ρ|ψ⟩` (equal to Uhlmann fidelity for pure targets).
pub fn fidelity_with_pure(rho: &DensityMatrix, target: &PureState) -> f64 {
    assert_eq!(rho.dim(), target.dim(), "fidelity dimension mismatch");
    rho.as_matrix()
        .sandwich(target.as_vector(), target.as_vector())
        .re
        .clamp(0.0, 1.0)
}

/// Trace distance `D(ρ, σ) = ½·Tr|ρ − σ|`, in `[0, 1]`.
pub fn trace_distance(rho: &DensityMatrix, sigma: &DensityMatrix) -> f64 {
    assert_eq!(rho.dim(), sigma.dim(), "trace distance dimension mismatch");
    let diff = rho.as_matrix() - sigma.as_matrix();
    0.5 * eigh(&diff).eigenvalues.iter().map(|l| l.abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::{bell_phi_plus, bell_psi_minus, werner_state};

    #[test]
    fn fidelity_with_self_is_one() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        assert!((state_fidelity(&rho, &rho) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fidelity_of_orthogonal_pure_states_is_zero() {
        let a = DensityMatrix::from_pure(&bell_phi_plus());
        let b = DensityMatrix::from_pure(&bell_psi_minus());
        assert!(state_fidelity(&a, &b) < 1e-9);
    }

    #[test]
    fn pure_target_shortcut_agrees_with_uhlmann() {
        let rho = werner_state(0.7, 0.4);
        let target = crate::bell::bell_phi(0.4);
        let f1 = fidelity_with_pure(&rho, &target);
        let f2 = state_fidelity(&rho, &DensityMatrix::from_pure(&target));
        assert!((f1 - f2).abs() < 1e-6, "{f1} vs {f2}");
    }

    #[test]
    fn fidelity_with_maximally_mixed() {
        let rho = DensityMatrix::from_pure(&bell_phi_plus());
        let mixed = DensityMatrix::maximally_mixed(2);
        // F(|ψ⟩, I/4) = 1/4.
        assert!((state_fidelity(&rho, &mixed) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn fidelity_is_symmetric() {
        let a = werner_state(0.6, 0.0);
        let b = werner_state(0.9, 1.0);
        assert!((state_fidelity(&a, &b) - state_fidelity(&b, &a)).abs() < 1e-8);
    }

    #[test]
    fn trace_distance_bounds() {
        let a = DensityMatrix::from_pure(&bell_phi_plus());
        let b = DensityMatrix::from_pure(&bell_psi_minus());
        assert!((trace_distance(&a, &b) - 1.0).abs() < 1e-9, "orthogonal pure states");
        assert!(trace_distance(&a, &a) < 1e-10);
    }

    #[test]
    fn fuchs_van_de_graaf_inequality() {
        // 1 − √F ≤ D ≤ √(1 − F)
        let a = werner_state(0.83, 0.0);
        let b = DensityMatrix::from_pure(&bell_phi_plus());
        let f = state_fidelity(&a, &b);
        let d = trace_distance(&a, &b);
        assert!(1.0 - f.sqrt() <= d + 1e-9);
        assert!(d <= (1.0 - f).sqrt() + 1e-9);
    }
}
