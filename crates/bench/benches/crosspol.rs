//! §III bench targets: F4 type-II CAR, F5 OPO transfer curve, F6
//! stimulated-FWM suppression sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qfc_core::crosspol::{
    run_crosspol_experiment, run_power_sweep, run_suppression_sweep, CrossPolConfig,
};
use qfc_core::source::QfcSource;

fn f4_type2_car(c: &mut Criterion) {
    let source = QfcSource::paper_device_type2();
    let mut cfg = CrossPolConfig::fast_demo();
    cfg.duration_s = 20.0;
    let mut g = c.benchmark_group("f4_type2_car");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let report = run_crosspol_experiment(black_box(&source), black_box(&cfg), 11);
            black_box(report.car)
        })
    });
    g.finish();
}

fn f5_opo_threshold(c: &mut Criterion) {
    let source = QfcSource::paper_device_type2();
    let mut g = c.benchmark_group("f5_opo_threshold");
    g.bench_function("regenerate", |b| {
        b.iter(|| {
            let sweep = run_power_sweep(black_box(&source), 16);
            black_box((sweep.threshold_w, sweep.below_exponent, sweep.above_exponent))
        })
    });
    g.finish();
}

fn f6_suppression(c: &mut Criterion) {
    let offsets: Vec<f64> = (0..16).map(|k| k as f64 * 3.0).collect();
    let mut g = c.benchmark_group("f6_suppression");
    g.bench_function("regenerate", |b| {
        b.iter(|| black_box(run_suppression_sweep(black_box(&offsets))))
    });
    g.finish();
}

criterion_group!(benches, f4_type2_car, f5_opo_threshold, f6_suppression);
criterion_main!(benches);
