//! Lugiato–Lefever equation (LLE): the dynamical Kerr-comb simulator.
//!
//! Above the OPO threshold the ring's classical field obeys the
//! normalized LLE
//!
//! `∂ψ/∂t = −(1 + iα)ψ + i|ψ|²ψ − i(η/2)·∂²ψ/∂θ² + F`
//!
//! with detuning `α`, dispersion sign `η` (−1 anomalous), and pump `F`.
//! The homogeneous (single-mode) solution destabilizes through modulation
//! instability once the circulating intensity exceeds 1 (normalized),
//! spawning the comb sidebands — the dynamical counterpart of the static
//! threshold in [`crate::opo`]. Integration is split-step Fourier:
//! dispersion/loss/detuning exactly in the spectral domain, the Kerr
//! rotation exactly in the azimuthal domain.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::complex::Complex64;
use qfc_mathkit::fft::{fft, fft_frequency, ifft};

/// Parameters of a normalized LLE run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LleParameters {
    /// Cavity detuning α (normalized to the half linewidth).
    pub detuning: f64,
    /// Normalized pump amplitude `F` (threshold for MI comb formation is
    /// near `F² = 1` at small detuning).
    pub pump: f64,
    /// Dispersion coefficient: negative = anomalous (comb-forming).
    pub dispersion: f64,
    /// Number of azimuthal grid points (power of two).
    pub modes: usize,
    /// Integrator time step (units of photon lifetimes).
    pub dt: f64,
}

impl LleParameters {
    /// A comb-forming operating point: anomalous dispersion, pump above
    /// the MI threshold.
    pub fn above_threshold() -> Self {
        Self {
            detuning: 1.0,
            pump: 1.9,
            dispersion: -0.02,
            modes: 128,
            dt: 2e-3,
        }
    }

    /// A below-threshold point: the field stays homogeneous.
    pub fn below_threshold() -> Self {
        Self {
            pump: 0.7,
            ..Self::above_threshold()
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two grid or non-positive step.
    pub fn validate(&self) {
        assert!(
            self.modes >= 8 && self.modes.is_power_of_two(),
            "modes must be a power of two ≥ 8"
        );
        assert!(self.dt > 0.0, "time step must be positive");
        assert!(self.pump >= 0.0, "pump must be non-negative");
    }
}

/// State of an LLE integration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LleState {
    field: Vec<Complex64>,
    time: f64,
}

impl LleState {
    /// The intracavity field over the azimuthal grid.
    pub fn field(&self) -> &[Complex64] {
        &self.field
    }

    /// Elapsed normalized time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Mean circulating intensity `⟨|ψ|²⟩`.
    pub fn mean_intensity(&self) -> f64 {
        self.field.iter().map(|z| z.norm_sqr()).sum::<f64>() / cast::to_f64(self.field.len())
    }

    /// Power spectrum over the comb modes (FFT magnitude squared,
    /// normalized per mode).
    pub fn spectrum(&self) -> Vec<f64> {
        let mut f = self.field.clone();
        fft(&mut f);
        let n = cast::to_f64(self.field.len());
        f.iter().map(|z| z.norm_sqr() / (n * n)).collect()
    }

    /// Fraction of the optical power in nonzero comb modes — the comb
    /// conversion efficiency; ≈ 0 below threshold.
    pub fn sideband_fraction(&self) -> f64 {
        let spec = self.spectrum();
        let total: f64 = spec.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        (total - spec[0]) / total
    }
}

/// The LLE integrator.
#[derive(Debug, Clone)]
pub struct LleSimulator {
    params: LleParameters,
    state: LleState,
    /// Precomputed spectral propagator for one half step.
    half_linear: Vec<Complex64>,
}

impl LleSimulator {
    /// Creates a simulator seeded with the pump-balanced homogeneous
    /// field plus a tiny azimuthal perturbation (the vacuum fluctuation
    /// that lets modulation instability start).
    pub fn new(params: LleParameters) -> Self {
        params.validate();
        let n = params.modes;
        // Homogeneous steady-state estimate: ψ₀ ≈ F/(1 + iα) for small
        // intensity; good enough as an initial condition.
        let psi0 = Complex64::real(params.pump) / Complex64::new(1.0, params.detuning);
        let field: Vec<Complex64> = (0..n)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * cast::to_f64(k) / cast::to_f64(n);
                psi0 + Complex64::real(1e-6 * (7.0 * theta).cos() + 1e-6 * (11.0 * theta).sin())
            })
            .collect();
        let dx = 2.0 * std::f64::consts::PI / cast::to_f64(n);
        let half_linear: Vec<Complex64> = (0..n)
            .map(|k| {
                let omega = fft_frequency(k, n, dx);
                // Linear operator: −(1 + iα) + i(η/2)ω² applied for dt/2.
                let l = Complex64::new(-1.0, -params.detuning)
                    + Complex64::imag(0.5 * params.dispersion * omega * omega);
                (l.scale(params.dt / 2.0)).exp()
            })
            .collect();
        Self {
            params,
            state: LleState { field, time: 0.0 },
            half_linear,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &LleParameters {
        &self.params
    }

    /// The current state.
    pub fn state(&self) -> &LleState {
        &self.state
    }

    /// Advances one split-step: half linear (spectral), full nonlinear +
    /// pump (azimuthal), half linear.
    pub fn step(&mut self) {
        let dt = self.params.dt;
        // Half linear step.
        fft(&mut self.state.field);
        for (z, p) in self.state.field.iter_mut().zip(&self.half_linear) {
            *z *= *p;
        }
        ifft(&mut self.state.field);
        // Nonlinear Kerr rotation (exact) + pump (Euler).
        for z in self.state.field.iter_mut() {
            let rot = Complex64::imag(z.norm_sqr() * dt).exp();
            *z = *z * rot + Complex64::real(self.params.pump * dt);
        }
        // Half linear step.
        fft(&mut self.state.field);
        for (z, p) in self.state.field.iter_mut().zip(&self.half_linear) {
            *z *= *p;
        }
        ifft(&mut self.state.field);
        self.state.time += dt;
    }

    /// Runs `steps` integration steps and returns the final state.
    pub fn run(&mut self, steps: usize) -> &LleState {
        for _ in 0..steps {
            self.step();
        }
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_stays_homogeneous() {
        let mut sim = LleSimulator::new(LleParameters::below_threshold());
        sim.run(20_000);
        let s = sim.state();
        assert!(
            s.sideband_fraction() < 1e-6,
            "sidebands {}",
            s.sideband_fraction()
        );
        // Homogeneous intensity solves ρ·(1 + (α − ρ)²) = F²; just check
        // it is steady and O(F²/(1+α²)).
        let rho = s.mean_intensity();
        assert!(rho > 0.05 && rho < 1.0, "ρ = {rho}");
    }

    #[test]
    fn above_threshold_grows_a_comb() {
        let mut sim = LleSimulator::new(LleParameters::above_threshold());
        sim.run(60_000);
        let s = sim.state();
        assert!(
            s.sideband_fraction() > 0.05,
            "sidebands {}",
            s.sideband_fraction()
        );
        // The comb has multiple lines above 1e-6 of the pump line.
        let spec = s.spectrum();
        let pump_line = spec[0];
        let lines = spec.iter().filter(|&&p| p > 1e-6 * pump_line).count();
        assert!(lines > 5, "lines {lines}");
    }

    #[test]
    fn dynamical_threshold_matches_mi_criterion() {
        // MI requires circulating intensity ρ ≥ 1: a pump with ρ < 1
        // grows nothing even after long integration.
        let mut below = LleSimulator::new(LleParameters::below_threshold());
        below.run(40_000);
        let mut above = LleSimulator::new(LleParameters::above_threshold());
        above.run(40_000);
        assert!(below.state().sideband_fraction() < 1e-6);
        assert!(above.state().sideband_fraction() > below.state().sideband_fraction());
        assert!(above.state().mean_intensity() > 0.9);
    }

    #[test]
    fn energy_stays_bounded() {
        let mut sim = LleSimulator::new(LleParameters::above_threshold());
        for _ in 0..10 {
            sim.run(2000);
            let rho = sim.state().mean_intensity();
            assert!(rho.is_finite() && rho < 50.0, "ρ = {rho}");
        }
    }

    #[test]
    fn time_advances() {
        let mut sim = LleSimulator::new(LleParameters::below_threshold());
        sim.run(100);
        assert!((sim.state().time() - 100.0 * sim.params().dt).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_grid_rejected() {
        let mut p = LleParameters::below_threshold();
        p.modes = 100;
        let _ = LleSimulator::new(p);
    }
}
