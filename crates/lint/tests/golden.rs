//! Golden-file tests: every fixture under `tests/fixtures/` declares its
//! crate context on the first line (`//@ crate: <name>`) and marks each
//! expected finding with a trailing `//~ ERROR <rule>` (this line) or a
//! standalone `//~^ ERROR <rule>` (previous line). The harness runs the
//! engine over the fixture and demands an exact match — no missing and
//! no surplus findings.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use qfc_lint::lint_source;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses `//@ crate: <name>` from the fixture's first line.
fn crate_context(src: &str, name: &str) -> String {
    src.lines()
        .next()
        .and_then(|l| l.trim().strip_prefix("//@ crate:"))
        .unwrap_or_else(|| panic!("fixture {name} missing `//@ crate: <name>` header"))
        .trim()
        .to_string()
}

/// Collects `(line, rule)` expectations from `//~ ERROR` markers.
fn expected_findings(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line_no = u32::try_from(i + 1).unwrap_or(u32::MAX);
        if let Some(pos) = line.find("//~") {
            let marker = &line[pos + 3..];
            let (target, rest) = match marker.strip_prefix('^') {
                Some(rest) => (line_no - 1, rest),
                None => (line_no, marker),
            };
            let rule = rest
                .trim_start()
                .strip_prefix("ERROR")
                .unwrap_or_else(|| panic!("marker on line {line_no} must read `ERROR <rule>`"))
                .trim()
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("marker on line {line_no} names no rule"))
                .to_string();
            out.push((target, rule));
        }
    }
    out.sort();
    out
}

#[test]
fn every_fixture_matches_its_markers_exactly() {
    let mut rules_covered: BTreeSet<String> = BTreeSet::new();
    let mut fixtures = 0usize;
    let mut paths: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures found");

    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture name")
            .to_string();
        let src = fs::read_to_string(&path).expect("read fixture");
        let crate_name = crate_context(&src, &name);
        let expected = expected_findings(&src);

        let mut got: Vec<(u32, String)> = lint_source(&crate_name, &name, &src)
            .findings
            .into_iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        got.sort();

        assert_eq!(
            got, expected,
            "fixture {name} (crate {crate_name}): findings disagree with //~ markers"
        );
        rules_covered.extend(expected.into_iter().map(|(_, r)| r));
        fixtures += 1;
    }

    // Every file-level rule must be proven to fire by at least one fixture
    // (forbid-unsafe and ci-roster are workspace-level; see workspace_rules.rs).
    for rule in [
        "lossy-cast",
        "determinism",
        "rng-lane",
        "rng-lane-flow",
        "panic-reachability",
        "par-merge-order",
        "error-taxonomy",
        "hot-loop-alloc",
        "bad-directive",
        "unused-allow",
    ] {
        assert!(
            rules_covered.contains(rule),
            "no fixture exercises rule `{rule}` ({fixtures} fixtures scanned)"
        );
    }
}
