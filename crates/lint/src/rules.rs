//! The rule taxonomy: names, summaries, and per-crate applicability.
//!
//! Rules encode *domain* invariants of this workspace — the software
//! analogue of the paper's metrological-stability claim is that every
//! published number is a pure, byte-identical function of explicit
//! seeds, so anything that injects wall-clock time, ambient entropy,
//! unordered iteration, silent value truncation, or an unstructured
//! panic into a library crate is a defect class, not a style nit.

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case rule name (used in reports and allow directives).
    pub name: &'static str,
    /// One-line summary shown by `qfc-lint --list-rules`.
    pub summary: &'static str,
    /// Whether a `// qfc-lint: allow(<rule>) — <justification>` directive
    /// may suppress this rule at a specific line.
    pub allowable: bool,
}

/// Every rule the engine can emit, in canonical (report) order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "lossy-cast",
        summary: "no `as` numeric casts in library crates — use qfc_mathkit::cast, \
                  From/try_from, to_bits, or total_cmp",
        allowable: true,
    },
    Rule {
        name: "determinism",
        summary: "no wall-clock, ambient entropy, or unordered-iteration types \
                  (Instant/SystemTime/thread_rng/from_entropy/HashMap/HashSet) \
                  in result-affecting crates",
        allowable: true,
    },
    Rule {
        name: "rng-lane",
        summary: "drivers obtain RNGs only via qfc_mathkit::rng split_seed lanes, \
                  never raw seed_from_u64/from_seed",
        allowable: true,
    },
    Rule {
        name: "panic-surface",
        summary: "no panic!/unreachable!/todo!/unimplemented! in library crates \
                  outside annotated validated legacy wrappers",
        allowable: true,
    },
    Rule {
        name: "error-taxonomy",
        summary: "public fallible fns in library crates return QfcError/QfcResult",
        allowable: true,
    },
    Rule {
        name: "hot-loop-alloc",
        summary: "no Vec::new/vec!/.clone() inside a `// qfc-lint: hot` region — \
                  preallocate or hoist buffers out of shot kernels",
        allowable: true,
    },
    Rule {
        name: "forbid-unsafe",
        summary: "every library crate root declares #![forbid(unsafe_code)]",
        allowable: false,
    },
    Rule {
        name: "ci-roster",
        summary: "scripts/ci.sh derives its clippy roster from the workspace \
                  (never excluding qfc-campaign), invokes qfc-lint, and its \
                  bench baseline carries every gated workload, so no crate or \
                  workload can silently skip a gate",
        allowable: false,
    },
    Rule {
        name: "bad-directive",
        summary: "a qfc-lint allow directive must name known rules and carry a \
                  non-empty justification",
        allowable: false,
    },
    Rule {
        name: "unused-allow",
        summary: "an allow directive whose target line has no matching finding is \
                  stale and must be removed",
        allowable: false,
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Crate directories under `crates/` that are *not* library crates and
/// are therefore outside the lint scope (the bench harness trades rigor
/// for throughput by design).
pub const NON_LIBRARY_DIRS: &[&str] = &["bench"];

/// Workloads that must be present in the bench baseline referenced by
/// `scripts/ci.sh --check-baseline` (the `ci-roster` check): dropping
/// one from the baseline would silently remove its allocation and
/// wall-time regression gate. The two spectral sweeps gate the SoA
/// batch kernels; `campaign-checkpoint` gates the campaign engine's
/// checkpoint overhead and resume latency; `streaming-tomography`
/// gates the streaming count accumulator and the accelerated RρR
/// reconstruction path.
pub const GATED_WORKLOADS: &[&str] = &[
    "ring-dispersion-sweep",
    "opo-threshold-sweep",
    "campaign-checkpoint",
    "streaming-tomography",
];

/// Crates the clippy no-unwrap roster must always gate when they exist
/// in the workspace (the `ci-roster` check). `qfc-campaign` is pinned
/// explicitly: its crash-recovery guarantees rest on error-path
/// returns, so excluding it from the panic-freedom gate (the way
/// `qfc-bench` is excluded) would be a silent robustness regression.
pub const CLIPPY_REQUIRED: &[&str] = &["qfc-campaign"];

/// Crates exempt from `error-taxonomy`: they sit *below* `qfc-faults`
/// in the dependency graph (or are zero-dependency by design) and so
/// cannot name `QfcError`. Their local error types convert into
/// `QfcError` at the faults boundary.
const ERROR_TAXONOMY_EXEMPT: &[&str] = &["qfc-mathkit", "qfc-obs", "qfc-runtime", "qfc-lint"];

/// Crates exempt from `rng-lane`: `qfc-mathkit` *implements* the lane
/// discipline (`rng_from_seed`/`split_seed`), so it is the one place a
/// raw `seed_from_u64` is legitimate.
const RNG_LANE_EXEMPT: &[&str] = &["qfc-mathkit"];

/// Whether `rule` applies to `crate_name` (a library crate).
pub fn rule_applies(rule: &str, crate_name: &str) -> bool {
    match rule {
        "error-taxonomy" => !ERROR_TAXONOMY_EXEMPT.contains(&crate_name),
        "rng-lane" => !RNG_LANE_EXEMPT.contains(&crate_name),
        _ => true,
    }
}

/// Primitive numeric type names, the right-hand side of a flagged `as`.
pub const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Identifiers flagged by the `determinism` rule.
pub const DETERMINISM_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "HashMap",
    "HashSet",
];

/// Identifiers flagged by the `rng-lane` rule.
pub const RNG_LANE_IDENTS: &[&str] = &["seed_from_u64", "from_seed"];

/// Macro names flagged by the `panic-surface` rule (when followed by `!`).
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_kebab_case() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(
                r.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{}",
                r.name
            );
            assert!(RULES[i + 1..].iter().all(|s| s.name != r.name));
        }
    }

    #[test]
    fn scoping_encodes_the_dependency_graph() {
        assert!(!rule_applies("error-taxonomy", "qfc-mathkit"));
        assert!(rule_applies("error-taxonomy", "qfc-core"));
        assert!(!rule_applies("rng-lane", "qfc-mathkit"));
        assert!(rule_applies("rng-lane", "qfc-core"));
        assert!(rule_applies("lossy-cast", "qfc-mathkit"));
    }

    #[test]
    fn lookup_finds_every_rule() {
        for r in RULES {
            assert!(rule_by_name(r.name).is_some());
        }
        assert!(rule_by_name("nope").is_none());
    }
}
