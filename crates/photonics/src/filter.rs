//! Wavelength demultiplexing filters.
//!
//! The experiments route each comb channel to its own detector through a
//! 200-GHz DWDM demultiplexer. The filter model captures what matters for
//! the measured figures: in-band insertion loss (part of the collection
//! efficiency) and finite adjacent-channel isolation (the only physical
//! mechanism that could put counts on the off-diagonal of the §II
//! coincidence matrix).

use serde::{Deserialize, Serialize};

use crate::units::Frequency;

/// Passband shape of a DWDM channel filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassbandShape {
    /// Gaussian passband (thin-film filters).
    Gaussian,
    /// Super-Gaussian of order 4 ("flat-top", AWG-class).
    FlatTop,
}

/// One channel of a DWDM demultiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelFilter {
    /// Passband center.
    pub center: Frequency,
    /// 3-dB full bandwidth.
    pub bandwidth: Frequency,
    /// In-band (peak) transmission, 0‥1.
    pub peak_transmission: f64,
    /// Passband shape.
    pub shape: PassbandShape,
}

impl ChannelFilter {
    /// A 200-GHz-grid telecom demux channel: 150-GHz flat-top passband,
    /// 0.8 peak transmission (≈1 dB insertion loss).
    pub fn telecom_200ghz(center: Frequency) -> Self {
        Self {
            center,
            bandwidth: Frequency::from_ghz(150.0),
            peak_transmission: 0.8,
            shape: PassbandShape::FlatTop,
        }
    }

    /// Power transmission at a frequency.
    pub fn transmission(&self, f: Frequency) -> f64 {
        let x = (f.hz() - self.center.hz()) / (0.5 * self.bandwidth.hz());
        let exponent = match self.shape {
            // T(x) = exp(−ln2 · x²ᵏ) with k = 1 (Gaussian) or 4 (flat-top),
            // giving T(±1) = ½ (the 3-dB points).
            PassbandShape::Gaussian => std::f64::consts::LN_2 * x * x,
            PassbandShape::FlatTop => std::f64::consts::LN_2 * x.powi(8),
        };
        self.peak_transmission * (-exponent).exp()
    }

    /// Isolation (in dB, positive) against a signal at frequency `f`:
    /// `−10·log10(T(f)/T_peak)`.
    pub fn isolation_db(&self, f: Frequency) -> f64 {
        let t = self.transmission(f) / self.peak_transmission;
        if t <= 0.0 {
            f64::INFINITY
        } else {
            -10.0 * t.log10()
        }
    }
}

/// A bank of channel filters forming the demultiplexer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demultiplexer {
    channels: Vec<ChannelFilter>,
}

impl Demultiplexer {
    /// Builds a demux with one filter per listed center frequency.
    pub fn new(centers: &[Frequency]) -> Self {
        Self {
            channels: centers
                .iter()
                .map(|&c| ChannelFilter::telecom_200ghz(c))
                .collect(),
        }
    }

    /// Number of output ports.
    pub fn ports(&self) -> usize {
        self.channels.len()
    }

    /// The filter at output port `i`.
    pub fn filter(&self, i: usize) -> &ChannelFilter {
        &self.channels[i]
    }

    /// Power routing matrix entry: fraction of light at the center of
    /// port `j`'s channel that leaks out of port `i`.
    pub fn crosstalk(&self, i: usize, j: usize) -> f64 {
        self.channels[i].transmission(self.channels[j].center)
    }

    /// Worst adjacent-channel isolation across the bank, dB.
    pub fn worst_adjacent_isolation_db(&self) -> f64 {
        let mut worst = f64::INFINITY;
        for i in 0..self.ports() {
            for j in 0..self.ports() {
                if i.abs_diff(j) == 1 {
                    worst = worst.min(self.channels[i].isolation_db(self.channels[j].center));
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Frequency> {
        (0..n)
            .map(|k| Frequency::from_thz(193.0) + Frequency::from_ghz(200.0 * k as f64))
            .collect()
    }

    #[test]
    fn peak_transmission_at_center() {
        let f = ChannelFilter::telecom_200ghz(Frequency::from_thz(193.1));
        assert!((f.transmission(f.center) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn three_db_points() {
        for shape in [PassbandShape::Gaussian, PassbandShape::FlatTop] {
            let f = ChannelFilter {
                center: Frequency::from_thz(193.1),
                bandwidth: Frequency::from_ghz(150.0),
                peak_transmission: 1.0,
                shape,
            };
            let edge = Frequency::from_hz(f.center.hz() + 75e9);
            assert!((f.transmission(edge) - 0.5).abs() < 1e-9, "{shape:?}");
        }
    }

    #[test]
    fn flat_top_flatter_in_band_steeper_out() {
        let center = Frequency::from_thz(193.1);
        let mk = |shape| ChannelFilter {
            center,
            bandwidth: Frequency::from_ghz(150.0),
            peak_transmission: 1.0,
            shape,
        };
        let gauss = mk(PassbandShape::Gaussian);
        let flat = mk(PassbandShape::FlatTop);
        let in_band = Frequency::from_hz(center.hz() + 40e9);
        let out_band = Frequency::from_hz(center.hz() + 200e9);
        assert!(flat.transmission(in_band) > gauss.transmission(in_band));
        assert!(flat.transmission(out_band) < gauss.transmission(out_band));
    }

    #[test]
    fn adjacent_channel_isolation_strong() {
        let demux = Demultiplexer::new(&grid(5));
        // Flat-top on a 200-GHz grid: adjacent leakage far below −25 dB.
        assert!(demux.worst_adjacent_isolation_db() > 25.0);
    }

    #[test]
    fn crosstalk_matrix_diagonal_dominant() {
        let demux = Demultiplexer::new(&grid(4));
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    assert!((demux.crosstalk(i, j) - 0.8).abs() < 1e-12);
                } else {
                    assert!(demux.crosstalk(i, j) < 1e-3, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn isolation_db_of_center_is_zero() {
        let f = ChannelFilter::telecom_200ghz(Frequency::from_thz(193.1));
        assert!(f.isolation_db(f.center).abs() < 1e-9);
        assert!(f.isolation_db(Frequency::from_thz(194.0)) > 40.0);
    }
}
