//! Device-design exploration: how the coupling choice trades linewidth
//! (quantum-memory compatibility), OPO threshold, pair rate, and field
//! enhancement — the design space behind the paper's 110-MHz / 14-mW
//! operating point.
//!
//! ```sh
//! cargo run --release --example design_sweep
//! ```

use qfc::photonics::memory::{ring_memory_efficiency, MemoryProfile};
use qfc::photonics::opo;
use qfc::photonics::ring::MicroringBuilder;
use qfc::photonics::units::{Frequency, Power};
use qfc::photonics::waveguide::{Polarization, Waveguide};
use qfc::photonics::fwm;

fn main() {
    println!("Sweeping the loaded linewidth of a 200-GHz Hydex ring");
    println!("(pump fixed at 15 mW on-chip for the rate column)\n");
    println!(
        "{:>10}  {:>9}  {:>9}  {:>11}  {:>12}  {:>10}",
        "linewidth", "loaded Q", "FE^2", "P_th (mW)", "rate (Hz)", "memory η"
    );

    let memory = MemoryProfile::atomic_100mhz();
    for lw_mhz in [25.0, 50.0, 110.0, 220.0, 440.0, 880.0] {
        let mut b = MicroringBuilder::new(Waveguide::hydex_paper());
        b.anchor(Frequency::from_thz(193.4))
            .radius_for_fsr(Frequency::from_ghz(200.0));
        b.coupling_for_linewidth(Frequency::from_hz(lw_mhz * 1e6));
        let ring = b.build();
        let rate = fwm::pair_rate_cw(&ring, Polarization::Te, Power::from_mw(15.0), 1);
        println!(
            "{:>7.0} MHz  {:>9.2e}  {:>9.0}  {:>11.1}  {:>12.1}  {:>10.3}",
            lw_mhz,
            ring.q_loaded(),
            ring.field_enhancement_power(),
            opo::threshold(&ring).mw(),
            rate,
            ring_memory_efficiency(&ring, &memory),
        );
    }

    println!(
        "\nThe paper's choice (110 MHz) sits at the knee: narrow enough for\n\
         ~50 % direct memory acceptance and a 14-mW threshold, wide enough\n\
         to keep the per-channel pair rate in the tens of Hz."
    );
}
