//! # qfc-interferometry
//!
//! Interferometric substrate of the `qfc` workspace: unbalanced Michelson
//! interferometers for writing (double-pulse pump preparation) and reading
//! (time-bin analysis) the time-bin qubits of §IV–V, plus the phase-noise
//! model, piezo actuator, and stabilization loop that determine how much
//! fringe visibility survives.
//!
//! ## Example
//!
//! ```
//! use qfc_interferometry::michelson::UnbalancedMichelson;
//! use qfc_quantum::state::PureState;
//!
//! let analyzer = UnbalancedMichelson::paper_instrument(0.0);
//! let p = analyzer.slot_probabilities(&PureState::plus());
//! assert!((p[1] - 0.5).abs() < 1e-12); // constructive middle slot
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod michelson;
pub mod stabilization;

pub use michelson::UnbalancedMichelson;
pub use stabilization::{visibility_factor, PhaseNoiseModel, PiezoPhaseShifter};
