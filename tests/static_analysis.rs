//! Workspace-level static-analysis gate, as a test: the whole tree must
//! be clean under `qfc-lint --deny` semantics, and the canonical report
//! must be byte-identical across runs (the same determinism bar the
//! simulations themselves are held to).

use std::path::Path;

use qfc_lint::report::to_json;
use qfc_lint::{find_workspace_root, run};

#[test]
fn workspace_is_lint_clean_at_deny_level() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = run(&root).expect("lint run");
    assert!(
        report.crates.iter().any(|c| c == "qfc-lint"),
        "qfc-lint must scan itself; scanned: {:?}",
        report.crates
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}:{} [{}] {}", f.file, f.line, f.col, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every allow directive must still be earning its keep. The v2
    // semantic re-audit (exact remove-one-recompute for fn-level
    // panic-reachability allows) ran as part of `run`, so this equality
    // is the zero-unused-allow regression gate.
    assert_eq!(
        report.allows_total, report.allows_used,
        "stale allow directives present"
    );
    // The allow budget is capped: the semantic engine exists to *shrink*
    // the excuse surface, so the directive count must never creep back
    // above the pre-semantic baseline of 50.
    assert!(
        report.allows_total <= 50,
        "allow-directive budget exceeded: {} > 50",
        report.allows_total
    );
    // The call graph is populated and the panic audit is live.
    assert!(report.graph.nodes > 500, "call graph suspiciously small");
    assert!(report.graph.edges > 1000, "call graph suspiciously sparse");
    assert!(
        report.graph.panic_sites >= report.graph.reachable_panic_sites,
        "reachable panic sites exceed total panic sites"
    );
}

#[test]
fn lint_report_is_byte_identical_across_runs() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let first = run(&root).expect("first run");
    let second = run(&root).expect("second run");
    assert_eq!(
        to_json(&first),
        to_json(&second),
        "canonical JSON report is not deterministic"
    );
    assert_eq!(
        first.callgraph, second.callgraph,
        "CALLGRAPH.json is not byte-deterministic"
    );
    assert!(
        first.callgraph.contains("\"schema\": \"qfc-callgraph/1\""),
        "call graph missing its schema marker"
    );
    let json = to_json(&first);
    assert!(!json.contains(&root.display().to_string()), "report leaks absolute paths");
    assert!(
        !first.callgraph.contains(&root.display().to_string()),
        "call graph leaks absolute paths"
    );
}
