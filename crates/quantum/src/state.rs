//! Pure quantum states of qubit registers.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::cvector::CVector;

/// A normalized pure state of an `n`-qubit register.
///
/// Basis ordering is big-endian: qubit 0 is the most significant bit of
/// the computational-basis index, so `|10⟩` (qubit 0 = 1, qubit 1 = 0) is
/// index `0b10 = 2`.
///
/// # Examples
///
/// ```
/// use qfc_quantum::state::PureState;
///
/// let plus = PureState::plus();
/// assert_eq!(plus.qubits(), 1);
/// assert!((plus.probability(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PureState {
    amps: CVector,
    qubits: usize,
}

impl PureState {
    /// The all-zeros state `|0…0⟩` of `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 20` (dimension guard).
    pub fn zero(n: usize) -> Self {
        assert!(n > 0 && n <= 20, "qubit count out of supported range");
        Self {
            amps: CVector::basis(1 << n, 0),
            qubits: n,
        }
    }

    /// Single-qubit `|0⟩`.
    pub fn ket0() -> Self {
        Self::zero(1)
    }

    /// Single-qubit `|1⟩`.
    pub fn ket1() -> Self {
        Self {
            amps: CVector::basis(2, 1),
            qubits: 1,
        }
    }

    /// Single-qubit `|+⟩ = (|0⟩ + |1⟩)/√2`.
    pub fn plus() -> Self {
        Self::from_amplitudes(CVector::from_real(&[1.0, 1.0])).unwrap_or_else(|| unreachable!("|+> amplitudes are valid")) // qfc-lint: allow(panic-reachability) — invariant: |+> amplitudes are nonzero by construction
    }

    /// Single-qubit `|−⟩ = (|0⟩ − |1⟩)/√2`.
    pub fn minus() -> Self {
        Self::from_amplitudes(CVector::from_real(&[1.0, -1.0])).unwrap_or_else(|| unreachable!("|-> amplitudes are valid")) // qfc-lint: allow(panic-reachability) — invariant: |-> amplitudes are nonzero by construction
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Errors
    ///
    /// Returns `None` when the length is not a power of two ≥ 2 or the
    /// vector is numerically zero.
    pub fn from_amplitudes(amps: CVector) -> Option<Self> {
        let dim = amps.dim();
        if dim < 2 || !dim.is_power_of_two() {
            return None;
        }
        if amps.norm() <= 0.0 {
            return None;
        }
        Some(Self {
            amps: amps.normalized(),
            qubits: cast::u32_to_usize(dim.trailing_zeros()),
        })
    }

    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.amps.dim()
    }

    /// Amplitude of computational-basis state `idx`.
    pub fn amplitude(&self, idx: usize) -> Complex64 {
        self.amps[idx]
    }

    /// Probability of measuring computational-basis outcome `idx`.
    pub fn probability(&self, idx: usize) -> f64 {
        self.amps[idx].norm_sqr()
    }

    /// All computational-basis probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The amplitude vector.
    pub fn as_vector(&self) -> &CVector {
        &self.amps
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn inner(&self, other: &Self) -> Complex64 {
        self.amps.dot(&other.amps)
    }

    /// Squared overlap `|⟨self|other⟩|²` (pure-state fidelity).
    pub fn overlap(&self, other: &Self) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Tensor product `self ⊗ other`.
    pub fn tensor(&self, other: &Self) -> Self {
        Self {
            amps: self.amps.kron(&other.amps),
            qubits: self.qubits + other.qubits,
        }
    }

    /// Applies a unitary (or any operator, renormalizing) to the state.
    ///
    /// # Panics
    ///
    /// Panics if the operator dimension does not match, or annihilates
    /// the state.
    pub fn apply(&self, op: &CMatrix) -> Self {
        assert_eq!(op.cols(), self.dim(), "operator dimension mismatch");
        let out = op.matvec(&self.amps);
        Self::from_amplitudes(out).unwrap_or_else(|| panic!("operator annihilated the state")) // qfc-lint: allow(panic-reachability) — documented `# Panics` contract: annihilating operator is caller error
    }

    /// Expectation value `⟨ψ|A|ψ⟩` (real part; `A` should be Hermitian).
    pub fn expectation(&self, op: &CMatrix) -> f64 {
        op.sandwich(&self.amps, &self.amps).re
    }

    /// `true` when both states match up to a global phase within `tol`.
    pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> bool {
        if self.dim() != other.dim() {
            return false;
        }
        (self.overlap(other) - 1.0).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::complex::C_I;

    #[test]
    fn zero_state_probabilities() {
        let s = PureState::zero(2);
        assert_eq!(s.qubits(), 2);
        assert_eq!(s.dim(), 4);
        assert_eq!(s.probability(0), 1.0);
        assert_eq!(s.probability(3), 0.0);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = PureState::from_amplitudes(CVector::from_real(&[3.0, 4.0])).expect("valid");
        assert!((s.probability(0) - 0.36).abs() < 1e-12);
        assert!((s.probability(1) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_rejects_bad_inputs() {
        assert!(PureState::from_amplitudes(CVector::from_real(&[1.0, 0.0, 0.0])).is_none());
        assert!(PureState::from_amplitudes(CVector::zeros(4)).is_none());
        assert!(PureState::from_amplitudes(CVector::from_real(&[1.0])).is_none());
    }

    #[test]
    fn plus_minus_orthogonal() {
        let p = PureState::plus();
        let m = PureState::minus();
        assert!(p.inner(&m).approx_zero(1e-14));
        assert!((p.overlap(&p) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn tensor_builds_register() {
        let s = PureState::ket1().tensor(&PureState::ket0());
        assert_eq!(s.qubits(), 2);
        // Big-endian: |10⟩ = index 2.
        assert_eq!(s.probability(2), 1.0);
    }

    #[test]
    fn apply_pauli_x() {
        let x = CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let s = PureState::ket0().apply(&x);
        assert_eq!(s.probability(1), 1.0);
    }

    #[test]
    fn expectation_of_z() {
        let z = CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        assert!((PureState::ket0().expectation(&z) - 1.0).abs() < 1e-14);
        assert!((PureState::ket1().expectation(&z) + 1.0).abs() < 1e-14);
        assert!(PureState::plus().expectation(&z).abs() < 1e-14);
    }

    #[test]
    fn global_phase_equivalence() {
        let s = PureState::plus();
        let phased = PureState::from_amplitudes(s.as_vector().scale_c(C_I)).expect("valid");
        assert!(s.approx_eq_up_to_phase(&phased, 1e-12));
        assert!(!s.approx_eq_up_to_phase(&PureState::minus(), 1e-12));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = PureState::from_amplitudes(CVector::from_vec(vec![
            Complex64::new(0.3, 0.1),
            Complex64::new(-0.2, 0.7),
            Complex64::new(0.0, 0.4),
            Complex64::new(0.5, 0.0),
        ]))
        .expect("valid");
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn zero_qubits_panics() {
        let _ = PureState::zero(0);
    }
}
