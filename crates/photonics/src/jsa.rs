//! Joint spectral amplitude (JSA) of the emitted photon pairs and the
//! heralded-photon purity.
//!
//! The §II claim that the comb yields **pure** heralded single photons —
//! and the §V requirement that "the generated photons have the same
//! bandwidth as the pump field" so that temporal modes are
//! indistinguishable — are both statements about the JSA:
//!
//! `JSA(ν_s, ν_i) ∝ α(ν_s + ν_i) · ℓ_s(ν_s) · ℓ_i(ν_i)`
//!
//! where `α` is the pump (sum-frequency) envelope and `ℓ_{s,i}` are the
//! Lorentzian field responses of the signal/idler resonances. When the
//! pump bandwidth matches the resonance linewidth, the JSA factorizes and
//! the Schmidt number `K → 1` (heralded purity `1/K → 1`).

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::hermitian::svd;

use crate::ring::Microring;
use crate::waveguide::Polarization;

/// Spectral envelope of the pump drive at the sum frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PumpEnvelope {
    /// Gaussian pulse of the given intensity-FWHM bandwidth (Hz) — the
    /// filtered double-pulse drive of §IV–V.
    Gaussian {
        /// Intensity FWHM bandwidth, Hz.
        fwhm: f64,
    },
    /// Lorentzian line of the given FWHM (Hz) — the self-locked
    /// intracavity CW pump of §II, whose line is itself a ring resonance.
    Lorentzian {
        /// FWHM linewidth, Hz.
        fwhm: f64,
    },
}

impl PumpEnvelope {
    /// Complex field amplitude at detuning `d` (Hz) of the *sum*
    /// frequency from twice the pump center.
    pub fn amplitude(&self, d: f64) -> Complex64 {
        match *self {
            PumpEnvelope::Gaussian { fwhm } => {
                let sigma = fwhm / (8.0 * std::f64::consts::LN_2).sqrt();
                Complex64::real((-0.25 * (d / sigma).powi(2)).exp())
            }
            PumpEnvelope::Lorentzian { fwhm } => {
                let half = 0.5 * fwhm;
                Complex64::real(half) / Complex64::new(half, d)
            }
        }
    }
}

/// A discretized joint spectral amplitude for one channel pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointSpectralAmplitude {
    matrix: CMatrix,
    grid_step: f64,
}

impl JointSpectralAmplitude {
    /// Builds the JSA of channel pair `m` on an `n × n` frequency grid
    /// spanning ±`span_linewidths` loaded linewidths around each
    /// resonance.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `m == 0`.
    pub fn for_channel(
        ring: &Microring,
        pol: Polarization,
        m: u32,
        pump: PumpEnvelope,
        n: usize,
        span_linewidths: f64,
    ) -> Self {
        assert!(n >= 8, "JSA grid too coarse");
        assert!(m > 0, "pair channel must differ from the pump mode");
        let lw = ring.linewidth().hz();
        let span = span_linewidths * lw;
        let step = 2.0 * span / cast::to_f64(n - 1);
        let f_s0 = ring.resonance(pol, cast::u32_to_i32(m)).hz();
        let f_i0 = ring.resonance(pol, -cast::u32_to_i32(m)).hz();
        let f_p0 = ring.resonance(pol, 0).hz();
        // Constant part of the sum-frequency detuning: the grid-dispersion
        // energy mismatch of this channel pair.
        let grid_mismatch = f_s0 + f_i0 - 2.0 * f_p0;

        // The intracavity pump spectrum is the laser envelope filtered by
        // its own (pump) resonance; the sum-frequency envelope of the two
        // annihilated pump photons is the self-convolution of that
        // filtered spectrum. Precompute it on the lattice of possible
        // `ds + di` values.
        let window = 2.0 * span + 6.0 * lw;
        let fine = lw / 8.0;
        let fine_n = cast::f64_to_usize((2.0 * window / fine).ceil()) + 1;
        let pump_field: Vec<Complex64> = (0..fine_n)
            .map(|k| {
                let x = -window + cast::to_f64(k) * fine;
                pump.amplitude(x) * lorentzian_field(x, lw)
            })
            .collect();
        let alpha_at = |delta: f64| -> Complex64 {
            let mut acc = Complex64::real(0.0);
            for (k, &p) in pump_field.iter().enumerate() {
                let x = -window + cast::to_f64(k) * fine;
                let y = delta - x;
                if y.abs() <= window {
                    let idx = cast::f64_to_usize(((y + window) / fine).round());
                    if idx < fine_n {
                        acc += p * pump_field[idx];
                    }
                }
            }
            acc
        };
        // Lattice of sum detunings ds + di ∈ {−2span + k·step}.
        let alphas: Vec<Complex64> = (0..(2 * n - 1))
            .map(|k| alpha_at(grid_mismatch - 2.0 * span + cast::to_f64(k) * step))
            .collect();
        let peak = alphas.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-300);

        let matrix = CMatrix::from_fn(n, n, |i, j| {
            let ds = -span + cast::to_f64(i) * step; // signal detuning
            let di = -span + cast::to_f64(j) * step; // idler detuning
            let ls = lorentzian_field(ds, lw);
            let li = lorentzian_field(di, lw);
            (alphas[i + j] / peak) * ls * li
        });
        Self {
            matrix,
            grid_step: step,
        }
    }

    /// The underlying matrix (signal index = row, idler index = column).
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }

    /// Grid step in Hz.
    pub fn grid_step(&self) -> f64 {
        self.grid_step
    }

    /// Normalized Schmidt coefficients `λ_k` (descending, `Σλ_k = 1`)
    /// from the singular values of the discretized JSA.
    pub fn schmidt_coefficients(&self) -> Vec<f64> {
        let s = svd(&self.matrix, 1e-10);
        let total: f64 = s.singular_values.iter().map(|x| x * x).sum();
        s.singular_values.iter().map(|x| x * x / total).collect()
    }

    /// Schmidt number `K = 1/Σλ_k²` — the effective number of spectral
    /// modes shared by signal and idler.
    pub fn schmidt_number(&self) -> f64 {
        let lam = self.schmidt_coefficients();
        1.0 / lam.iter().map(|x| x * x).sum::<f64>()
    }

    /// Purity of the heralded single photon, `P = 1/K`.
    pub fn heralded_purity(&self) -> f64 {
        1.0 / self.schmidt_number()
    }
}

fn lorentzian_field(detuning: f64, fwhm: f64) -> Complex64 {
    let half = 0.5 * fwhm;
    Complex64::real(half) / Complex64::new(half, detuning)
}

/// Unnormalized joint spectral *intensity* of channel pair `m` at one
/// (signal, idler) detuning point (Hz from the respective resonances),
/// using the bare pump envelope:
/// `|α(Δ_grid + d_s + d_i) · ℓ(d_s) · ℓ(d_i)|²`.
///
/// This is the point-by-point scalar oracle for the batch JSA-slice
/// kernel in [`crate::sweep`]. Unlike
/// [`JointSpectralAmplitude::for_channel`] it applies the laser envelope
/// directly (no intracavity self-convolution), which is the textbook
/// single-pass JSA and cheap enough to evaluate per grid point.
///
/// # Panics
///
/// Panics if `m == 0` (the pump mode itself cannot be a pair channel).
pub fn jsa_point_intensity(
    ring: &Microring,
    pol: Polarization,
    m: u32,
    pump: PumpEnvelope,
    signal_detuning_hz: f64,
    idler_detuning_hz: f64,
) -> f64 {
    assert!(m > 0, "pair channel must differ from the pump mode");
    let lw = ring.linewidth().hz();
    let f_s0 = ring.resonance(pol, cast::u32_to_i32(m)).hz();
    let f_i0 = ring.resonance(pol, -cast::u32_to_i32(m)).hz();
    let f_p0 = ring.resonance(pol, 0).hz();
    let grid_mismatch = f_s0 + f_i0 - 2.0 * f_p0;
    let alpha = pump.amplitude(grid_mismatch + signal_detuning_hz + idler_detuning_hz);
    let ls = lorentzian_field(signal_detuning_hz, lw);
    let li = lorentzian_field(idler_detuning_hz, lw);
    (alpha * ls * li).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Microring;

    fn jsa(pump: PumpEnvelope) -> JointSpectralAmplitude {
        let ring = Microring::paper_device();
        JointSpectralAmplitude::for_channel(&ring, Polarization::Te, 1, pump, 48, 6.0)
    }

    #[test]
    fn schmidt_coefficients_normalized_and_descending() {
        let j = jsa(PumpEnvelope::Lorentzian { fwhm: 110e6 });
        let lam = j.schmidt_coefficients();
        let total: f64 = lam.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(lam.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn resonance_matched_pulse_gives_high_purity() {
        // A pulse at least as broad as the resonance: the cavity filter
        // dominates and the JSA is nearly separable — the §V condition
        // "generated photons have the same bandwidth as the pump field"
        // (the pump inside the cavity IS resonance-shaped).
        let j = jsa(PumpEnvelope::Gaussian { fwhm: 220e6 });
        let p = j.heralded_purity();
        assert!(p > 0.85, "purity {p}");
    }

    #[test]
    fn narrowband_cw_pump_degrades_purity() {
        // A pump far narrower than the resonance anti-correlates the
        // pair (energy conservation pins ν_s + ν_i to the pump line):
        // purity drops toward the CW limit.
        let narrow = jsa(PumpEnvelope::Lorentzian { fwhm: 2e6 });
        let matched = jsa(PumpEnvelope::Gaussian { fwhm: 220e6 });
        assert!(
            narrow.heralded_purity() < matched.heralded_purity(),
            "narrow {} matched {}",
            narrow.heralded_purity(),
            matched.heralded_purity()
        );
    }

    #[test]
    fn purity_saturates_for_very_broad_pump() {
        // The pump is filtered by its own resonance, so widening the
        // laser beyond a few linewidths changes nothing: the cavity sets
        // the bandwidth (the paper's "intrinsically given by the
        // resonance characteristic" statement).
        let broad = jsa(PumpEnvelope::Gaussian { fwhm: 2e9 });
        let broader = jsa(PumpEnvelope::Gaussian { fwhm: 10e9 });
        assert!(
            (broad.heralded_purity() - broader.heralded_purity()).abs() < 0.02,
            "broad {} broader {}",
            broad.heralded_purity(),
            broader.heralded_purity()
        );
    }

    #[test]
    fn schmidt_number_at_least_one() {
        for fwhm in [5e6, 110e6, 2e9] {
            let j = jsa(PumpEnvelope::Gaussian { fwhm });
            assert!(j.schmidt_number() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn pump_envelope_amplitudes_peak_at_zero() {
        for env in [
            PumpEnvelope::Gaussian { fwhm: 1e8 },
            PumpEnvelope::Lorentzian { fwhm: 1e8 },
        ] {
            let peak = env.amplitude(0.0).abs();
            assert!((peak - 1.0).abs() < 1e-12);
            assert!(env.amplitude(3e8).abs() < peak);
        }
    }

    #[test]
    #[should_panic(expected = "grid too coarse")]
    fn rejects_tiny_grid() {
        let ring = Microring::paper_device();
        let _ = JointSpectralAmplitude::for_channel(
            &ring,
            Polarization::Te,
            1,
            PumpEnvelope::Lorentzian { fwhm: 1e8 },
            4,
            6.0,
        );
    }
}
