//! # qfc-bench
//!
//! Criterion benchmark harness: one bench target per figure/table of the
//! paper (see DESIGN.md §4) plus substrate micro-benchmarks and the
//! ablation benches called out in DESIGN.md §6. The benches measure the
//! cost of regenerating each result; the results themselves are printed
//! by the examples (`cargo run --release --example full_reproduction`).

/// Common reduced-statistics configurations shared by the bench targets.
pub mod configs {
    use qfc_core::heralded::HeraldedConfig;
    use qfc_core::multiphoton::MultiPhotonConfig;
    use qfc_core::timebin::TimeBinConfig;

    /// Heralded run small enough for a criterion iteration.
    pub fn heralded_small() -> HeraldedConfig {
        let mut c = HeraldedConfig::fast_demo();
        c.duration_s = 1.0;
        c.linewidth_pairs = 4000;
        c
    }

    /// Time-bin run small enough for a criterion iteration.
    pub fn timebin_small() -> TimeBinConfig {
        let mut c = TimeBinConfig::fast_demo();
        c.channels = 1;
        c.frames_per_point = 1_000_000;
        c.phase_steps = 12;
        c
    }

    /// Multi-photon run small enough for a criterion iteration.
    pub fn multiphoton_small() -> MultiPhotonConfig {
        let mut c = MultiPhotonConfig::fast_demo();
        c.timebin = timebin_small();
        c.bell_shots_per_setting = 200;
        c.four_fold_phase_steps = 12;
        c.four_shots_per_setting = 20;
        c
    }
}
