//! Phase stabilization of the unbalanced interferometers.
//!
//! The §IV quantum-interference measurement hinges on *phase-stabilized*
//! interferometers: residual Gaussian phase noise of RMS `σ` multiplies
//! every fringe visibility by `e^{−σ²/2}`. This module models the noise
//! process, the piezo phase shifter that scans and corrects the phase,
//! and a proportional–integral lock loop, and exposes the resulting
//! visibility penalty.

use qfc_mathkit::cast;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qfc_mathkit::rng::normal;

/// Visibility penalty of Gaussian phase noise: `V → V·e^{−σ²/2}`.
pub fn visibility_factor(sigma_rad: f64) -> f64 {
    (-0.5 * sigma_rad * sigma_rad).exp()
}

/// A random-walk + white phase-noise process for a free-running fiber
/// interferometer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseNoiseModel {
    /// Random-walk diffusion, rad/√s.
    pub walk_rad_per_sqrt_s: f64,
    /// White (fast) phase jitter RMS, rad.
    pub white_rms_rad: f64,
}

impl PhaseNoiseModel {
    /// A fiber Michelson on an optical table: slow thermal walk plus a
    /// small acoustic jitter.
    pub fn laboratory() -> Self {
        Self {
            walk_rad_per_sqrt_s: 0.8,
            white_rms_rad: 0.05,
        }
    }
}

/// Piezo-actuated phase shifter: sets the scan phase and applies lock
/// corrections, with a bounded actuation range per step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiezoPhaseShifter {
    /// Largest correction applicable in one servo step, rad.
    pub max_step_rad: f64,
}

impl PiezoPhaseShifter {
    /// Typical piezo fiber stretcher servo authority.
    pub fn typical() -> Self {
        Self { max_step_rad: 0.5 }
    }

    /// Clamps a requested correction to the actuator authority.
    pub fn apply(&self, requested_rad: f64) -> f64 {
        requested_rad.clamp(-self.max_step_rad, self.max_step_rad)
    }
}

/// Result of a stabilization-loop simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LockResult {
    /// Residual phase error at each servo step, rad.
    pub residuals_rad: Vec<f64>,
    /// RMS of the residual phase error, rad.
    pub residual_rms_rad: f64,
    /// Fringe-visibility factor implied by the residual noise.
    pub visibility_factor: f64,
}

/// Simulates `steps` iterations of a proportional–integral phase lock at
/// `servo_rate_hz` against the given noise model. With the lock off
/// (`gain_p = gain_i = 0`) the phase random-walks freely.
///
/// # Panics
///
/// Panics if `steps == 0` or `servo_rate_hz <= 0`.
pub fn simulate_lock<R: Rng + ?Sized>(
    rng: &mut R,
    noise: &PhaseNoiseModel,
    piezo: &PiezoPhaseShifter,
    gain_p: f64,
    gain_i: f64,
    servo_rate_hz: f64,
    steps: usize,
) -> LockResult {
    assert!(steps > 0, "need at least one servo step");
    assert!(servo_rate_hz > 0.0, "servo rate must be positive");
    let dt = 1.0 / servo_rate_hz;
    let walk_sigma = noise.walk_rad_per_sqrt_s * dt.sqrt();
    let mut phase = 0.0f64;
    let mut integral = 0.0f64;
    let mut residuals = Vec::with_capacity(steps);
    for _ in 0..steps {
        // Environment: random walk plus white jitter on the readout.
        phase += normal(rng, 0.0, walk_sigma);
        let measured = phase + normal(rng, 0.0, noise.white_rms_rad);
        // PI correction through the piezo.
        integral += measured * dt;
        let correction = piezo.apply(-(gain_p * measured + gain_i * integral));
        phase += correction;
        residuals.push(phase);
    }
    let rms = (residuals.iter().map(|r| r * r).sum::<f64>() / cast::to_f64(steps)).sqrt();
    LockResult {
        residuals_rad: residuals,
        residual_rms_rad: rms,
        visibility_factor: visibility_factor(rms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_mathkit::rng::rng_from_seed;

    #[test]
    fn visibility_factor_limits() {
        assert_eq!(visibility_factor(0.0), 1.0);
        assert!(visibility_factor(0.3) < 1.0);
        assert!(visibility_factor(3.0) < 0.02);
    }

    #[test]
    fn lock_beats_free_running() {
        let noise = PhaseNoiseModel::laboratory();
        let piezo = PiezoPhaseShifter::typical();
        let mut rng = rng_from_seed(11);
        let free = simulate_lock(&mut rng, &noise, &piezo, 0.0, 0.0, 100.0, 4000);
        let mut rng = rng_from_seed(11);
        let locked = simulate_lock(&mut rng, &noise, &piezo, 0.6, 0.5, 100.0, 4000);
        assert!(
            locked.residual_rms_rad < free.residual_rms_rad / 3.0,
            "locked {} vs free {}",
            locked.residual_rms_rad,
            free.residual_rms_rad
        );
        assert!(locked.visibility_factor > 0.95, "V factor {}", locked.visibility_factor);
    }

    #[test]
    fn free_running_walk_grows() {
        let noise = PhaseNoiseModel::laboratory();
        let piezo = PiezoPhaseShifter::typical();
        let mut rng = rng_from_seed(12);
        let short = simulate_lock(&mut rng, &noise, &piezo, 0.0, 0.0, 100.0, 100);
        let mut rng = rng_from_seed(12);
        let long = simulate_lock(&mut rng, &noise, &piezo, 0.0, 0.0, 100.0, 10000);
        assert!(long.residual_rms_rad > short.residual_rms_rad);
    }

    #[test]
    fn piezo_clamps_authority() {
        let p = PiezoPhaseShifter { max_step_rad: 0.2 };
        assert_eq!(p.apply(1.0), 0.2);
        assert_eq!(p.apply(-1.0), -0.2);
        assert_eq!(p.apply(0.05), 0.05);
    }

    #[test]
    fn residuals_length_matches_steps() {
        let mut rng = rng_from_seed(13);
        let r = simulate_lock(
            &mut rng,
            &PhaseNoiseModel::laboratory(),
            &PiezoPhaseShifter::typical(),
            0.5,
            0.1,
            50.0,
            123,
        );
        assert_eq!(r.residuals_rad.len(), 123);
    }

    #[test]
    #[should_panic(expected = "servo step")]
    fn zero_steps_rejected() {
        let mut rng = rng_from_seed(14);
        let _ = simulate_lock(
            &mut rng,
            &PhaseNoiseModel::laboratory(),
            &PiezoPhaseShifter::typical(),
            0.5,
            0.1,
            50.0,
            0,
        );
    }
}
