//! §II — Multiplexed heralded single photons, at the paper's operating
//! point: coincidence matrix (F1), CAR/rate table (T1), time-resolved
//! linewidth (F2), and the weeks-long stability run (F3).
//!
//! ```sh
//! cargo run --release --example heralded_photons
//! ```

use qfc::core::heralded::{
    run_heralded_experiment, run_stability_experiment, HeraldedConfig, StabilityConfig,
};
use qfc::core::source::QfcSource;
use qfc::photonics::pump::PumpConfig;
use qfc::photonics::units::Power;

fn main() {
    let source = QfcSource::paper_device();
    let config = HeraldedConfig::paper();
    println!(
        "Running §II at 15 mW self-locked pump, {} channels, {} s integration…",
        config.channels, config.duration_s
    );
    let report = run_heralded_experiment(&source, &config, 7);

    println!("\n== F1 coincidence matrix (signal row × idler column, counts) ==");
    print!("        ");
    for j in 1..=config.channels {
        print!("  idl{j:>2} ");
    }
    println!();
    for (i, row) in report.coincidence_matrix.iter().enumerate() {
        print!("sig{:>2}   ", i + 1);
        for v in row {
            print!(" {v:>6} ");
        }
        println!();
    }
    println!(
        "diagonal/off-diagonal contrast: {:.1}x",
        report.matrix_contrast()
    );

    println!("\n== T1 per-channel table ==");
    println!("  m   singles(S)  singles(I)  coinc/s   pair rate   CAR");
    for c in &report.channels {
        println!(
            " {:>2}   {:>8.0}    {:>8.0}   {:>7.3}   {:>7.1}    {:>5.1}",
            c.m,
            c.signal_singles_hz,
            c.idler_singles_hz,
            c.coincidence_rate_hz,
            c.inferred_pair_rate_hz,
            c.car
        );
    }
    let (car_lo, car_hi) = report.car_range();
    let (r_lo, r_hi) = report.rate_range();
    println!("CAR range  : {car_lo:.1} .. {car_hi:.1}   (paper: 12.8 .. 32.4)");
    println!("rate range : {r_lo:.1} .. {r_hi:.1} Hz (paper: 14 .. 29 Hz)");

    println!("\n== F2 time-resolved coincidence decay ==");
    println!(
        "decay time {:.2} ns -> linewidth {:.1} MHz (paper: 110 MHz), R^2 = {:.3}",
        report.linewidth.decay_time_s * 1e9,
        report.linewidth.linewidth_hz / 1e6,
        report.linewidth.r_squared
    );

    println!("\n== F3 stability over 3 weeks ==");
    let stab_cfg = StabilityConfig::paper();
    let locked = run_stability_experiment(&source, &stab_cfg, 8);
    println!(
        "self-locked    : {:.1} % peak-to-peak fluctuation (paper: < 5 %)",
        locked.relative_fluctuation * 100.0
    );
    let free = run_stability_experiment(
        &source.clone().with_pump(PumpConfig::ExternalCw {
            power: Power::from_mw(15.0),
            actively_stabilized: false,
        }),
        &stab_cfg,
        8,
    );
    println!(
        "free-running   : {:.1} % peak-to-peak fluctuation (unlocked baseline)",
        free.relative_fluctuation * 100.0
    );

    println!("\n{}", report.to_report().render());
    println!("{}", locked.to_report().render());
}
