//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `[[bench]]` targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`]
//! and [`black_box`] — backed by a plain wall-clock timing loop instead
//! of upstream's statistical engine.
//!
//! Like upstream, the generated `main` only runs the benchmarks when the
//! harness is invoked with `--bench` (as `cargo bench` does); under
//! `cargo test`, which compiles and runs bench targets in test mode, it
//! exits immediately.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between timed runs (accepted for API
/// compatibility; this harness times each batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("default", f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times a benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total
            .checked_div(bencher.samples.len().max(1) as u32)
            .unwrap_or_default();
        println!(
            "bench: {}/{name} ... mean {:?} over {} samples",
            self.name,
            mean,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench harness entry point. Benchmarks run only when the
/// binary is invoked with `--bench` (as `cargo bench` does); in test mode
/// the harness exits immediately so `cargo test` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !std::env::args().any(|a| a == "--bench") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("iter", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
