//! The workspace-wide error taxonomy.
//!
//! Every fallible library API in the workspace returns [`QfcError`] (or a
//! crate-local error convertible into it, like
//! [`qfc_mathkit::fit::FitError`]). The variants are organized around how
//! a supervisor should react, not where the error came from:
//!
//! * [`QfcError::InvalidParameter`] — caller bug; fail fast, never retry.
//! * [`QfcError::RegimeMismatch`] — the source's pump configuration does
//!   not produce the state family the experiment needs; fail fast.
//! * [`QfcError::NonFinite`] / [`QfcError::SingularSystem`] — numerical
//!   degeneracy; a supervisor may fall back to a simpler estimator.
//! * [`QfcError::FitDivergence`] — an iterative algorithm failed to
//!   converge; fall back (e.g. MLE → linear inversion).
//! * [`QfcError::InsufficientData`] — the run produced too few events to
//!   analyze; retry with longer integration.
//! * [`QfcError::ChannelsExhausted`] — every multiplexed channel was
//!   quarantined; the degraded run has nothing left to measure.
//! * [`QfcError::LockReacquisitionFailed`] — the pump lock could not be
//!   recovered within the retry budget.
//! * [`QfcError::CampaignInterrupted`] — a sharded campaign died
//!   mid-run; completed shards are checkpointed, so resume, don't
//!   restart.
//! * [`QfcError::ShardsQuarantined`] — shards exhausted their retry
//!   budget; the campaign cannot merge until they are re-run (resume
//!   retries exactly the quarantined set).
//! * [`QfcError::Persistence`] — checkpoint/report storage failed
//!   (I/O, serialization); retry after fixing the storage path.

use serde::{Deserialize, Serialize};

/// Unified error type for the QFC simulation stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QfcError {
    /// A configuration or argument is outside its valid range.
    InvalidParameter {
        /// What was wrong.
        context: String,
    },
    /// The experiment needs a different pump regime than the source has.
    RegimeMismatch {
        /// The regime the experiment requires.
        expected: String,
        /// The regime the source is actually in.
        actual: String,
    },
    /// A computation produced NaN or infinity where a finite value is
    /// required.
    NonFinite {
        /// Where the non-finite value appeared.
        context: String,
    },
    /// A linear system was singular (or numerically indistinguishable
    /// from singular).
    SingularSystem {
        /// Which system.
        context: String,
    },
    /// An iterative algorithm exceeded its iteration budget without
    /// meeting its tolerance.
    FitDivergence {
        /// Which algorithm.
        context: String,
    },
    /// Not enough events/points to run the analysis.
    InsufficientData {
        /// Which analysis.
        context: String,
    },
    /// All channels of a multiplexed experiment were quarantined.
    ChannelsExhausted {
        /// Which experiment.
        context: String,
    },
    /// The pump lock was lost and could not be reacquired within the
    /// supervisor's retry budget.
    LockReacquisitionFailed {
        /// Re-lock attempts made before giving up.
        attempts: u32,
    },
    /// A sharded campaign was interrupted (injected or real crash)
    /// before every shard completed. Completed shards hold valid
    /// checkpoints: re-running the same campaign resumes from them.
    CampaignInterrupted {
        /// Shards with a valid checkpoint at the time of death.
        completed_shards: usize,
        /// Total shards in the campaign manifest.
        total_shards: usize,
    },
    /// One or more campaign shards exhausted their retry budget and were
    /// quarantined. The campaign cannot merge a full report; re-running
    /// retries exactly the quarantined set (completed shards resume from
    /// checkpoints).
    ShardsQuarantined {
        /// Quarantined shard indices, sorted.
        shards: Vec<u32>,
    },
    /// Checkpoint or report persistence failed: filesystem I/O or
    /// serialization. The simulation state is unharmed; fix the storage
    /// path and retry.
    Persistence {
        /// What failed.
        context: String,
    },
}

impl QfcError {
    /// Shorthand for an [`QfcError::InvalidParameter`].
    pub fn invalid(context: impl Into<String>) -> Self {
        Self::InvalidParameter {
            context: context.into(),
        }
    }

    /// Shorthand for a [`QfcError::NonFinite`].
    pub fn non_finite(context: impl Into<String>) -> Self {
        Self::NonFinite {
            context: context.into(),
        }
    }

    /// Shorthand for a [`QfcError::Persistence`].
    pub fn persistence(context: impl Into<String>) -> Self {
        Self::Persistence {
            context: context.into(),
        }
    }
}

impl std::fmt::Display for QfcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameter { context } => write!(f, "invalid parameter: {context}"),
            Self::RegimeMismatch { expected, actual } => {
                write!(f, "regime mismatch: requires {expected}, source is {actual}")
            }
            Self::NonFinite { context } => write!(f, "non-finite value in {context}"),
            Self::SingularSystem { context } => write!(f, "singular system in {context}"),
            Self::FitDivergence { context } => write!(f, "divergence in {context}"),
            Self::InsufficientData { context } => write!(f, "insufficient data for {context}"),
            Self::ChannelsExhausted { context } => {
                write!(f, "all channels quarantined in {context}")
            }
            Self::LockReacquisitionFailed { attempts } => {
                write!(f, "pump lock reacquisition failed after {attempts} attempts")
            }
            Self::CampaignInterrupted {
                completed_shards,
                total_shards,
            } => write!(
                f,
                "campaign interrupted with {completed_shards}/{total_shards} shards \
                 checkpointed — re-run to resume"
            ),
            Self::ShardsQuarantined { shards } => {
                write!(f, "campaign shards quarantined after exhausting retries: ")?;
                for (i, s) in shards.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            Self::Persistence { context } => write!(f, "persistence failure: {context}"),
        }
    }
}

impl std::error::Error for QfcError {}

impl From<qfc_mathkit::fit::FitError> for QfcError {
    fn from(e: qfc_mathkit::fit::FitError) -> Self {
        use qfc_mathkit::fit::FitError;
        match e {
            FitError::LengthMismatch => Self::invalid("fit: length mismatch"),
            FitError::InsufficientData => Self::InsufficientData {
                context: "fit".to_owned(),
            },
            FitError::Degenerate => Self::SingularSystem {
                context: "fit".to_owned(),
            },
            FitError::NonFinite => Self::non_finite("fit"),
        }
    }
}

/// Result alias for fallible QFC operations.
pub type QfcResult<T> = Result<T, QfcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = QfcError::invalid("need at least one channel");
        assert!(e.to_string().contains("at least one channel"));
        let e = QfcError::RegimeMismatch {
            expected: "CW pump configuration".into(),
            actual: "DoublePulse".into(),
        };
        assert!(e.to_string().contains("CW pump"));
    }

    #[test]
    fn campaign_errors_display_and_round_trip() {
        let e = QfcError::CampaignInterrupted {
            completed_shards: 3,
            total_shards: 8,
        };
        assert!(e.to_string().contains("3/8"));
        assert!(e.to_string().contains("resume"));
        let q = QfcError::ShardsQuarantined { shards: vec![1, 4] };
        assert!(q.to_string().contains("1, 4"));
        let p = QfcError::persistence("checkpoint write: disk full");
        assert!(p.to_string().contains("disk full"));
        for e in [e, q, p] {
            let json = serde_json::to_string(&e).expect("serializes");
            let back: QfcError = serde_json::from_str(&json).expect("deserializes");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn fit_error_converts() {
        let e: QfcError = qfc_mathkit::fit::FitError::NonFinite.into();
        assert!(matches!(e, QfcError::NonFinite { .. }));
    }
}
