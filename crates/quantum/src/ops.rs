//! Qubit operators: Pauli algebra, rotations, projectors, and embeddings
//! into multi-qubit registers.

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::{Complex64, C_I, C_ONE, C_ZERO};
use qfc_mathkit::cvector::CVector;

use crate::state::PureState;

/// 2×2 identity.
pub fn id2() -> CMatrix {
    CMatrix::identity(2)
}

/// Pauli X.
pub fn pauli_x() -> CMatrix {
    CMatrix::from_vec(2, 2, vec![C_ZERO, C_ONE, C_ONE, C_ZERO])
}

/// Pauli Y.
pub fn pauli_y() -> CMatrix {
    CMatrix::from_vec(2, 2, vec![C_ZERO, -C_I, C_I, C_ZERO])
}

/// Pauli Z.
pub fn pauli_z() -> CMatrix {
    CMatrix::from_vec(2, 2, vec![C_ONE, C_ZERO, C_ZERO, -C_ONE])
}

/// Hadamard gate.
pub fn hadamard() -> CMatrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMatrix::from_real_rows(&[&[s, s], &[s, -s]])
}

/// Phase gate `diag(1, e^{iφ})`.
pub fn phase(phi: f64) -> CMatrix {
    CMatrix::diag(&[C_ONE, Complex64::cis(phi)])
}

/// Rotation about X: `exp(−iθX/2)`.
pub fn rx(theta: f64) -> CMatrix {
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::new(0.0, -(theta / 2.0).sin());
    CMatrix::from_vec(2, 2, vec![c, s, s, c])
}

/// Rotation about Y: `exp(−iθY/2)`.
pub fn ry(theta: f64) -> CMatrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    CMatrix::from_real_rows(&[&[c, -s], &[s, c]])
}

/// Rotation about Z: `exp(−iθZ/2)`.
pub fn rz(theta: f64) -> CMatrix {
    CMatrix::diag(&[
        Complex64::cis(-theta / 2.0),
        Complex64::cis(theta / 2.0),
    ])
}

/// Rank-1 projector `|ψ⟩⟨ψ|` onto a pure state.
pub fn projector(state: &PureState) -> CMatrix {
    CMatrix::outer(state.as_vector(), state.as_vector())
}

/// Projector onto the equatorial qubit state
/// `(|0⟩ + e^{iφ}|1⟩)/√2` — the state selected by a time-bin analyzer
/// interferometer set to phase `φ`.
pub fn equatorial_projector(phi: f64) -> CMatrix {
    let v = CVector::from_vec(vec![
        Complex64::real(std::f64::consts::FRAC_1_SQRT_2),
        Complex64::cis(phi).scale(std::f64::consts::FRAC_1_SQRT_2),
    ]);
    CMatrix::outer(&v, &v)
}

/// Measurement observable along an equatorial axis at angle `φ`:
/// `cos φ·X + sin φ·Y` (eigenvalues ±1).
pub fn equatorial_observable(phi: f64) -> CMatrix {
    let x = pauli_x().scale(phi.cos());
    let y = pauli_y().scale(phi.sin());
    &x + &y
}

/// CNOT gate (control = first qubit, target = second).
pub fn cnot() -> CMatrix {
    CMatrix::from_real_rows(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
        &[0.0, 0.0, 1.0, 0.0],
    ])
}

/// Controlled-Z gate.
pub fn cz() -> CMatrix {
    CMatrix::diag(&[C_ONE, C_ONE, C_ONE, -C_ONE])
}

/// SWAP gate.
pub fn swap() -> CMatrix {
    CMatrix::from_real_rows(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// The Bell-basis transform `CNOT·(H ⊗ I)`: maps the computational
/// basis onto the four Bell states (|00⟩ → |Φ⁺⟩, |01⟩ → |Ψ⁺⟩,
/// |10⟩ → |Φ⁻⟩, |11⟩ → |Ψ⁻⟩).
pub fn bell_basis_transform() -> CMatrix {
    &cnot() * &hadamard().kron(&id2())
}

/// Kronecker product of a list of operators, left to right.
///
/// # Panics
///
/// Panics on an empty list.
pub fn kron_all(ops: &[CMatrix]) -> CMatrix {
    assert!(!ops.is_empty(), "kron_all needs at least one operator");
    let mut acc = ops[0].clone();
    for op in &ops[1..] {
        acc = acc.kron(op);
    }
    acc
}

/// Embeds a single-qubit operator on qubit `k` of an `n`-qubit register
/// (identity elsewhere). Qubit 0 is the most significant bit.
///
/// # Panics
///
/// Panics if `k >= n` or `op` is not 2×2.
pub fn embed(op: &CMatrix, k: usize, n: usize) -> CMatrix {
    assert!(k < n, "qubit index out of range");
    assert_eq!((op.rows(), op.cols()), (2, 2), "embed expects a 2x2 operator");
    // Fold the Kronecker chain directly (same left-to-right association
    // as `kron_all`) instead of materializing a list of n clones.
    let id = id2();
    let mut acc = if k == 0 { op.clone() } else { id.clone() };
    for i in 1..n {
        acc = acc.kron(if i == k { op } else { &id });
    }
    acc
}

/// Tensor product of per-qubit single-qubit operators (one per qubit).
pub fn per_qubit(ops: &[CMatrix]) -> CMatrix {
    assert!(ops.iter().all(|o| o.rows() == 2 && o.cols() == 2));
    kron_all(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // X² = Y² = Z² = I
        for p in [&x, &y, &z] {
            assert!((p * p).approx_eq(&id2(), 1e-14));
        }
        // XY = iZ
        assert!((&x * &y).approx_eq(&z.scale_c(C_I), 1e-14));
        // Anticommutation {X, Z} = 0
        let anti = &(&x * &z) + &(&z * &x);
        assert!(anti.approx_eq(&CMatrix::zeros(2, 2), 1e-14));
    }

    #[test]
    fn hadamard_maps_z_to_x() {
        let h = hadamard();
        let conj = &(&h * &pauli_z()) * &h;
        assert!(conj.approx_eq(&pauli_x(), 1e-14));
    }

    #[test]
    fn rotations_are_unitary_and_periodic() {
        for theta in [0.3, 1.2, 2.9] {
            for r in [rx(theta), ry(theta), rz(theta)] {
                assert!(r.is_unitary(1e-12));
            }
        }
        // Full rotation = −I.
        let full = rx(2.0 * std::f64::consts::PI);
        assert!(full.approx_eq(&id2().scale(-1.0), 1e-12));
    }

    #[test]
    fn equatorial_projector_properties() {
        for phi in [0.0, 0.7, std::f64::consts::FRAC_PI_2] {
            let p = equatorial_projector(phi);
            assert!((&p * &p).approx_eq(&p, 1e-13), "idempotent");
            assert!(p.is_hermitian(1e-14));
            assert!((p.trace().re - 1.0).abs() < 1e-13, "rank one");
        }
        // φ = 0 projects onto |+⟩.
        let plus = PureState::plus();
        let p0 = equatorial_projector(0.0);
        assert!((plus.expectation(&p0) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn equatorial_observable_interpolates_x_y() {
        assert!(equatorial_observable(0.0).approx_eq(&pauli_x(), 1e-14));
        assert!(
            equatorial_observable(std::f64::consts::FRAC_PI_2).approx_eq(&pauli_y(), 1e-14)
        );
        // Relation: O(φ) = P(φ) − P(φ+π) in the equatorial plane.
        let phi = 0.93;
        let diff = &equatorial_projector(phi) - &equatorial_projector(phi + std::f64::consts::PI);
        assert!(diff.approx_eq(&equatorial_observable(phi), 1e-12));
    }

    #[test]
    fn embed_acts_on_correct_qubit() {
        // X on qubit 1 of a 2-qubit register: |00⟩ → |01⟩ (index 0 → 1).
        let op = embed(&pauli_x(), 1, 2);
        let s = PureState::zero(2).apply(&op);
        assert_eq!(s.probability(1), 1.0);
        // X on qubit 0: |00⟩ → |10⟩ (index 2).
        let op0 = embed(&pauli_x(), 0, 2);
        let s0 = PureState::zero(2).apply(&op0);
        assert_eq!(s0.probability(2), 1.0);
    }

    #[test]
    fn kron_all_dimension() {
        let m = kron_all(&[id2(), pauli_x(), pauli_z()]);
        assert_eq!(m.rows(), 8);
        assert!(m.is_unitary(1e-13));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn kron_all_rejects_empty() {
        let _ = kron_all(&[]);
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for g in [cnot(), cz(), swap(), bell_basis_transform()] {
            assert!(g.is_unitary(1e-13));
        }
        // CNOT² = CZ² = SWAP² = I.
        for g in [cnot(), cz(), swap()] {
            assert!((&g * &g).approx_eq(&CMatrix::identity(4), 1e-13));
        }
    }

    #[test]
    fn cnot_flips_target_on_control() {
        // |10⟩ → |11⟩.
        let s = PureState::ket1().tensor(&PureState::ket0()).apply(&cnot());
        assert_eq!(s.probability(3), 1.0);
        // |00⟩ unchanged.
        let s0 = PureState::zero(2).apply(&cnot());
        assert_eq!(s0.probability(0), 1.0);
    }

    #[test]
    fn bell_basis_transform_creates_bell_states() {
        use crate::bell::{bell_phi_plus, bell_psi_plus};
        let u = bell_basis_transform();
        let phi = PureState::zero(2).apply(&u);
        assert!(phi.approx_eq_up_to_phase(&bell_phi_plus(), 1e-12));
        let psi = PureState::ket0().tensor(&PureState::ket1()).apply(&u);
        assert!(psi.approx_eq_up_to_phase(&bell_psi_plus(), 1e-12));
    }

    #[test]
    fn swap_exchanges_qubits() {
        let s = PureState::ket1().tensor(&PureState::ket0()).apply(&swap());
        // |10⟩ → |01⟩.
        assert_eq!(s.probability(1), 1.0);
    }

    #[test]
    fn projector_of_basis_state() {
        let p = projector(&PureState::ket1());
        assert_eq!(p[(1, 1)].re, 1.0);
        assert_eq!(p[(0, 0)].re, 0.0);
    }
}
