//! The comb as an optical spectrum analyzer would see it: parametric
//! fluorescence below the OPO threshold, the bright Kerr comb above it,
//! and the S/C/L-band coverage of the paper's headline claim.
//!
//! ```sh
//! cargo run --release --example comb_spectrum
//! ```

use qfc::photonics::ring::Microring;
use qfc::photonics::spectrum::comb_spectrum;
use qfc::photonics::units::Power;

fn print_spectrum(title: &str, ring: &Microring, pump_mw: f64, max_m: u32) {
    let s = comb_spectrum(ring, Power::from_mw(pump_mw), max_m);
    println!("\n== {title} (pump {pump_mw} mW, above threshold: {}) ==", s.above_threshold);
    println!("total comb power: {:.3e} W over {} lines", s.total_power_w(), s.lines.len());
    println!("bands covered: {:?}", s.bands_covered());
    let peak = s.lines.iter().map(|l| l.power_w).fold(0.0f64, f64::max);
    for line in s.lines.iter().filter(|l| l.index.abs() <= 10) {
        let db = 10.0 * (line.power_w / peak).log10();
        let bar_len = ((db + 40.0).max(0.0) * 1.2) as usize;
        println!(
            " m={:>3}  {}  {:>7.1} dBc  {}-band  {}",
            line.index,
            line.frequency,
            db,
            line.band,
            "#".repeat(bar_len)
        );
    }
}

fn main() {
    let ring = Microring::paper_device();
    println!("Device: FSR {}, linewidth {}",
        ring.fsr(qfc::photonics::waveguide::Polarization::Te), ring.linewidth());

    print_spectrum("Below threshold: parametric fluorescence", &ring, 10.0, 40);
    print_spectrum("Above threshold: oscillating Kerr comb", &ring, 30.0, 40);

    let wide = comb_spectrum(&ring, Power::from_mw(30.0), 40);
    println!(
        "\nfull span: {} lines over ±40 modes (±8 THz), {} within 30 dB of the peak",
        wide.lines.len(),
        wide.lines_above_floor(30.0)
    );

    // Channel throughput through the SoA batch sweep layer that now
    // backs comb_spectrum: repeat the below-threshold comb (the
    // pair-rate-per-channel path) and report lines/sec.
    let reps = 200u32;
    let t0 = std::time::Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..reps {
        acc += comb_spectrum(&ring, Power::from_mw(10.0), 40).total_power_w();
    }
    let dt = t0.elapsed().as_secs_f64();
    let lines = f64::from(reps) * 80.0;
    println!(
        "batch sweep throughput: {reps} below-threshold spectra (80 lines each) in {:.1} ms \
         ({:.2e} lines/sec, Σ = {:.3e} W)",
        dt * 1e3,
        lines / dt,
        acc,
    );
}
