//! Slot-resolved two-photon analysis: the full Franson post-selection
//! table of §IV.
//!
//! After both photons pass their analyzers, each lands in one of three
//! arrival slots ([`qfc_quantum::timebin::ArrivalSlot`]); the 3 × 3 table
//! of joint probabilities shows where the quantum interference lives:
//! only the **middle/middle** cell depends on the phases — the satellite
//! cells are phase-independent, which is exactly what the experiment
//! post-selects against.

use qfc_mathkit::cmatrix::CMatrix;
use qfc_mathkit::complex::Complex64;
use qfc_mathkit::cvector::CVector;
use qfc_quantum::density::DensityMatrix;

use crate::michelson::UnbalancedMichelson;

/// Single-photon slot POVM elements for an analyzer at phase `φ`:
/// `E_first = ¼|e⟩⟨e|`, `E_middle = ½·P(φ)` with `P` the equatorial
/// projector (phase on the late-bin projection, matching
/// [`qfc_quantum::ops::equatorial_projector`]; the Michelson long-arm
/// phase maps onto it with a sign flip, which no visibility or CHSH
/// observable can distinguish), `E_last = ¼|l⟩⟨l|`. The complementary
/// flux exits the analyzer's unused port.
fn slot_povm(ifo: &UnbalancedMichelson) -> [CMatrix; 3] {
    let t = 1.0 - ifo.excess_loss;
    let e = CVector::from_real(&[1.0, 0.0]);
    let l = CVector::from_real(&[0.0, 1.0]);
    let mid = CVector::from_vec(vec![
        Complex64::real(0.5),
        Complex64::cis(ifo.phase_rad).scale(0.5),
    ]);
    [
        CMatrix::outer(&e, &e).scale(0.25 * t),
        CMatrix::outer(&mid, &mid).scale(t),
        CMatrix::outer(&l, &l).scale(0.25 * t),
    ]
}

/// Joint slot-probability table `p[i][j]` for a two-photon time-bin
/// state analyzed by `ifo_a` (rows) and `ifo_b` (columns); slot order is
/// (first, middle, last).
///
/// # Panics
///
/// Panics unless `rho` is a two-qubit state.
pub fn two_photon_slot_table(
    rho: &DensityMatrix,
    ifo_a: &UnbalancedMichelson,
    ifo_b: &UnbalancedMichelson,
) -> [[f64; 3]; 3] {
    assert_eq!(rho.qubits(), 2, "needs a two-photon time-bin state");
    let pa = slot_povm(ifo_a);
    let pb = slot_povm(ifo_b);
    let mut table = [[0.0f64; 3]; 3];
    for (i, ea) in pa.iter().enumerate() {
        for (j, eb) in pb.iter().enumerate() {
            table[i][j] = rho.expectation(&ea.kron(eb)).max(0.0);
        }
    }
    table
}

/// Total post-selected probability of the middle/middle cell — the
/// §IV coincidence signal.
pub fn middle_middle(table: &[[f64; 3]; 3]) -> f64 {
    table[1][1]
}

/// Sum of all 9 cells: the fraction of photon pairs that exit toward
/// the detectors. This is *phase-dependent* (the unused ports carry the
/// complementary fringe); its phase average is ¼ (½ per photon).
pub fn table_total(table: &[[f64; 3]; 3]) -> f64 {
    table.iter().flatten().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfc_quantum::bell::bell_phi;
    use qfc_quantum::timebin::middle_slot_coincidence;

    fn ifo(phi: f64) -> UnbalancedMichelson {
        UnbalancedMichelson::paper_instrument(phi)
    }

    #[test]
    fn phase_averaged_table_total_is_one_quarter() {
        // The instantaneous total is phase-dependent (complementary
        // light exits the unused ports); averaging a fringe period
        // restores the ¼ energy bookkeeping.
        let rho = DensityMatrix::from_pure(&bell_phi(0.0));
        let n = 16;
        let avg: f64 = (0..n)
            .map(|k| {
                let phi = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                table_total(&two_photon_slot_table(&rho, &ifo(phi), &ifo(0.0)))
            })
            .sum::<f64>()
            / n as f64;
        assert!((avg - 0.25).abs() < 1e-12, "avg = {avg}");
    }

    #[test]
    fn middle_middle_matches_projector_formula() {
        let rho = DensityMatrix::from_pure(&bell_phi(0.4));
        for (a, b) in [(0.0, 0.0), (0.7, -0.2), (2.0, 1.0)] {
            let table = two_photon_slot_table(&rho, &ifo(a), &ifo(b));
            let expect = middle_slot_coincidence(&rho, a, b);
            assert!(
                (middle_middle(&table) - expect).abs() < 1e-12,
                "({a},{b}): {} vs {expect}",
                middle_middle(&table)
            );
        }
    }

    #[test]
    fn satellite_cells_are_phase_independent() {
        let rho = DensityMatrix::from_pure(&bell_phi(0.0));
        let t1 = two_photon_slot_table(&rho, &ifo(0.0), &ifo(0.0));
        let t2 = two_photon_slot_table(&rho, &ifo(1.3), &ifo(-2.1));
        for i in 0..3 {
            for j in 0..3 {
                if i == 1 && j == 1 {
                    continue;
                }
                assert!(
                    (t1[i][j] - t2[i][j]).abs() < 1e-12,
                    "cell ({i},{j}) moved with phase"
                );
            }
        }
        // But the middle/middle cell does move.
        assert!((t1[1][1] - t2[1][1]).abs() > 0.01);
    }

    #[test]
    fn correlated_bins_empty_cross_satellites() {
        // |Φ⟩ has both photons in the same bin: the first/last and
        // last/first cells (photon A early via short AND photon B late
        // via long requires |el⟩ population) vanish.
        let rho = DensityMatrix::from_pure(&bell_phi(0.0));
        let table = two_photon_slot_table(&rho, &ifo(0.5), &ifo(0.5));
        assert!(table[0][2] < 1e-14);
        assert!(table[2][0] < 1e-14);
        // Same-bin satellites are populated.
        assert!(table[0][0] > 0.01);
        assert!(table[2][2] > 0.01);
    }

    #[test]
    fn excess_loss_scales_table() {
        let rho = DensityMatrix::from_pure(&bell_phi(0.0));
        let lossless = two_photon_slot_table(&rho, &ifo(0.0), &ifo(0.0));
        let lossy_ifo = ifo(0.0).with_excess_loss(0.5);
        let lossy = two_photon_slot_table(&rho, &lossy_ifo, &lossy_ifo);
        for i in 0..3 {
            for j in 0..3 {
                if lossless[i][j] > 1e-12 {
                    assert!(
                        (lossy[i][j] / lossless[i][j] - 0.25).abs() < 1e-9,
                        "cell ({i},{j}) should scale by (1 − loss)²"
                    );
                }
            }
        }
    }
}
