//! Photon-number statistics of the SFWM output: the two-mode squeezed
//! vacuum (TMSV).
//!
//! SFWM in one channel pair emits `|ψ⟩ = √(1−λ)·Σ λ^{n/2}|n,n⟩` with
//! thermal marginals of mean `μ = λ/(1−λ)`. Everything the coincidence
//! experiments see — CAR floors, multi-pair contamination of the time-bin
//! visibilities, heralded g²(0) — follows from these statistics.

use qfc_mathkit::cast;
use serde::{Deserialize, Serialize};

/// A two-mode squeezed vacuum characterized by its mean pair number `μ`
/// per mode (per pulse, or per coherence time for CW).
///
/// # Examples
///
/// ```
/// use qfc_quantum::fock::TwoModeSqueezedVacuum;
/// let tmsv = TwoModeSqueezedVacuum::new(0.01);
/// assert!((tmsv.p_n(0) - 1.0/1.01).abs() < 1e-9);
/// assert!(tmsv.heralded_g2(1.0) < 0.1); // good single photons at low gain
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoModeSqueezedVacuum {
    mu: f64,
}

impl TwoModeSqueezedVacuum {
    /// Creates a TMSV with mean pair number `mu ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is negative or not finite.
    pub fn new(mu: f64) -> Self {
        assert!(mu >= 0.0 && mu.is_finite(), "mean pair number must be ≥ 0");
        Self { mu }
    }

    /// Creates a TMSV from the squeeze parameter `ξ` (`μ = sinh²ξ`).
    pub fn from_squeeze_parameter(xi: f64) -> Self {
        Self::new(xi.sinh().powi(2))
    }

    /// Mean pair number `μ`.
    pub fn mean_pairs(&self) -> f64 {
        self.mu
    }

    /// Probability of exactly `n` pairs:
    /// `P(n) = μⁿ/(1+μ)^{n+1}` (thermal/geometric), evaluated in log
    /// space so large `n`/`μ` cannot overflow.
    pub fn p_n(&self, n: u32) -> f64 {
        if self.mu == 0.0 {
            return if n == 0 { 1.0 } else { 0.0 };
        }
        (cast::to_f64(n) * self.mu.ln() - (cast::to_f64(n) + 1.0) * (1.0 + self.mu).ln()).exp()
    }

    /// Unheralded second-order coherence of one arm: thermal light,
    /// `g²(0) = 2` (independent of `μ`).
    pub fn unheralded_g2(&self) -> f64 {
        2.0
    }

    /// Heralded second-order coherence of the signal arm given a click of
    /// a non-number-resolving herald detector of efficiency `eta_herald`.
    ///
    /// `g²_h(0) = ⟨n(n−1)⟩_h / ⟨n⟩_h²` with the heralded distribution
    /// `P_h(n) ∝ P(n)·(1 − (1−η)ⁿ)`. Tends to `0` for `μ → 0` (single
    /// photons) and to `2` for `μ → ∞` (thermal).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eta_herald ≤ 1`.
    pub fn heralded_g2(&self, eta_herald: f64) -> f64 {
        assert!(
            eta_herald > 0.0 && eta_herald <= 1.0,
            "herald efficiency must be in (0, 1]"
        );
        if self.mu == 0.0 {
            return 0.0;
        }
        let mut norm = 0.0;
        let mut mean = 0.0;
        let mut second = 0.0;
        // The thermal tail decays geometrically; sum far enough out.
        let n_max = cast::f64_to_u32(60.0 * (1.0 + self.mu)) + 60;
        for n in 1..=n_max {
            let w = self.p_n(n) * (1.0 - (1.0 - eta_herald).powi(cast::u32_to_i32(n)));
            norm += w;
            mean += w * cast::to_f64(n);
            second += w * cast::to_f64(n) * (cast::to_f64(n) - 1.0);
        }
        if norm == 0.0 {
            return 0.0;
        }
        mean /= norm;
        second /= norm;
        second / (mean * mean)
    }

    /// Probability that at least one pair is emitted.
    pub fn p_at_least_one(&self) -> f64 {
        1.0 - self.p_n(0)
    }

    /// Probability of a coincidence click between the two arms with arm
    /// efficiencies `eta_s`, `eta_i` (non-number-resolving detectors,
    /// no dark counts).
    pub fn coincidence_probability(&self, eta_s: f64, eta_i: f64) -> f64 {
        // Σ P(n)·(1 − (1−ηs)ⁿ)·(1 − (1−ηi)ⁿ)
        let n_max = cast::f64_to_u32(60.0 * (1.0 + self.mu)) + 60;
        (1..=n_max)
            .map(|n| {
                self.p_n(n)
                    * (1.0 - (1.0 - eta_s).powi(cast::u32_to_i32(n)))
                    * (1.0 - (1.0 - eta_i).powi(cast::u32_to_i32(n)))
            })
            .sum()
    }

    /// Probability of a single click on one arm with efficiency `eta`.
    pub fn single_probability(&self, eta: f64) -> f64 {
        // 1 − Σ P(n)(1−η)ⁿ = 1 − 1/(1 + μη) for thermal marginals.
        1.0 - 1.0 / (1.0 + self.mu * eta)
    }

    /// Visibility degradation of two-photon interference caused by
    /// multi-pair emission: `V ≈ 1/(1 + 2μ)` for post-selected time-bin
    /// interference in the low-gain regime.
    pub fn multipair_visibility_limit(&self) -> f64 {
        1.0 / (1.0 + 2.0 * self.mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pn_sums_to_one() {
        let t = TwoModeSqueezedVacuum::new(0.3);
        let total: f64 = (0..200).map(|n| t.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matches_distribution() {
        let t = TwoModeSqueezedVacuum::new(0.25);
        let mean: f64 = (0..300).map(|n| n as f64 * t.p_n(n)).sum();
        assert!((mean - 0.25).abs() < 1e-9);
    }

    #[test]
    fn squeeze_parameter_roundtrip() {
        let t = TwoModeSqueezedVacuum::from_squeeze_parameter(0.1);
        assert!((t.mean_pairs() - 0.1f64.sinh().powi(2)).abs() < 1e-15);
    }

    #[test]
    fn heralded_g2_limits() {
        // Low gain → antibunched (g² ≈ 2μ·2 ≈ small).
        let low = TwoModeSqueezedVacuum::new(1e-3);
        assert!(low.heralded_g2(1.0) < 0.01, "g2 = {}", low.heralded_g2(1.0));
        // High gain → thermal.
        let high = TwoModeSqueezedVacuum::new(50.0);
        assert!((high.heralded_g2(1.0) - 2.0).abs() < 0.1);
        // Monotone in μ.
        let g_a = TwoModeSqueezedVacuum::new(0.01).heralded_g2(0.5);
        let g_b = TwoModeSqueezedVacuum::new(0.1).heralded_g2(0.5);
        assert!(g_a < g_b);
    }

    #[test]
    fn heralded_g2_zero_gain() {
        assert_eq!(TwoModeSqueezedVacuum::new(0.0).heralded_g2(0.3), 0.0);
    }

    #[test]
    fn coincidence_probability_low_gain_is_mu_eta_eta() {
        let t = TwoModeSqueezedVacuum::new(1e-4);
        let p = t.coincidence_probability(0.3, 0.4);
        assert!((p / (1e-4 * 0.3 * 0.4) - 1.0).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn single_probability_closed_form() {
        let t = TwoModeSqueezedVacuum::new(0.2);
        let eta: f64 = 0.35;
        let direct: f64 = 1.0
            - (0..500)
                .map(|n| t.p_n(n) * (1.0 - eta).powi(n as i32))
                .sum::<f64>();
        assert!((t.single_probability(eta) - direct).abs() < 1e-9);
    }

    #[test]
    fn multipair_visibility_decreases_with_gain() {
        let v1 = TwoModeSqueezedVacuum::new(0.001).multipair_visibility_limit();
        let v2 = TwoModeSqueezedVacuum::new(0.1).multipair_visibility_limit();
        assert!(v1 > 0.99 && v2 < v1);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_mu_panics() {
        let _ = TwoModeSqueezedVacuum::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "herald efficiency")]
    fn bad_eta_panics() {
        let _ = TwoModeSqueezedVacuum::new(0.1).heralded_g2(0.0);
    }
}
